//! Signal-level exposure and normalized failure prevalence (Figs. 15–17).
//!
//! Fig. 15's key finding: **normalized** prevalence (prevalence divided by
//! the time spent at each signal level) decreases monotonically from
//! level 0 to level 4, then *spikes* at level 5 — because level-5 readings
//! cluster at densely deployed transport hubs where interference and
//! mobility-management pressure dominate.
//!
//! The workload uses two tables:
//!
//! * [`level_exposure`] — the fraction of camped time a fleet spends at
//!   each signal level (provided to the paper's authors by Xiaomi's
//!   nationwide measurement; synthesised here);
//! * [`normalized_prevalence`] — the per-level failure likelihood (the
//!   Fig. 15 series shape).
//!
//! The joint product gives the probability a recorded failure carries a
//! given level; the analysis layer divides counts by exposure to recover
//! the normalized series — exactly the paper's methodology.

use cellrel_sim::{SimRng, WeightedIndex};
use cellrel_types::{Rat, SignalLevel};

/// Fraction of camped time spent at each signal level (levels 0..=5).
/// Most fleets sit at mid-to-good levels; level 0 and level 5 are both
/// comparatively rare exposures.
pub const LEVEL_EXPOSURE: [f64; 6] = [0.04, 0.09, 0.18, 0.30, 0.27, 0.12];

/// The Fig. 15 normalized-prevalence shape: strictly decreasing levels 0→4,
/// then the level-5 spike that rises above every level except 0.
pub const NORMALIZED_PREVALENCE: [f64; 6] = [0.34, 0.205, 0.155, 0.115, 0.085, 0.24];

/// Fig. 16: per-RAT normalized prevalence for 4G and 5G. 5G is uniformly
/// riskier (immature modules, §3.2) and its level-0 entry is the policy
/// disaster zone.
pub fn normalized_prevalence_by_rat(rat: Rat, level: SignalLevel) -> f64 {
    let base = NORMALIZED_PREVALENCE[level.index()];
    match rat {
        // 5G is uniformly riskier, and disproportionately so at the weak
        // end: 2020-era NR coverage edges (the blind-preference disaster
        // zone) dominate its failure profile.
        Rat::G5 => {
            const G5_FACTOR: [f64; 6] = [1.95, 1.75, 1.50, 1.30, 1.15, 1.35];
            base * G5_FACTOR[level.index()]
        }
        Rat::G4 => base,
        Rat::G3 => base * 0.62, // the idle-3G effect
        Rat::G2 => base * 0.95,
    }
}

/// Exposure share at a level.
pub fn level_exposure(level: SignalLevel) -> f64 {
    LEVEL_EXPOSURE[level.index()]
}

/// Normalized prevalence at a level (the Fig. 15 series).
pub fn normalized_prevalence(level: SignalLevel) -> f64 {
    NORMALIZED_PREVALENCE[level.index()]
}

/// A sampler over the signal level *of a failure*: P(level | failure) ∝
/// exposure(level) × normalized_prevalence(level, rat).
#[derive(Debug, Clone)]
pub struct FailureLevelSampler {
    samplers: [WeightedIndex; 4],
}

impl Default for FailureLevelSampler {
    fn default() -> Self {
        Self::new()
    }
}

impl FailureLevelSampler {
    /// Build per-RAT samplers.
    pub fn new() -> Self {
        let build = |rat: Rat| {
            let weights: Vec<f64> = SignalLevel::ALL
                .iter()
                .map(|&l| level_exposure(l) * normalized_prevalence_by_rat(rat, l))
                .collect();
            WeightedIndex::new(&weights)
        };
        FailureLevelSampler {
            samplers: [
                build(Rat::G2),
                build(Rat::G3),
                build(Rat::G4),
                build(Rat::G5),
            ],
        }
    }

    /// Draw the signal level of a failure occurring on `rat`.
    pub fn sample(&self, rat: Rat, rng: &mut SimRng) -> SignalLevel {
        SignalLevel::ALL[self.samplers[rat.index()].sample(rng)]
    }
}

// --------------------------------------------------------------------------
// Fig. 17: RAT-transition risk increases.
// --------------------------------------------------------------------------

/// The increase in normalized failure prevalence caused by a RAT transition
/// from `(from_rat, level i)` to `(to_rat, level j)` — the quantity the six
/// heat maps of Fig. 17 plot.
///
/// The paper's observed pattern: transitions landing on level-0 targets are
/// the dangerous ones, and the danger grows with how *good* the signal was
/// before the switch (the 4G L4 → 5G L0 cell is the darkest at +0.37).
pub fn transition_risk_increase(
    from_rat: Rat,
    from_level: SignalLevel,
    to_rat: Rat,
    to_level: SignalLevel,
) -> f64 {
    if from_rat == to_rat {
        return 0.0;
    }
    // Baseline change from the per-level landscape.
    let base = normalized_prevalence_by_rat(to_rat, to_level)
        - normalized_prevalence_by_rat(from_rat, from_level);
    // Transition shock: landing at level 0 after having usable signal.
    let shock = if to_level == SignalLevel::L0 {
        let source_quality = from_level.value() as f64 / 5.0;
        let upgrade = u8::from(to_rat > from_rat) as f64;
        0.10 + 0.16 * source_quality + 0.04 * upgrade
    } else {
        0.0
    };
    base.max(-0.2) * 0.22 + shock
}

/// One synthetic transition observation: whether a failure followed the
/// transition within the observation window.
pub fn sample_transition_failure(
    from_rat: Rat,
    from_level: SignalLevel,
    to_rat: Rat,
    to_level: SignalLevel,
    rng: &mut SimRng,
) -> bool {
    let baseline = normalized_prevalence_by_rat(to_rat, to_level) * 0.5;
    let p = baseline + transition_risk_increase(from_rat, from_level, to_rat, to_level).max(0.0);
    rng.chance(p.clamp(0.0, 0.97))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exposure_sums_to_one() {
        let total: f64 = LEVEL_EXPOSURE.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn fig15_shape_decreasing_then_spike() {
        // Strictly decreasing 0..4.
        for w in NORMALIZED_PREVALENCE[..5].windows(2) {
            assert!(w[0] > w[1]);
        }
        // Level 5 above each of 1..4, but below level 0.
        let l5 = NORMALIZED_PREVALENCE[5];
        for &v in &NORMALIZED_PREVALENCE[1..5] {
            assert!(l5 > v, "level-5 spike must exceed levels 1–4");
        }
        assert!(l5 < NORMALIZED_PREVALENCE[0]);
    }

    #[test]
    fn fig16_5g_riskier_and_3g_idler_than_4g() {
        for l in SignalLevel::ALL {
            assert!(
                normalized_prevalence_by_rat(Rat::G5, l) > normalized_prevalence_by_rat(Rat::G4, l)
            );
            assert!(
                normalized_prevalence_by_rat(Rat::G3, l) < normalized_prevalence_by_rat(Rat::G4, l)
            );
        }
    }

    #[test]
    fn sampler_biases_toward_high_exposure_levels() {
        let s = FailureLevelSampler::new();
        let mut rng = SimRng::new(1);
        let mut counts = [0u32; 6];
        for _ in 0..50_000 {
            counts[s.sample(Rat::G4, &mut rng).index()] += 1;
        }
        // Level 3 has the largest exposure×prevalence product among 2..4;
        // level 0 is rare in absolute terms despite its prevalence.
        assert!(counts[3] > counts[0], "{counts:?}");
        // All levels occur.
        assert!(counts.iter().all(|&c| c > 0), "{counts:?}");
    }

    #[test]
    fn fig17f_worst_cell_is_4g_good_to_5g_dead() {
        // 4G level-4 → 5G level-0 must be the worst 4G→5G transition, with
        // an increase in the neighbourhood of the paper's +0.37.
        let worst = transition_risk_increase(Rat::G4, SignalLevel::L4, Rat::G5, SignalLevel::L0);
        assert!((0.25..0.5).contains(&worst), "worst-cell increase {worst}");
        for i in SignalLevel::ALL {
            for j in SignalLevel::ALL {
                let v = transition_risk_increase(Rat::G4, i, Rat::G5, j);
                assert!(v <= worst + 1e-9, "({i},{j}) = {v} exceeds the L4→L0 cell");
            }
        }
    }

    #[test]
    fn level0_landings_are_the_dangerous_pattern() {
        // Fig. 17's common pattern: failures spike when the *target* level
        // is 0, across all RAT pairs.
        for (from, to) in [
            (Rat::G2, Rat::G3),
            (Rat::G2, Rat::G4),
            (Rat::G3, Rat::G4),
            (Rat::G3, Rat::G5),
            (Rat::G2, Rat::G5),
            (Rat::G4, Rat::G5),
        ] {
            let to_l0 = transition_risk_increase(from, SignalLevel::L3, to, SignalLevel::L0);
            let to_l3 = transition_risk_increase(from, SignalLevel::L3, to, SignalLevel::L3);
            assert!(to_l0 > to_l3, "{from}→{to}: L0 {to_l0} vs L3 {to_l3}");
        }
    }

    #[test]
    fn same_rat_transitions_are_neutral() {
        assert_eq!(
            transition_risk_increase(Rat::G4, SignalLevel::L2, Rat::G4, SignalLevel::L0),
            0.0
        );
    }

    #[test]
    fn transition_sampling_reflects_risk() {
        let mut rng = SimRng::new(2);
        let n = 20_000;
        let risky = (0..n)
            .filter(|_| {
                sample_transition_failure(
                    Rat::G4,
                    SignalLevel::L4,
                    Rat::G5,
                    SignalLevel::L0,
                    &mut rng,
                )
            })
            .count();
        let safe = (0..n)
            .filter(|_| {
                sample_transition_failure(
                    Rat::G4,
                    SignalLevel::L4,
                    Rat::G5,
                    SignalLevel::L4,
                    &mut rng,
                )
            })
            .count();
        assert!(risky > safe * 2, "risky {risky} vs safe {safe} out of {n}");
    }
}
