//! The synthetic device population.
//!
//! Devices carry the attributes the analysis slices on: Table 1 model,
//! ISP subscription, whether they live in a disrepair-prone remote region,
//! and an individual failure *proneness* factor. The proneness factor is a
//! heavy-tailed log-normal with unit mean — it produces the paper's extreme
//! per-device skew (most failing phones see a handful of failures; the
//! worst single phone saw 198 228 over eight months, §3.1).

use crate::models::{self, PhoneModelSpec};
use cellrel_sim::{SimRng, WeightedIndex};
use cellrel_types::{DeviceId, Isp, PhoneModelId};

/// Study-wide prevalence by ISP (§3.3, Fig. 12): 20.1 % / 27.1 % / 14.7 %.
pub const ISP_PREVALENCE: [f64; 3] = [0.201, 0.271, 0.147];

/// One synthetic device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceProfile {
    /// Device identity.
    pub id: DeviceId,
    /// Table 1 model.
    pub model: PhoneModelId,
    /// Subscribed ISP.
    pub isp: Isp,
    /// Lives in a remote region with neglected BSes (long-outage tail).
    pub remote_region: bool,
    /// Individual failure-count multiplier (unit mean, heavy tail).
    pub proneness: f64,
}

impl DeviceProfile {
    /// The model spec for this device.
    pub fn spec(&self) -> &'static PhoneModelSpec {
        models::model(self.model)
    }

    /// This device's probability of experiencing ≥1 failure during the
    /// study: the model's prevalence modulated by the ISP factor.
    pub fn failure_prevalence(&self) -> f64 {
        (self.spec().prevalence * isp_prevalence_factor(self.isp)).clamp(0.0, 0.98)
    }

    /// Expected number of failures *given* the device fails at all.
    pub fn conditional_mean_failures(&self) -> f64 {
        let s = self.spec();
        let base = if s.prevalence > 0.0 {
            s.frequency / s.prevalence
        } else {
            s.frequency
        };
        base * self.proneness
    }
}

/// The ISP's prevalence relative to the user-share-weighted national mean,
/// used to modulate per-model prevalence so that per-ISP slices land on
/// Fig. 12.
pub fn isp_prevalence_factor(isp: Isp) -> f64 {
    let national: f64 = Isp::ALL
        .iter()
        .map(|i| i.user_share() * ISP_PREVALENCE[i.index()])
        .sum();
    ISP_PREVALENCE[isp.index()] / national
}

/// Population generation parameters.
#[derive(Debug, Clone, Copy)]
pub struct PopulationConfig {
    /// Number of devices.
    pub devices: usize,
    /// Fraction of devices in remote regions.
    pub remote_fraction: f64,
    /// Log-sigma of the proneness factor (heavier = more skew).
    pub proneness_sigma: f64,
}

impl Default for PopulationConfig {
    fn default() -> Self {
        PopulationConfig {
            devices: 20_000,
            remote_fraction: 0.03,
            proneness_sigma: 1.2,
        }
    }
}

/// The generated population.
#[derive(Debug, Clone)]
pub struct Population {
    devices: Vec<DeviceProfile>,
}

impl Population {
    /// An empty population — the degenerate case of a study with no
    /// devices. `generate` always produces at least one device.
    pub fn empty() -> Self {
        Population {
            devices: Vec::new(),
        }
    }

    /// Generate deterministically from `rng`.
    pub fn generate(cfg: &PopulationConfig, rng: &mut SimRng) -> Self {
        assert!(cfg.devices > 0);
        let mut rng = rng.fork(0xD0D0);
        let model_sampler = models::model_sampler();
        let isp_sampler = WeightedIndex::new(&Isp::ALL.map(|i| i.user_share()));
        // Unit-mean log-normal: mu = -sigma²/2.
        let mu = -cfg.proneness_sigma * cfg.proneness_sigma / 2.0;

        let devices = (0..cfg.devices)
            .map(|i| {
                let spec = models::sample_model(&model_sampler, &mut rng);
                DeviceProfile {
                    id: DeviceId(i as u32),
                    model: spec.id,
                    isp: Isp::ALL[isp_sampler.sample(&mut rng)],
                    remote_region: rng.chance(cfg.remote_fraction),
                    proneness: rng.lognormal(mu, cfg.proneness_sigma),
                }
            })
            .collect();
        Population { devices }
    }

    /// All devices.
    pub fn devices(&self) -> &[DeviceProfile] {
        &self.devices
    }

    /// Number of devices.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// Always false; provided for API completeness.
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pop(n: usize, seed: u64) -> Population {
        let mut rng = SimRng::new(seed);
        Population::generate(
            &PopulationConfig {
                devices: n,
                ..Default::default()
            },
            &mut rng,
        )
    }

    #[test]
    fn model_mix_tracks_user_share() {
        let p = pop(40_000, 1);
        let m3 = p
            .devices()
            .iter()
            .filter(|d| d.model == PhoneModelId(3))
            .count() as f64
            / p.len() as f64;
        assert!((m3 - 0.0731).abs() < 0.008, "model-3 share {m3}");
    }

    #[test]
    fn isp_mix_tracks_user_share() {
        let p = pop(40_000, 2);
        for isp in Isp::ALL {
            let share = p.devices().iter().filter(|d| d.isp == isp).count() as f64 / p.len() as f64;
            assert!(
                (share - isp.user_share()).abs() < 0.02,
                "{isp} share {share}"
            );
        }
    }

    #[test]
    fn proneness_has_unit_mean_and_heavy_tail() {
        let p = pop(40_000, 3);
        let mean: f64 = p.devices().iter().map(|d| d.proneness).sum::<f64>() / p.len() as f64;
        assert!((mean - 1.0).abs() < 0.12, "proneness mean {mean}");
        let max = p.devices().iter().map(|d| d.proneness).fold(0.0, f64::max);
        assert!(max > 10.0, "proneness tail too light: max {max}");
    }

    #[test]
    fn isp_factors_weight_to_one() {
        let national: f64 = Isp::ALL
            .iter()
            .map(|i| i.user_share() * isp_prevalence_factor(*i))
            .sum();
        assert!((national - 1.0).abs() < 1e-9);
        // Fig. 12 ordering: B > A > C.
        assert!(isp_prevalence_factor(Isp::B) > isp_prevalence_factor(Isp::A));
        assert!(isp_prevalence_factor(Isp::A) > isp_prevalence_factor(Isp::C));
    }

    #[test]
    fn device_prevalence_is_bounded() {
        let p = pop(5_000, 4);
        for d in p.devices() {
            let pr = d.failure_prevalence();
            assert!((0.0..=0.98).contains(&pr));
            assert!(d.conditional_mean_failures() > 0.0);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = pop(1_000, 9);
        let b = pop(1_000, 9);
        assert_eq!(a.devices(), b.devices());
    }
}
