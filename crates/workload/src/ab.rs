//! Micro A/B experiments — the paper's deployed-enhancement evaluation
//! (§4.3, Figures 19–21).
//!
//! Each arm runs a fleet of full [`DeviceSim`] agents (radio + modem +
//! netstack + telephony + Android-MOD monitor) under one configuration:
//!
//! * **RAT policy A/B** (Fig. 19/20): 5G phones under vanilla Android 10
//!   (blind 5G preference) vs the Stability-Compatible policy with 4G/5G
//!   dual connectivity.
//! * **Recovery A/B** (Fig. 21): vanilla one-minute probations vs the
//!   TIMP-optimised (21 s, 6 s, 16 s) trigger.

use cellrel_monitor::MonitoringService;
use cellrel_radio::{DeploymentConfig, RadioEnvironment};
use cellrel_sim::{resolve_threads, run_sharded_merge, Merge, SimRng, TimerWheel};
use cellrel_telephony::{DeviceConfig, DeviceSim, RatPolicyKind, RecoveryConfig};
use cellrel_types::{DeviceId, FailureKind, Isp, Rat, RatSet, SimTime};
use std::collections::HashSet;

/// Experiment arm label.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbArm {
    /// Vanilla Android 10 RAT policy.
    VanillaAndroid10,
    /// Stability-compatible RAT policy with dual connectivity.
    StabilityCompatible,
    /// Vanilla 60/60/60 recovery probations.
    VanillaRecovery,
    /// TIMP-optimised 21/6/16 probations.
    TimpRecovery,
    /// An ablation arm with a custom policy (see `run_custom_arm`).
    Custom,
}

impl AbArm {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            AbArm::VanillaAndroid10 => "vanilla-android-10",
            AbArm::StabilityCompatible => "stability-compatible",
            AbArm::VanillaRecovery => "vanilla-recovery",
            AbArm::TimpRecovery => "timp-recovery",
            AbArm::Custom => "custom",
        }
    }
}

/// A/B experiment parameters.
#[derive(Debug, Clone, Copy)]
pub struct AbConfig {
    /// Devices per arm.
    pub devices: usize,
    /// Simulated days per device.
    pub days: u64,
    /// Root seed. Both arms share world seeds so they face the same
    /// conditions (paired experiment).
    pub seed: u64,
    /// Base stall hazard (injections/hour) — raised above the population
    /// default so short experiments collect enough stalls.
    pub stall_rate_per_hour: f64,
    /// Suppress user manual resets (isolates the recovery mechanism, as the
    /// duration analysis of Fig. 21 does).
    pub suppress_user_reset: bool,
    /// Worker threads per arm (`0` = auto: `CELLREL_THREADS` or the
    /// machine's available parallelism). Outcomes do not depend on this.
    pub threads: usize,
}

impl Default for AbConfig {
    fn default() -> Self {
        AbConfig {
            devices: 24,
            days: 4,
            seed: 77,
            stall_rate_per_hour: 2.0,
            suppress_user_reset: false,
            threads: 0,
        }
    }
}

/// Aggregate outcome of one arm.
#[derive(Debug, Clone)]
pub struct AbOutcome {
    /// Which arm.
    pub arm: AbArm,
    /// Devices simulated.
    pub devices: usize,
    /// Device-day prevalence: the fraction of (device, day) cells with ≥1
    /// recorded true failure. Short, hazard-dense experiments saturate the
    /// per-device prevalence at 100 %, so the A/B comparison uses the
    /// day-granular version of the same statistic.
    pub prevalence: f64,
    /// Mean recorded true failures per device.
    pub frequency: f64,
    /// Recorded failure counts by kind (indexed by `FailureKind::index`).
    pub by_kind: [u64; 5],
    /// Measured Data_Stall durations (seconds).
    pub stall_durations: Vec<f64>,
    /// Total duration of all recorded failures (seconds).
    pub total_duration_secs: f64,
}

impl AbOutcome {
    /// Mean stall duration (0 when no stalls).
    pub fn mean_stall_secs(&self) -> f64 {
        if self.stall_durations.is_empty() {
            0.0
        } else {
            self.stall_durations.iter().sum::<f64>() / self.stall_durations.len() as f64
        }
    }

    /// Median stall duration (0 when no stalls).
    pub fn median_stall_secs(&self) -> f64 {
        if self.stall_durations.is_empty() {
            return 0.0;
        }
        let mut xs = self.stall_durations.clone();
        xs.sort_by(|a, b| a.partial_cmp(b).expect("finite durations"));
        cellrel_sim::percentile(&xs, 0.5)
    }
}

/// Per-shard partial accumulation of an arm's failure records. Durations
/// accumulate as integer milliseconds so the arm total is exact (and hence
/// thread-count invariant) rather than a float sum in shard order.
#[derive(Debug, Default)]
struct ArmPartial {
    by_kind: [u64; 5],
    stall_durations: Vec<f64>,
    duration_ms: u64,
    failing_device_days: HashSet<(usize, u64)>,
    failures: u64,
}

impl Merge for ArmPartial {
    fn merge(&mut self, other: Self) {
        self.by_kind.merge(other.by_kind);
        self.stall_durations.merge(other.stall_durations);
        self.duration_ms.merge(other.duration_ms);
        self.failing_device_days.merge(other.failing_device_days);
        self.failures.merge(other.failures);
    }
}

/// Run one arm: a fleet of monitored 5G devices with the given policy and
/// recovery configuration, sharded over `cfg.threads` scoped threads.
fn run_arm(
    arm: AbArm,
    policy: RatPolicyKind,
    recovery: RecoveryConfig,
    cfg: &AbConfig,
) -> AbOutcome {
    let mut world_rng = SimRng::new(cfg.seed);
    let env = RadioEnvironment::generate(DeploymentConfig::small(), &mut world_rng);
    let horizon = SimTime::from_secs(cfg.days * 86_400);
    let threads = resolve_threads(cfg.threads);

    let part = run_sharded_merge(cfg.devices, threads, |range| {
        let mut p = ArmPartial::default();
        for i in range {
            // Per-device world seed shared across arms (paired design):
            // derived from the experiment seed and device index alone, so
            // neither iteration order nor shard layout changes any
            // device's draws.
            let mut dev_rng = SimRng::for_substream(cfg.seed, i as u64);
            // Spread homes from the city core out to the 5G coverage edge —
            // the mixed exposure where the blind-5G policy does its damage.
            let city = env.city_centers()[i % env.city_centers().len()];
            let home = city.offset(dev_rng.normal(0.0, 4.0), dev_rng.normal(0.0, 4.0));

            let mut dc = DeviceConfig::new(DeviceId(i as u32), Isp::A, home);
            dc.rats = RatSet::up_to(Rat::G5);
            dc.policy = policy;
            dc.recovery = recovery;
            dc.stall_rate_per_hour = cfg.stall_rate_per_hour;
            if cfg.suppress_user_reset {
                dc.user_reset_median_secs = 1e9;
            }

            let monitor = MonitoringService::new(DeviceId(i as u32), dev_rng.fork(1));
            // Timer-wheel backend: O(1) schedule/cancel instead of the heap's
            // O(log n). Bit-identical to `EventQueue` (see the device-sim
            // drop-in test and the kernel equivalence proptest).
            let mut queue = TimerWheel::new();
            let mut sim = DeviceSim::new(dc, &env, monitor, dev_rng.fork(2), &mut queue);
            queue.run_until(&mut sim, horizon);

            let records = sim.into_listener().into_records();
            p.failures += records.len() as u64;
            for r in &records {
                p.by_kind[r.kind.index()] += 1;
                p.duration_ms += r.duration.as_millis();
                p.failing_device_days
                    .insert((i, r.start.as_secs() / 86_400));
                if r.kind == FailureKind::DataStall {
                    p.stall_durations.push(r.duration.as_secs_f64());
                }
            }
        }
        p
    });

    AbOutcome {
        arm,
        devices: cfg.devices,
        prevalence: part.failing_device_days.len() as f64 / (cfg.devices as f64 * cfg.days as f64),
        frequency: part.failures as f64 / cfg.devices as f64,
        by_kind: part.by_kind,
        stall_durations: part.stall_durations,
        total_duration_secs: part.duration_ms as f64 / 1000.0,
    }
}

/// Run a single arm with an arbitrary RAT policy and vanilla recovery —
/// the hook the ablation benches use to evaluate policy pieces
/// (no dual connectivity, stricter thresholds) in isolation.
pub fn run_custom_arm(policy: RatPolicyKind, cfg: &AbConfig) -> AbOutcome {
    run_arm(AbArm::Custom, policy, RecoveryConfig::vanilla(), cfg)
}

/// Fig. 19/20: the RAT-policy A/B on 5G phones.
pub fn run_rat_policy_ab(cfg: &AbConfig) -> (AbOutcome, AbOutcome) {
    let vanilla = run_arm(
        AbArm::VanillaAndroid10,
        RatPolicyKind::Android10,
        RecoveryConfig::vanilla(),
        cfg,
    );
    let patched = run_arm(
        AbArm::StabilityCompatible,
        RatPolicyKind::StabilityCompatible,
        RecoveryConfig::vanilla(),
        cfg,
    );
    (vanilla, patched)
}

/// Fig. 21: the recovery A/B (vanilla vs TIMP probations).
pub fn run_recovery_ab(cfg: &AbConfig) -> (AbOutcome, AbOutcome) {
    let vanilla = run_arm(
        AbArm::VanillaRecovery,
        RatPolicyKind::StabilityCompatible,
        RecoveryConfig::vanilla(),
        cfg,
    );
    let timp = run_arm(
        AbArm::TimpRecovery,
        RatPolicyKind::StabilityCompatible,
        RecoveryConfig::timp_optimized(),
        cfg,
    );
    (vanilla, timp)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rat_policy_ab_reduces_failures() {
        let cfg = AbConfig {
            devices: 10,
            days: 2,
            seed: 11,
            stall_rate_per_hour: 2.0,
            suppress_user_reset: false,
            threads: 0,
        };
        let (vanilla, patched) = run_rat_policy_ab(&cfg);
        assert_eq!(vanilla.arm, AbArm::VanillaAndroid10);
        assert!(vanilla.frequency > 0.0, "vanilla arm saw no failures");
        // Fig. 20: fewer failures per device under the patched policy.
        assert!(
            patched.frequency < vanilla.frequency,
            "patched {} vs vanilla {}",
            patched.frequency,
            vanilla.frequency
        );
    }

    #[test]
    fn recovery_ab_shortens_stalls() {
        let cfg = AbConfig {
            devices: 8,
            days: 3,
            seed: 12,
            stall_rate_per_hour: 4.0,
            suppress_user_reset: true,
            threads: 0,
        };
        let (vanilla, timp) = run_recovery_ab(&cfg);
        assert!(
            vanilla.stall_durations.len() >= 10,
            "not enough stalls: {}",
            vanilla.stall_durations.len()
        );
        assert!(
            timp.mean_stall_secs() < vanilla.mean_stall_secs(),
            "timp {} vs vanilla {}",
            timp.mean_stall_secs(),
            vanilla.mean_stall_secs()
        );
    }

    #[test]
    fn outcome_statistics_are_consistent() {
        let cfg = AbConfig {
            devices: 6,
            days: 1,
            seed: 13,
            stall_rate_per_hour: 3.0,
            suppress_user_reset: false,
            threads: 0,
        };
        let (vanilla, _) = run_rat_policy_ab(&cfg);
        let total: u64 = vanilla.by_kind.iter().sum();
        assert_eq!(total as f64 / cfg.devices as f64, vanilla.frequency);
        assert!(vanilla.prevalence <= 1.0);
        assert_eq!(
            vanilla.by_kind[FailureKind::DataStall.index()] as usize,
            vanilla.stall_durations.len()
        );
    }

    #[test]
    fn arm_is_thread_count_invariant() {
        let base_cfg = AbConfig {
            devices: 6,
            days: 1,
            seed: 14,
            stall_rate_per_hour: 3.0,
            suppress_user_reset: false,
            threads: 1,
        };
        let base = run_custom_arm(RatPolicyKind::Android10, &base_cfg);
        assert!(base.frequency > 0.0, "base arm saw no failures");
        for threads in [2usize, 3, 8] {
            let cfg = AbConfig {
                threads,
                ..base_cfg
            };
            let o = run_custom_arm(RatPolicyKind::Android10, &cfg);
            assert_eq!(o.by_kind, base.by_kind, "threads={threads}");
            assert_eq!(o.stall_durations, base.stall_durations, "threads={threads}");
            assert_eq!(
                o.total_duration_secs, base.total_duration_secs,
                "threads={threads}"
            );
            assert_eq!(o.prevalence, base.prevalence, "threads={threads}");
            assert_eq!(o.frequency, base.frequency, "threads={threads}");
        }
    }
}
