//! Fleet-level metrics for the macro study.
//!
//! [`FleetMetrics`] is an [`EventSink`] that folds every generated
//! [`FailureEvent`] into a [`MetricsRegistry`]: counters per failure kind,
//! RAT and fault layer, plus per-kind duration histograms. Because the
//! registry's snapshot [`Merge`] is exact (counters add, sketch buckets
//! add), [`run_macro_study_parallel`] folds per-shard sinks into a fleet
//! registry whose digest is **bit-identical at 1, 2 or 8 threads** — the
//! observability layer inherits the workspace's determinism guarantee
//! instead of weakening it.
//!
//! [`run_macro_study_parallel`]: crate::study::run_macro_study_parallel

use cellrel_sim::{Merge, MetricsRegistry, MetricsSnapshot};
use cellrel_types::{FailureEvent, FailureKind, FailureLayer, Rat};

use crate::study::{run_macro_study_parallel, EventSink, StudyConfig};

/// Counter name for a failure kind.
pub fn kind_counter(kind: FailureKind) -> &'static str {
    match kind {
        FailureKind::DataSetupError => "fleet.kind.data_setup_error",
        FailureKind::OutOfService => "fleet.kind.out_of_service",
        FailureKind::DataStall => "fleet.kind.data_stall",
        FailureKind::SmsSendFail => "fleet.kind.sms_send_fail",
        FailureKind::VoiceSetupFail => "fleet.kind.voice_setup_fail",
    }
}

/// Duration-histogram name for a failure kind.
pub fn kind_duration_histogram(kind: FailureKind) -> &'static str {
    match kind {
        FailureKind::DataSetupError => "fleet.duration.data_setup_error",
        FailureKind::OutOfService => "fleet.duration.out_of_service",
        FailureKind::DataStall => "fleet.duration.data_stall",
        FailureKind::SmsSendFail => "fleet.duration.sms_send_fail",
        FailureKind::VoiceSetupFail => "fleet.duration.voice_setup_fail",
    }
}

/// Trace-span label for a failure kind (the short form shown on a
/// device's track in the trace viewer).
pub fn kind_span(kind: FailureKind) -> &'static str {
    match kind {
        FailureKind::DataSetupError => "data_setup_error",
        FailureKind::OutOfService => "out_of_service",
        FailureKind::DataStall => "data_stall",
        FailureKind::SmsSendFail => "sms_send_fail",
        FailureKind::VoiceSetupFail => "voice_setup_fail",
    }
}

/// Counter name for the RAT a failure occurred on.
pub fn rat_counter(rat: Rat) -> &'static str {
    match rat {
        Rat::G2 => "fleet.rat.2g",
        Rat::G3 => "fleet.rat.3g",
        Rat::G4 => "fleet.rat.4g",
        Rat::G5 => "fleet.rat.5g",
    }
}

/// Counter name for the fault layer of a setup-error cause (§3.2's
/// layered taxonomy).
pub fn layer_counter(layer: FailureLayer) -> &'static str {
    match layer {
        FailureLayer::Physical => "fleet.layer.physical",
        FailureLayer::LinkMac => "fleet.layer.link_mac",
        FailureLayer::Network => "fleet.layer.network",
        FailureLayer::Modem => "fleet.layer.modem",
        FailureLayer::Unknown => "fleet.layer.unknown",
    }
}

/// An [`EventSink`] that aggregates the failure stream into a
/// [`MetricsRegistry`]. Plain owned data: `Send`, and [`Merge`] delegates
/// to the registry's exact merge, so one sink per shard folds into the
/// same bytes as a single sequential sink.
#[derive(Debug, Clone, Default)]
pub struct FleetMetrics {
    registry: MetricsRegistry,
}

impl FleetMetrics {
    /// An empty sink.
    pub fn new() -> Self {
        FleetMetrics::default()
    }

    /// An empty sink that additionally records every failure as a Chrome
    /// trace span on its device's track (`tid` = device id, `ts`/`dur` =
    /// the failure's sim-time window). Use with small fleets — the trace
    /// grows by one event per failure.
    pub fn with_trace() -> Self {
        let mut registry = MetricsRegistry::new();
        registry.enable_trace();
        FleetMetrics { registry }
    }

    /// The underlying registry.
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Snapshot the aggregated metrics.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.registry.snapshot()
    }
}

impl EventSink for FleetMetrics {
    fn record(&mut self, event: &FailureEvent) {
        self.registry.inc("fleet.failures");
        self.registry.inc(kind_counter(event.kind));
        self.registry.inc(rat_counter(event.ctx.rat));
        if let Some(cause) = event.cause {
            self.registry.inc(layer_counter(cause.layer()));
        }
        self.registry
            .observe_duration(kind_duration_histogram(event.kind), event.duration);
        let (name, start, end, tid) = (
            kind_span(event.kind),
            event.start,
            event.start + event.duration,
            event.device.0 as u64,
        );
        if let Some(trace) = self.registry.trace_mut() {
            trace.record_complete(name, start, end, tid);
        }
    }
}

impl Merge for FleetMetrics {
    fn merge(&mut self, other: Self) {
        self.registry.merge(other.registry);
    }
}

/// Run the macro study with a [`FleetMetrics`] sink per shard and return
/// the folded fleet snapshot plus the device-count denominator. The
/// snapshot's [`MetricsSnapshot::digest`] is thread-count invariant.
/// With `trace` set, every failure also becomes a Chrome trace span.
pub fn run_fleet_metrics(
    cfg: &StudyConfig,
    threads: usize,
    trace: bool,
) -> (MetricsSnapshot, usize) {
    let make_sink = || {
        if trace {
            FleetMetrics::with_trace()
        } else {
            FleetMetrics::new()
        }
    };
    let (population, _, _, sink) = run_macro_study_parallel(cfg, threads, make_sink);
    (sink.snapshot(), population.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::population::PopulationConfig;
    use crate::study::run_macro_study;

    fn small_cfg() -> StudyConfig {
        StudyConfig {
            seed: 11,
            population: PopulationConfig {
                devices: 800,
                ..Default::default()
            },
            bs_count: 400,
            ..Default::default()
        }
    }

    #[test]
    fn metrics_match_materialised_dataset() {
        let cfg = small_cfg();
        let d = run_macro_study(&cfg);
        let (snap, devices) = run_fleet_metrics(&cfg, 1, false);
        assert_eq!(devices, d.population.len());
        assert_eq!(snap.counter("fleet.failures"), d.events.len() as u64);
        for kind in FailureKind::ALL {
            let expect = d.events.iter().filter(|e| e.kind == kind).count() as u64;
            assert_eq!(snap.counter(kind_counter(kind)), expect, "{kind:?}");
        }
        let with_cause = d.events.iter().filter(|e| e.cause.is_some()).count() as u64;
        let layered: u64 = [
            "fleet.layer.physical",
            "fleet.layer.link_mac",
            "fleet.layer.network",
            "fleet.layer.modem",
            "fleet.layer.unknown",
        ]
        .iter()
        .map(|n| snap.counter(n))
        .sum();
        assert_eq!(layered, with_cause);
    }

    #[test]
    fn fleet_digest_is_thread_count_invariant() {
        let cfg = small_cfg();
        let (base, _) = run_fleet_metrics(&cfg, 1, true);
        for threads in [2usize, 8] {
            let (snap, _) = run_fleet_metrics(&cfg, threads, true);
            assert_eq!(snap, base, "threads={threads}");
            assert_eq!(snap.digest(), base.digest(), "threads={threads}");
        }
        assert!(
            base.counter("fleet.failures") == base.trace().len() as u64,
            "one trace span per failure"
        );
    }
}
