//! Positions and distances on the synthetic map.
//!
//! The deployment lives on a square region measured in kilometres. Geography
//! is synthetic (DESIGN.md §11): what matters to the reproduction is relative
//! density and distance, not real coordinates.

/// A position on the map, in kilometres.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Pos {
    /// East–west coordinate (km).
    pub x: f64,
    /// North–south coordinate (km).
    pub y: f64,
}

impl Pos {
    /// Construct a position.
    pub const fn new(x: f64, y: f64) -> Pos {
        Pos { x, y }
    }

    /// Euclidean distance to another position, in km.
    pub fn distance_km(self, other: Pos) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        (dx * dx + dy * dy).sqrt()
    }

    /// Clamp the position into the square `[0, size] × [0, size]`.
    pub fn clamped(self, size: f64) -> Pos {
        Pos {
            x: self.x.clamp(0.0, size),
            y: self.y.clamp(0.0, size),
        }
    }

    /// Translate by a delta.
    pub fn offset(self, dx: f64, dy: f64) -> Pos {
        Pos {
            x: self.x + dx,
            y: self.y + dy,
        }
    }
}

/// A uniform spatial grid index over `[0, size] × [0, size]`, bucketing item
/// indices by cell for neighbourhood queries in O(cells touched).
#[derive(Debug, Clone)]
pub struct GridIndex {
    size_km: f64,
    cell_km: f64,
    cells_per_side: usize,
    buckets: Vec<Vec<u32>>,
}

impl GridIndex {
    /// Create an empty grid covering a `size_km × size_km` region with the
    /// given cell edge length.
    pub fn new(size_km: f64, cell_km: f64) -> Self {
        assert!(size_km > 0.0 && cell_km > 0.0);
        let cells_per_side = (size_km / cell_km).ceil().max(1.0) as usize;
        GridIndex {
            size_km,
            cell_km,
            cells_per_side,
            buckets: vec![Vec::new(); cells_per_side * cells_per_side],
        }
    }

    fn cell_of(&self, pos: Pos) -> (usize, usize) {
        let cx = ((pos.x / self.cell_km) as usize).min(self.cells_per_side - 1);
        let cy = ((pos.y / self.cell_km) as usize).min(self.cells_per_side - 1);
        (cx, cy)
    }

    /// Insert an item index at a position.
    pub fn insert(&mut self, pos: Pos, item: u32) {
        let (cx, cy) = self.cell_of(pos.clamped(self.size_km));
        self.buckets[cy * self.cells_per_side + cx].push(item);
    }

    /// Visit every item whose grid cell intersects the disc of `radius_km`
    /// around `pos`. Items outside the disc may be visited (cell granularity);
    /// callers filter by exact distance.
    pub fn for_each_near(&self, pos: Pos, radius_km: f64, mut f: impl FnMut(u32)) {
        let pos = pos.clamped(self.size_km);
        let r_cells = (radius_km / self.cell_km).ceil() as isize;
        let (cx, cy) = self.cell_of(pos);
        let (cx, cy) = (cx as isize, cy as isize);
        let n = self.cells_per_side as isize;
        for dy in -r_cells..=r_cells {
            let y = cy + dy;
            if y < 0 || y >= n {
                continue;
            }
            for dx in -r_cells..=r_cells {
                let x = cx + dx;
                if x < 0 || x >= n {
                    continue;
                }
                for &item in &self.buckets[(y * n + x) as usize] {
                    f(item);
                }
            }
        }
    }

    /// Collect items within exact distance `radius_km` of `pos`, given a
    /// position accessor for items.
    pub fn query_within(&self, pos: Pos, radius_km: f64, pos_of: impl Fn(u32) -> Pos) -> Vec<u32> {
        let mut out = Vec::new();
        self.for_each_near(pos, radius_km, |item| {
            if pos_of(item).distance_km(pos) <= radius_km {
                out.push(item);
            }
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance() {
        let a = Pos::new(0.0, 0.0);
        let b = Pos::new(3.0, 4.0);
        assert!((a.distance_km(b) - 5.0).abs() < 1e-12);
        assert_eq!(a.distance_km(a), 0.0);
    }

    #[test]
    fn clamping() {
        let p = Pos::new(-1.0, 11.0).clamped(10.0);
        assert_eq!(p, Pos::new(0.0, 10.0));
    }

    #[test]
    fn grid_finds_nearby_items() {
        let mut g = GridIndex::new(10.0, 1.0);
        let positions = [Pos::new(1.0, 1.0), Pos::new(1.2, 1.1), Pos::new(9.0, 9.0)];
        for (i, &p) in positions.iter().enumerate() {
            g.insert(p, i as u32);
        }
        let near = g.query_within(Pos::new(1.0, 1.0), 0.5, |i| positions[i as usize]);
        assert_eq!(near.len(), 2);
        assert!(near.contains(&0) && near.contains(&1));
    }

    #[test]
    fn grid_radius_excludes_far_items() {
        let mut g = GridIndex::new(10.0, 2.0);
        let positions = [Pos::new(0.5, 0.5), Pos::new(1.9, 1.9)];
        for (i, &p) in positions.iter().enumerate() {
            g.insert(p, i as u32);
        }
        // Item 1 shares the grid cell but is ~1.98 km away.
        let near = g.query_within(Pos::new(0.5, 0.5), 1.0, |i| positions[i as usize]);
        assert_eq!(near, vec![0]);
    }

    #[test]
    fn grid_handles_edge_positions() {
        let mut g = GridIndex::new(10.0, 3.0);
        g.insert(Pos::new(10.0, 10.0), 7);
        let near = g.query_within(Pos::new(10.0, 10.0), 0.1, |_| Pos::new(10.0, 10.0));
        assert_eq!(near, vec![7]);
    }
}
