//! Per-RAT utilisation: the idle-3G effect.
//!
//! §3.3: although 3G BSes are fewer and have worse coverage than 2G/4G, the
//! failure prevalence on 3G BSes is *lower*, because 3G access "is usually
//! not favored by user devices when 4G access is available, and the signal
//! coverage of 3G is much worse than that of 2G when 4G access is
//! unavailable" — so 3G carries less contention. We model that as a demand
//! multiplier applied to a site's ambient load when a device attaches over a
//! given RAT.

use cellrel_types::Rat;

/// Relative demand a RAT carrier sees, as a multiplier on site load.
///
/// 4G carries the bulk of traffic; 2G remains a fallback workhorse (voice /
/// coverage); 3G is the neglected middle child; 5G carriers are still few
/// but each serves data-hungry early adopters.
pub fn rat_demand_factor(rat: Rat) -> f64 {
    match rat {
        Rat::G2 => 0.80,
        Rat::G3 => 0.35, // the "idle" 3G network
        Rat::G4 => 1.00,
        Rat::G5 => 0.90,
    }
}

/// Diurnal modulation of ambient load: a simple two-peak day profile
/// (morning and evening rush), returning a multiplier around 1.0.
/// `hour_of_day` may be fractional.
pub fn diurnal_factor(hour_of_day: f64) -> f64 {
    let h = hour_of_day.rem_euclid(24.0);
    // Base level plus two Gaussian bumps at 08:30 and 18:30, and a deep
    // overnight trough.
    let bump = |center: f64, width: f64, height: f64| {
        let d = (h - center).abs().min(24.0 - (h - center).abs());
        height * (-(d * d) / (2.0 * width * width)).exp()
    };
    let night = bump(3.5, 2.5, -0.45);
    0.85 + bump(8.5, 1.5, 0.35) + bump(18.5, 2.0, 0.40) + night
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_g_is_idle() {
        assert!(rat_demand_factor(Rat::G3) < rat_demand_factor(Rat::G2));
        assert!(rat_demand_factor(Rat::G3) < rat_demand_factor(Rat::G4));
        assert!(rat_demand_factor(Rat::G3) < rat_demand_factor(Rat::G5));
    }

    #[test]
    fn diurnal_peaks_and_trough() {
        let rush = diurnal_factor(18.5);
        let night = diurnal_factor(3.5);
        let noon = diurnal_factor(12.0);
        assert!(rush > noon, "evening rush {rush} vs noon {noon}");
        assert!(night < noon, "night {night} vs noon {noon}");
        assert!(night > 0.0);
    }

    #[test]
    fn diurnal_wraps_midnight() {
        assert!((diurnal_factor(0.0) - diurnal_factor(24.0)).abs() < 1e-9);
        assert!((diurnal_factor(-1.0) - diurnal_factor(23.0)).abs() < 1e-9);
    }
}
