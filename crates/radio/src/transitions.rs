//! Next-transition RAT sampling for fleet-scale simulation.
//!
//! The per-second radio sampling of the full device stack is far too
//! expensive for 10⁶-device fleets: almost every sample observes "still on
//! 4G". This module models a device's serving RAT as a **semi-Markov jump
//! process** instead, so a fleet driver only does work when the RAT can
//! actually change:
//!
//! * the device *dwells* on its current RAT for an exponential holding
//!   time, then
//! * *jumps* to a RAT drawn ∝ the device's long-run usage mix
//!   (independently of the current RAT, self-jumps allowed).
//!
//! Because the jump target is drawn from the stationary mix itself and the
//! mean holding time is RAT-independent, the process's long-run time share
//! on each RAT equals the configured mix *exactly* — the same marginal the
//! macro study samples per failure (§3.3 / Fig. 14), now with a time axis
//! a discrete-event scheduler can skip along.

use cellrel_sim::{SimRng, WeightedIndex};
use cellrel_types::Rat;

/// A semi-Markov RAT occupancy process: exponential dwell, jump ∝ mix.
#[derive(Debug, Clone)]
pub struct RatTransitionModel {
    rats: [Rat; 4],
    mix: WeightedIndex,
    mean_dwell_ms: f64,
}

impl RatTransitionModel {
    /// Build a process whose long-run time share on `rats[i]` is
    /// `weights[i]` (normalised) and whose mean holding time between jump
    /// opportunities is `mean_dwell_ms`.
    ///
    /// # Panics
    /// Panics if all weights are zero or the mean dwell is not positive.
    pub fn new(rats: [Rat; 4], weights: [f64; 4], mean_dwell_ms: f64) -> Self {
        assert!(mean_dwell_ms > 0.0, "mean dwell must be positive");
        RatTransitionModel {
            rats,
            mix: WeightedIndex::new(&weights),
            mean_dwell_ms,
        }
    }

    /// Sample the stationary distribution — the serving RAT at time zero.
    pub fn initial(&self, rng: &mut SimRng) -> Rat {
        self.rats[self.mix.sample(rng)]
    }

    /// Sample the next jump: `(holding time in ms, RAT after the jump)`.
    /// The holding time is at least 1 ms so a scheduler never re-arms a
    /// timer at the current instant.
    pub fn next(&self, rng: &mut SimRng) -> (u64, Rat) {
        let dwell = self.exp_dwell(rng);
        let rat = self.rats[self.mix.sample(rng)];
        (dwell, rat)
    }

    /// Sample only the holding time (ms, ≥ 1).
    pub fn exp_dwell(&self, rng: &mut SimRng) -> u64 {
        (rng.exp(self.mean_dwell_ms).round() as u64).max(1)
    }

    /// The configured long-run time share of `rat` (0 if absent).
    pub fn time_share(&self, rat: Rat) -> f64 {
        self.rats
            .iter()
            .position(|&r| r == rat)
            .map_or(0.0, |i| self.mix.probability(i))
    }

    /// Mean holding time between jump opportunities, in ms.
    pub fn mean_dwell_ms(&self) -> f64 {
        self.mean_dwell_ms
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const RATS: [Rat; 4] = [Rat::G2, Rat::G3, Rat::G4, Rat::G5];

    fn model() -> RatTransitionModel {
        RatTransitionModel::new(RATS, [0.05, 0.03, 0.52, 0.40], 3_600_000.0)
    }

    #[test]
    fn long_run_time_share_matches_mix() {
        let m = model();
        let mut rng = SimRng::new(9);
        let mut rat = m.initial(&mut rng);
        let mut occupancy = [0u64; 4];
        // 40 000 jumps ≈ 4.5 simulated years at a 1 h mean dwell.
        for _ in 0..40_000 {
            let (dwell, next) = m.next(&mut rng);
            occupancy[rat.index()] += dwell;
            rat = next;
        }
        let total: u64 = occupancy.iter().sum();
        for (i, r) in RATS.iter().enumerate() {
            let share = occupancy[i] as f64 / total as f64;
            let expect = m.time_share(*r);
            assert!(
                (share - expect).abs() < 0.02,
                "{r:?}: time share {share} vs mix {expect}"
            );
        }
    }

    #[test]
    fn zero_weight_rat_is_never_served() {
        // A non-5G device: G5 weight 0 — the process must never land there.
        let m = RatTransitionModel::new(RATS, [0.12, 0.06, 0.82, 0.0], 600_000.0);
        let mut rng = SimRng::new(4);
        assert_eq!(m.time_share(Rat::G5), 0.0);
        for _ in 0..2_000 {
            let (_, rat) = m.next(&mut rng);
            assert_ne!(rat, Rat::G5);
        }
    }

    #[test]
    fn dwell_is_positive_with_configured_mean() {
        let m = model();
        let mut rng = SimRng::new(5);
        let mut sum = 0.0;
        for _ in 0..20_000 {
            let d = m.exp_dwell(&mut rng);
            assert!(d >= 1);
            sum += d as f64;
        }
        let mean = sum / 20_000.0;
        let expect = m.mean_dwell_ms();
        assert!(
            (mean - expect).abs() / expect < 0.05,
            "dwell mean {mean} vs {expect}"
        );
    }

    #[test]
    fn sampling_is_deterministic() {
        let m = model();
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..100 {
            assert_eq!(m.next(&mut a), m.next(&mut b));
        }
    }
}
