//! Procedural base-station deployment and the [`RadioEnvironment`] facade.
//!
//! The generator reproduces the deployment *structure* the paper's findings
//! rest on:
//!
//! * ISP shares of the BS population: 44.8 % / 29.4 % / 25.8 % (§3.3).
//! * RAT support mix: 23.4 % 2G, 10.2 % 3G, 65.2 % 4G, 7.3 % 5G, with
//!   multi-RAT sites (shares sum past 100 %).
//! * Spatial clustering: cities with dense cores, transport hubs where all
//!   three ISPs co-deploy at very small inter-site distance, sparse rural
//!   and remote fringes.
//! * Per-ISP frequency plans with ISP-B highest (smallest coverage) and
//!   bands that sit close together — the adjacent-channel interference
//!   ingredient.

use crate::bs::{BaseStation, BsIndex};
use crate::environment::Environment;
use crate::geometry::{GridIndex, Pos};
use crate::interference::RiskFactors;
use crate::propagation;
use crate::selection::{best_per_rat, CellView};
use cellrel_sim::{SimRng, WeightedIndex};
use cellrel_types::{BsId, Isp, Rat, RatSet};

/// Radius (km) within which sites interfere / count as neighbours.
const NEIGHBOR_RADIUS_KM: f64 = 0.6;

/// How far a device scan searches for candidate cells (km).
const SCAN_RADIUS_KM: f64 = 16.0;

/// Parameters for deployment generation.
#[derive(Debug, Clone)]
pub struct DeploymentConfig {
    /// Number of base stations to place.
    pub bs_count: usize,
    /// Edge length of the square region, km.
    pub region_km: f64,
    /// Number of city clusters.
    pub num_cities: usize,
    /// Number of transport hubs (placed inside cities).
    pub num_hubs: usize,
    /// Marginal probability that a site supports each RAT
    /// (2G, 3G, 4G, 5G). Defaults to the paper's shares.
    pub rat_support: [f64; 4],
}

impl Default for DeploymentConfig {
    fn default() -> Self {
        DeploymentConfig {
            bs_count: 4000,
            region_km: 100.0,
            num_cities: 5,
            num_hubs: 6,
            rat_support: [0.234, 0.102, 0.652, 0.073],
        }
    }
}

impl DeploymentConfig {
    /// A small deployment for unit tests and examples.
    pub fn small() -> Self {
        DeploymentConfig {
            bs_count: 600,
            region_km: 40.0,
            num_cities: 2,
            num_hubs: 2,
            ..Default::default()
        }
    }
}

/// The generated radio world: all base stations plus a spatial index.
#[derive(Debug)]
pub struct RadioEnvironment {
    cfg: DeploymentConfig,
    bses: Vec<BaseStation>,
    grid: GridIndex,
    city_centers: Vec<Pos>,
    hub_centers: Vec<Pos>,
}

impl RadioEnvironment {
    /// Generate a deployment from the config, deterministically from `rng`.
    pub fn generate(cfg: DeploymentConfig, rng: &mut SimRng) -> Self {
        assert!(cfg.bs_count > 0 && cfg.num_cities > 0);
        let mut rng = rng.fork(0xDEB0);

        // City centres spread across the region, hubs inside cities.
        let margin = cfg.region_km * 0.15;
        let city_centers: Vec<Pos> = (0..cfg.num_cities)
            .map(|_| {
                Pos::new(
                    rng.range_f64(margin, cfg.region_km - margin),
                    rng.range_f64(margin, cfg.region_km - margin),
                )
            })
            .collect();
        let hub_centers: Vec<Pos> = (0..cfg.num_hubs)
            .map(|_| {
                let city = *rng.choose(&city_centers);
                city.offset(rng.normal(0.0, 2.0), rng.normal(0.0, 2.0))
                    .clamped(cfg.region_km)
            })
            .collect();

        let env_weights: Vec<f64> = Environment::ALL
            .iter()
            .map(|e| e.deployment_share())
            .collect();
        let env_picker = WeightedIndex::new(&env_weights);
        let isp_weights: Vec<f64> = Isp::ALL.iter().map(|i| i.bs_share()).collect();
        let isp_picker = WeightedIndex::new(&isp_weights);

        let mut bses = Vec::with_capacity(cfg.bs_count);
        for i in 0..cfg.bs_count {
            let env = Environment::ALL[env_picker.sample(&mut rng)];
            let pos = place_site(env, &cfg, &city_centers, &hub_centers, &mut rng);
            // At transport hubs every ISP co-deploys, so hub sites draw the
            // ISP uniformly instead of by national share.
            let isp = if env == Environment::TransportHub {
                *rng.choose(&Isp::ALL)
            } else {
                Isp::ALL[isp_picker.sample(&mut rng)]
            };
            let rats = draw_rat_support(&cfg, env, &mut rng);
            let freq_mhz = carrier_frequency(isp, rats, &mut rng);
            let tx_power_dbm = match env {
                Environment::Rural | Environment::Remote => 48.0,
                Environment::TransportHub => 43.0,
                _ => 46.0,
            };
            let load = (env.base_load() + rng.normal(0.0, 0.10)).clamp(0.02, 1.0);
            let in_disrepair = rng.chance(env.disrepair_prob());
            let mnc = match isp {
                Isp::A => 0,
                Isp::B => 11,
                Isp::C => 1,
            };
            bses.push(BaseStation {
                id: BsId::gsm_cn(mnc, (i / 256) as u16, i as u32),
                isp,
                rats,
                freq_mhz,
                pos,
                env,
                tx_power_dbm,
                load,
                neighbor_count: 0,
                min_cross_isp_gap_mhz: f64::INFINITY,
                in_disrepair,
            });
        }

        // Spatial index, then neighbourhood statistics.
        let mut grid = GridIndex::new(cfg.region_km, (cfg.region_km / 50.0).max(0.5));
        for (i, bs) in bses.iter().enumerate() {
            grid.insert(bs.pos, i as u32);
        }
        let positions: Vec<Pos> = bses.iter().map(|b| b.pos).collect();
        for i in 0..bses.len() {
            let near =
                grid.query_within(positions[i], NEIGHBOR_RADIUS_KM, |j| positions[j as usize]);
            let mut count = 0u32;
            let mut min_gap = f64::INFINITY;
            for j in near {
                let j = j as usize;
                if j == i {
                    continue;
                }
                count += 1;
                if bses[j].isp != bses[i].isp {
                    let gap = (bses[j].freq_mhz - bses[i].freq_mhz).abs();
                    if gap < min_gap {
                        min_gap = gap;
                    }
                }
            }
            bses[i].neighbor_count = count;
            bses[i].min_cross_isp_gap_mhz = min_gap;
        }

        RadioEnvironment {
            cfg,
            bses,
            grid,
            city_centers,
            hub_centers,
        }
    }

    /// Number of base stations.
    pub fn bs_count(&self) -> usize {
        self.bses.len()
    }

    /// Look up a base station.
    pub fn bs(&self, idx: BsIndex) -> &BaseStation {
        &self.bses[idx.0 as usize]
    }

    /// All base stations.
    pub fn iter(&self) -> impl Iterator<Item = (BsIndex, &BaseStation)> {
        self.bses
            .iter()
            .enumerate()
            .map(|(i, b)| (BsIndex(i as u32), b))
    }

    /// The generation config.
    pub fn config(&self) -> &DeploymentConfig {
        &self.cfg
    }

    /// City centres (for placing device home locations).
    pub fn city_centers(&self) -> &[Pos] {
        &self.city_centers
    }

    /// Transport-hub centres.
    pub fn hub_centers(&self) -> &[Pos] {
        &self.hub_centers
    }

    /// Scan from `pos`: the best candidate cell per RAT in `rats`, for the
    /// device's subscribed ISP, with fresh shadowing per candidate.
    pub fn scan(&self, pos: Pos, isp: Isp, rats: RatSet, rng: &mut SimRng) -> Vec<CellView> {
        self.scan_salted(pos, isp, rats, 0, rng)
    }

    /// Scan with a per-device shadowing salt: the slow log-normal shadowing
    /// of each (device, BS) link is *persistent* (hashed from the salt and
    /// the BS index), with a small fast-fading jitter drawn from `rng`.
    /// Persistent shadowing is what keeps repeated scans of a stationary
    /// device coherent — without it, cell levels flicker scan-to-scan and
    /// every RAT policy degenerates into handover churn.
    pub fn scan_salted(
        &self,
        pos: Pos,
        isp: Isp,
        rats: RatSet,
        salt: u64,
        rng: &mut SimRng,
    ) -> Vec<CellView> {
        let mut candidates = Vec::new();
        let near = self
            .grid
            .query_within(pos, SCAN_RADIUS_KM, |j| self.bses[j as usize].pos);
        for j in near {
            let bs = &self.bses[j as usize];
            if bs.isp != isp {
                continue;
            }
            let d = bs.pos.distance_km(pos);
            let usable = bs.rats.intersection(rats);
            if usable.is_empty() {
                continue;
            }
            let shadow = 0.85 * stable_std_normal(salt, j) + 0.15 * rng.std_normal();
            for rat in usable.iter() {
                let tx = bs.tx_power_dbm - propagation::rat_clutter_db(rat);
                let rss = propagation::received_rss(tx, d, bs.freq_mhz, bs.env, shadow);
                // Ignore cells below the detection floor entirely. The floor
                // sits well under the level-1 thresholds so that a cell can
                // be *detectable yet level-0* — the band where Android 10's
                // blind 5G preference does its damage (§3.2).
                if rss.dbm() < -142.0 {
                    continue;
                }
                candidates.push(CellView::new(BsIndex(j), rat, rss));
            }
        }
        best_per_rat(&candidates)
    }

    /// Risk assessment for a candidate cell.
    pub fn risk(&self, cell: &CellView) -> RiskFactors {
        RiskFactors::assess(self.bs(cell.bs), cell.rat, cell.level)
    }
}

/// Deterministic standard-normal draw for a (device-salt, BS) link — the
/// persistent part of the link's shadowing.
fn stable_std_normal(salt: u64, bs: u32) -> f64 {
    fn mix(mut z: u64) -> u64 {
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
    let h1 = mix(salt.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ bs as u64);
    let h2 = mix(h1 ^ 0xD1B5_4A32_D192_ED03);
    let u1 = ((h1 >> 11) as f64 / (1u64 << 53) as f64).max(f64::MIN_POSITIVE);
    let u2 = (h2 >> 11) as f64 / (1u64 << 53) as f64;
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Place one site according to its environment class.
fn place_site(
    env: Environment,
    cfg: &DeploymentConfig,
    cities: &[Pos],
    hubs: &[Pos],
    rng: &mut SimRng,
) -> Pos {
    let spread = |center: Pos, sigma: f64, rng: &mut SimRng| {
        center
            .offset(rng.normal(0.0, sigma), rng.normal(0.0, sigma))
            .clamped(cfg.region_km)
    };
    match env {
        Environment::TransportHub => {
            let hub = if hubs.is_empty() {
                *rng.choose(cities)
            } else {
                *rng.choose(hubs)
            };
            spread(hub, env.typical_site_spacing_km(), rng)
        }
        Environment::UrbanCore => spread(*rng.choose(cities), 1.2, rng),
        Environment::Urban => spread(*rng.choose(cities), 3.0, rng),
        Environment::Suburban => spread(*rng.choose(cities), 7.0, rng),
        Environment::Rural | Environment::Remote => Pos::new(
            rng.range_f64(0.0, cfg.region_km),
            rng.range_f64(0.0, cfg.region_km),
        ),
    }
}

/// Draw the RAT support set for a site from a profile mix whose marginals
/// hit the paper's shares (2G 23.4 %, 3G 10.2 %, 4G 65.2 %, 5G 7.3 %).
///
/// The paper's shares sum to 106.1 %, i.e. the average site radiates 1.061
/// RATs — multi-RAT sites are the minority, and we attribute that overlap
/// to 4G+5G co-deployment (5G NSA anchoring on LTE). 5G rollout is
/// restricted to dense environments; the in-city 5G weight is scaled up so
/// the *population* share still matches.
fn draw_rat_support(cfg: &DeploymentConfig, env: Environment, rng: &mut SimRng) -> RatSet {
    let [p2, p3, p4, p5] = cfg.rat_support;
    // Split the 5G mass between 4G-anchored (84 %) and standalone (16 %)
    // sites so that total support mass stays at the configured marginals.
    let w45 = p5 * 0.84;
    let w5o = p5 * 0.16;

    let dense = matches!(
        env,
        Environment::UrbanCore | Environment::Urban | Environment::TransportHub
    );
    let city_share: f64 = [
        Environment::UrbanCore,
        Environment::Urban,
        Environment::TransportHub,
    ]
    .iter()
    .map(|e| e.deployment_share())
    .sum();

    // Per-environment profile weights: [2G], [3G], [4G], [4G+5G], [5G].
    let (w45_env, w5o_env) = if dense {
        (w45 / city_share, w5o / city_share)
    } else {
        (0.0, 0.0)
    };
    let w4_env = (p4 - w45_env).max(0.0);
    let weights = [p2, p3, w4_env, w45_env, w5o_env];

    match rng.weighted_index(&weights) {
        0 => RatSet::from_slice(&[Rat::G2]),
        1 => RatSet::from_slice(&[Rat::G3]),
        2 => RatSet::from_slice(&[Rat::G4]),
        3 => RatSet::from_slice(&[Rat::G4, Rat::G5]),
        _ => RatSet::from_slice(&[Rat::G5]),
    }
}

/// Per-ISP carrier frequency with band offsets per highest supported RAT.
fn carrier_frequency(isp: Isp, rats: RatSet, rng: &mut SimRng) -> f64 {
    let base = isp.median_freq_mhz();
    let band_offset = match rats.highest() {
        Some(Rat::G5) => 300.0,
        Some(Rat::G4) => 0.0,
        Some(Rat::G3) => -120.0,
        _ => -600.0,
    };
    base + band_offset + rng.normal(0.0, 40.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env_with_seed(seed: u64) -> RadioEnvironment {
        let mut rng = SimRng::new(seed);
        RadioEnvironment::generate(DeploymentConfig::default(), &mut rng)
    }

    #[test]
    fn generation_is_deterministic() {
        let a = env_with_seed(1);
        let b = env_with_seed(1);
        assert_eq!(a.bs_count(), b.bs_count());
        for ((_, x), (_, y)) in a.iter().zip(b.iter()) {
            assert_eq!(x.pos, y.pos);
            assert_eq!(x.isp, y.isp);
            assert_eq!(x.rats, y.rats);
        }
    }

    #[test]
    fn isp_shares_approximate_paper() {
        let env = env_with_seed(2);
        let n = env.bs_count() as f64;
        for isp in Isp::ALL {
            let share = env.iter().filter(|(_, b)| b.isp == isp).count() as f64 / n;
            // Hubs draw uniformly, so tolerate a few points of drift.
            assert!(
                (share - isp.bs_share()).abs() < 0.06,
                "{isp}: share {share} vs {}",
                isp.bs_share()
            );
        }
    }

    #[test]
    fn rat_support_approximates_paper() {
        let env = env_with_seed(3);
        let n = env.bs_count() as f64;
        let expected = [0.234, 0.102, 0.652, 0.073];
        for rat in Rat::ALL {
            let share = env.iter().filter(|(_, b)| b.rats.contains(rat)).count() as f64 / n;
            let target = expected[rat.index()];
            assert!(
                (share - target).abs() < 0.05,
                "{rat}: share {share} vs {target}"
            );
        }
        // No site is RAT-less.
        assert!(env.iter().all(|(_, b)| !b.rats.is_empty()));
    }

    #[test]
    fn hubs_are_dense_multi_isp() {
        let env = env_with_seed(4);
        let hub_density: f64 = {
            let hubs: Vec<_> = env
                .iter()
                .filter(|(_, b)| b.env == Environment::TransportHub)
                .collect();
            assert!(!hubs.is_empty());
            hubs.iter()
                .map(|(_, b)| b.neighbor_count as f64)
                .sum::<f64>()
                / hubs.len() as f64
        };
        let rural_density: f64 = {
            let rural: Vec<_> = env
                .iter()
                .filter(|(_, b)| b.env == Environment::Rural)
                .collect();
            rural
                .iter()
                .map(|(_, b)| b.neighbor_count as f64)
                .sum::<f64>()
                / rural.len().max(1) as f64
        };
        assert!(
            hub_density > rural_density * 3.0,
            "hub {hub_density} vs rural {rural_density}"
        );
        // Hub sites have close cross-ISP neighbours in frequency.
        let hub_gaps: Vec<f64> = env
            .iter()
            .filter(|(_, b)| b.env == Environment::TransportHub)
            .map(|(_, b)| b.min_cross_isp_gap_mhz)
            .filter(|g| g.is_finite())
            .collect();
        assert!(!hub_gaps.is_empty(), "hubs must see cross-ISP neighbours");
    }

    #[test]
    fn scan_finds_cells_in_city() {
        let env = env_with_seed(5);
        let mut rng = SimRng::new(99);
        let city = env.city_centers()[0];
        for isp in Isp::ALL {
            let views = env.scan(city, isp, RatSet::up_to(Rat::G4), &mut rng);
            assert!(!views.is_empty(), "no cells for {isp} at city centre");
            for v in &views {
                assert_eq!(env.bs(v.bs).isp, isp);
                assert!(env.bs(v.bs).rats.contains(v.rat));
            }
        }
    }

    #[test]
    fn scan_respects_rat_filter() {
        let env = env_with_seed(6);
        let mut rng = SimRng::new(100);
        let city = env.city_centers()[0];
        let views = env.scan(city, Isp::A, RatSet::from_slice(&[Rat::G4]), &mut rng);
        assert!(views.iter().all(|v| v.rat == Rat::G4));
    }

    #[test]
    fn fiveg_only_in_dense_environments() {
        let env = env_with_seed(7);
        for (_, b) in env.iter() {
            if b.rats.contains(Rat::G5) {
                assert!(matches!(
                    b.env,
                    Environment::UrbanCore | Environment::Urban | Environment::TransportHub
                ));
            }
        }
    }

    #[test]
    fn risk_of_scanned_cell_is_consistent() {
        let env = env_with_seed(8);
        let mut rng = SimRng::new(101);
        let city = env.city_centers()[0];
        let views = env.scan(city, Isp::A, RatSet::up_to(Rat::G5), &mut rng);
        for v in views {
            let r = env.risk(&v);
            assert!(r.setup_failure_prob() > 0.0 && r.setup_failure_prob() <= 0.95);
        }
    }
}
