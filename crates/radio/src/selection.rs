//! Cell views and best-cell selection.
//!
//! A scan produces one [`CellView`] per RAT the device can use — the best
//! (highest-RSS) candidate cell for that RAT. RAT *selection policy* (which
//! of these views to camp on) belongs to the telephony layer; the radio
//! layer only reports what is out there.

use crate::bs::BsIndex;
use cellrel_types::{Rat, RssDbm, SignalLevel};

/// One candidate serving cell: the best cell found for a given RAT.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellView {
    /// Which base station.
    pub bs: BsIndex,
    /// The RAT this view is for.
    pub rat: Rat,
    /// Measured RSS.
    pub rss: RssDbm,
    /// Bucketed signal level.
    pub level: SignalLevel,
}

impl CellView {
    /// Build a view, bucketing the RSS.
    pub fn new(bs: BsIndex, rat: Rat, rss: RssDbm) -> CellView {
        CellView {
            bs,
            rat,
            rss,
            level: SignalLevel::from_rss(rss, rat),
        }
    }

    /// Estimated achievable downlink rate in Mbps for this view: the RAT's
    /// peak scaled by a per-level efficiency. This is the model behind the
    /// paper's §4.2 observation that a level-0 5G link almost never beats a
    /// healthy 4G link.
    pub fn estimated_rate_mbps(&self) -> f64 {
        self.rat.peak_rate_mbps() * level_efficiency(self.level)
    }
}

/// Link efficiency per signal level: fraction of the RAT's peak rate a
/// device can realistically draw.
pub fn level_efficiency(level: SignalLevel) -> f64 {
    const EFF: [f64; SignalLevel::COUNT] = [0.004, 0.05, 0.15, 0.35, 0.62, 0.85];
    EFF[level.index()]
}

/// From a flat candidate list, keep the best (max-RSS) view per RAT,
/// returned in ascending RAT order.
pub fn best_per_rat(candidates: &[CellView]) -> Vec<CellView> {
    let mut best: [Option<CellView>; 4] = [None; 4];
    for &c in candidates {
        let slot = &mut best[c.rat.index()];
        match slot {
            Some(cur) if cur.rss.dbm() >= c.rss.dbm() => {}
            _ => *slot = Some(c),
        }
    }
    best.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(bs: u32, rat: Rat, dbm: f64) -> CellView {
        CellView::new(BsIndex(bs), rat, RssDbm(dbm))
    }

    #[test]
    fn view_buckets_level() {
        let v = view(0, Rat::G4, -90.0);
        assert_eq!(v.level, SignalLevel::L4);
    }

    #[test]
    fn best_per_rat_picks_strongest() {
        let cands = [
            view(0, Rat::G4, -100.0),
            view(1, Rat::G4, -90.0),
            view(2, Rat::G5, -120.0),
        ];
        let best = best_per_rat(&cands);
        assert_eq!(best.len(), 2);
        assert_eq!(best[0].bs, BsIndex(1));
        assert_eq!(best[0].rat, Rat::G4);
        assert_eq!(best[1].rat, Rat::G5);
    }

    #[test]
    fn best_per_rat_empty() {
        assert!(best_per_rat(&[]).is_empty());
    }

    #[test]
    fn rate_model_5g_level0_below_4g_level4() {
        // §4.2: 4G level-1..4 → 5G level-0 transitions almost always *lose*
        // data rate; the rate model must reflect that.
        let g5_l0 = view(0, Rat::G5, -130.0);
        assert_eq!(g5_l0.level, SignalLevel::L0);
        let g4_l4 = view(1, Rat::G4, -90.0);
        assert!(g5_l0.estimated_rate_mbps() < g4_l4.estimated_rate_mbps());
        // But a healthy 5G link does beat 4G.
        let g5_l4 = view(2, Rat::G5, -90.0);
        assert!(g5_l4.estimated_rate_mbps() > g4_l4.estimated_rate_mbps());
    }

    #[test]
    fn efficiency_monotone() {
        let effs: Vec<f64> = SignalLevel::ALL
            .iter()
            .map(|&l| level_efficiency(l))
            .collect();
        assert!(effs.windows(2).all(|w| w[0] < w[1]));
    }
}
