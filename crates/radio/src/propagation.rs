//! Radio propagation: log-distance path loss with log-normal shadowing.
//!
//! The standard empirical model:
//!
//! ```text
//! PL(d) = PL(d0) + 10·n·log10(d / d0) + X_sigma
//! ```
//!
//! where `PL(d0)` is the free-space loss at the reference distance (1 m here,
//! via Friis), `n` is the environment's path-loss exponent and `X_sigma` is
//! Gaussian shadowing in dB. Received power is then `tx_power − PL`.
//!
//! Higher carrier frequencies lose more at the reference distance, which is
//! exactly why ISP-B (highest median frequency) has smaller per-BS coverage
//! (§3.3) — the model reproduces that ordering for free.

use crate::environment::Environment;
use cellrel_types::{Rat, RssDbm, SignalLevel};

/// Free-space path loss at 1 m for carrier frequency `freq_mhz`, in dB
/// (Friis: 20·log10(d_km) + 20·log10(f_MHz) + 32.44, with d = 0.001 km).
pub fn reference_loss_db(freq_mhz: f64) -> f64 {
    20.0 * (0.001f64).log10() + 20.0 * freq_mhz.log10() + 32.44
}

/// Deterministic path loss (no shadowing) at distance `d_km` for the given
/// environment and frequency.
pub fn path_loss_db(d_km: f64, freq_mhz: f64, env: Environment) -> f64 {
    let d_m = (d_km * 1000.0).max(1.0);
    reference_loss_db(freq_mhz) + 10.0 * env.path_loss_exponent() * d_m.log10()
}

/// Received signal strength for a link, including a shadowing term supplied
/// by the caller (a standard-normal draw scaled by the environment's sigma —
/// callers keep the draw so repeated measurements of a static link stay
/// coherent).
pub fn received_rss(
    tx_power_dbm: f64,
    d_km: f64,
    freq_mhz: f64,
    env: Environment,
    shadowing_std_normal: f64,
) -> RssDbm {
    let pl = path_loss_db(d_km, freq_mhz, env) + shadowing_std_normal * env.shadowing_sigma_db();
    RssDbm(tx_power_dbm - pl)
}

/// The distance (km) at which the *median* link hits the given RSS —
/// i.e. the nominal coverage radius for a target edge level.
pub fn range_for_rss(tx_power_dbm: f64, target_dbm: f64, freq_mhz: f64, env: Environment) -> f64 {
    let budget = tx_power_dbm - target_dbm - reference_loss_db(freq_mhz);
    let d_m = 10f64.powf(budget / (10.0 * env.path_loss_exponent()));
    (d_m / 1000.0).max(0.001)
}

/// Extra clutter / penetration loss by RAT generation, in dB. Mid-band NR
/// suffers far more from walls and street clutter than the sub-2 GHz legacy
/// carriers — this is why 2020-era 5G coverage was spotty at the edges even
/// where 4G stayed healthy (§3.2's level-0 5G problem zone).
pub const fn rat_clutter_db(rat: Rat) -> f64 {
    match rat {
        Rat::G2 => 0.0,
        Rat::G3 => 3.0,
        Rat::G4 => 6.0,
        Rat::G5 => 19.0,
    }
}

/// Nominal coverage radius: median link at the RAT's level-1 threshold
/// (service edge), including the RAT clutter penalty.
pub fn coverage_radius_km(tx_power_dbm: f64, freq_mhz: f64, env: Environment, rat: Rat) -> f64 {
    let edge = SignalLevel::thresholds(rat)[0];
    range_for_rss(tx_power_dbm - rat_clutter_db(rat), edge, freq_mhz, env)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loss_grows_with_distance() {
        let e = Environment::Urban;
        let near = path_loss_db(0.1, 1900.0, e);
        let far = path_loss_db(1.0, 1900.0, e);
        assert!(far > near);
        // One decade of distance = 10·n dB.
        assert!((far - near - 10.0 * e.path_loss_exponent()).abs() < 1e-9);
    }

    #[test]
    fn loss_grows_with_frequency() {
        let e = Environment::Urban;
        assert!(path_loss_db(0.5, 2400.0, e) > path_loss_db(0.5, 1800.0, e));
    }

    #[test]
    fn rss_decreases_with_distance_and_shadowing_shifts_it() {
        let e = Environment::Suburban;
        let a = received_rss(46.0, 0.2, 1900.0, e, 0.0);
        let b = received_rss(46.0, 1.0, 1900.0, e, 0.0);
        assert!(a.dbm() > b.dbm());
        // A +1σ shadowing draw deepens the loss by exactly sigma dB.
        let shadowed = received_rss(46.0, 0.2, 1900.0, e, 1.0);
        assert!((a.dbm() - shadowed.dbm() - e.shadowing_sigma_db()).abs() < 1e-9);
    }

    #[test]
    fn range_inverts_path_loss() {
        let e = Environment::Rural;
        let d = range_for_rss(46.0, -110.0, 1800.0, e);
        let rss = received_rss(46.0, d, 1800.0, e, 0.0);
        assert!((rss.dbm() - -110.0).abs() < 0.01, "round-trip rss {rss}");
    }

    #[test]
    fn higher_frequency_means_smaller_coverage() {
        // The ISP-B effect: same power, higher frequency → smaller radius.
        let e = Environment::Urban;
        let low = coverage_radius_km(46.0, 1880.0, e, Rat::G4);
        let high = coverage_radius_km(46.0, 2370.0, e, Rat::G4);
        assert!(high < low, "high {high} vs low {low}");
    }

    #[test]
    fn coverage_is_kilometre_scale() {
        let d = coverage_radius_km(46.0, 1900.0, Environment::Urban, Rat::G4);
        assert!((0.3..30.0).contains(&d), "radius {d} km");
    }
}
