//! Interference and per-cell failure risk.
//!
//! §3.3 explains the excellent-RSS anomaly: around public transport hubs,
//! ISPs deploy densely and their frequency bands sit close together
//! (ISP-B's > ISP-C's > ISP-A's, occasionally overlapping), so devices see
//! level-5 signal *and* suffer adjacent-channel interference plus heavy
//! LTE mobility-management pressure (`EMM_ACCESS_BARRED`,
//! `INVALID_EMM_STATE`). [`RiskFactors`] distils a candidate cell into the
//! probabilities the modem and EMM layers consume.

use crate::bs::BaseStation;
use cellrel_types::{Rat, SignalLevel};

/// Failure-risk decomposition for one candidate cell at one signal level.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RiskFactors {
    /// Baseline setup-failure risk from the signal level alone (worse signal,
    /// higher risk; strictly decreasing in level).
    pub signal_risk: f64,
    /// Interference coupling 0..1 from deployment density and cross-ISP
    /// frequency proximity.
    pub interference: f64,
    /// Probability of a *rational* overload rejection (false positive class).
    pub overload_prob: f64,
    /// Mobility-management pressure 0..1 (density-driven EMM complexity).
    pub emm_pressure: f64,
    /// Whether the site is in disrepair (extreme outage durations).
    pub disrepair: bool,
}

/// Baseline setup-failure risk per signal level — strictly decreasing from
/// level 0 to level 5. The Fig. 15 *spike* at level 5 is NOT encoded here; it
/// emerges from interference+EMM pressure at the dense sites where level-5
/// readings occur.
pub fn signal_base_risk(level: SignalLevel) -> f64 {
    const RISK: [f64; SignalLevel::COUNT] = [0.32, 0.115, 0.075, 0.048, 0.030, 0.022];
    RISK[level.index()]
}

/// Interference coupling of a site: density saturating at ~30 neighbours,
/// modulated by how close the nearest other-ISP carrier sits in frequency
/// (exponential with a 25 MHz scale).
pub fn interference_factor(bs: &BaseStation) -> f64 {
    let density = (bs.neighbor_count as f64 / 30.0).min(1.0);
    let freq = if bs.min_cross_isp_gap_mhz.is_finite() {
        (-bs.min_cross_isp_gap_mhz / 25.0).exp()
    } else {
        0.0
    };
    (density * (0.45 + 0.55 * freq)).clamp(0.0, 1.0)
}

/// Mobility-management pressure of a site: grows with deployment density
/// (more handover candidates, more tracking-area churn, more barring).
pub fn emm_pressure(bs: &BaseStation) -> f64 {
    let density = (bs.neighbor_count as f64 / 20.0).min(1.0);
    let mobility = if bs.env.is_high_mobility() { 1.0 } else { 0.45 };
    (density * mobility).clamp(0.0, 1.0)
}

impl RiskFactors {
    /// Assemble the risk factors for a device attaching to `bs` over `rat`
    /// with the observed `level`.
    pub fn assess(bs: &BaseStation, rat: Rat, level: SignalLevel) -> RiskFactors {
        RiskFactors {
            signal_risk: signal_base_risk(level),
            interference: interference_factor(bs),
            overload_prob: bs.overload_rejection_prob(rat),
            emm_pressure: emm_pressure(bs),
            disrepair: bs.in_disrepair,
        }
    }

    /// Probability that a data-call setup attempt on this cell *truly* fails
    /// (excluding rational overload rejections, which are separate).
    ///
    /// Interference and EMM pressure multiply the signal baseline — at a
    /// dense hub a level-5 cell can end up riskier than a quiet level-2 cell,
    /// which is exactly the Fig. 15 inversion.
    pub fn setup_failure_prob(&self) -> f64 {
        let amplified = self.signal_risk * (1.0 + 2.2 * self.interference);
        let emm = 0.06 * self.emm_pressure;
        let disrepair = if self.disrepair { 0.25 } else { 0.0 };
        (amplified + emm + disrepair).clamp(0.0, 0.95)
    }

    /// Multiplier on the ambient Data_Stall hazard while camped on this cell.
    pub fn stall_rate_multiplier(&self) -> f64 {
        let base = 1.0 + 1.8 * self.interference + 0.8 * self.signal_risk / 0.32;
        if self.disrepair {
            base * 3.0
        } else {
            base
        }
    }

    /// Probability that an established connection drops into Out_of_Service
    /// per camped hour.
    pub fn out_of_service_hazard(&self) -> f64 {
        let base = 0.004 + 0.02 * self.signal_risk + 0.01 * self.interference;
        if self.disrepair {
            base * 8.0
        } else {
            base
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::environment::Environment;
    use crate::geometry::Pos;
    use cellrel_types::{BsId, Isp, RatSet};

    fn bs(env: Environment, neighbors: u32, gap: f64, load: f64) -> BaseStation {
        BaseStation {
            id: BsId::gsm_cn(0, 1, 1),
            isp: Isp::B,
            rats: RatSet::up_to(Rat::G5),
            freq_mhz: 2370.0,
            pos: Pos::new(0.0, 0.0),
            env,
            tx_power_dbm: 46.0,
            load,
            neighbor_count: neighbors,
            min_cross_isp_gap_mhz: gap,
            in_disrepair: false,
        }
    }

    #[test]
    fn base_risk_strictly_decreasing() {
        let risks: Vec<f64> = SignalLevel::ALL
            .iter()
            .map(|&l| signal_base_risk(l))
            .collect();
        assert!(risks.windows(2).all(|w| w[0] > w[1]), "{risks:?}");
    }

    #[test]
    fn isolated_bs_has_no_interference() {
        let b = bs(Environment::Rural, 0, f64::INFINITY, 0.2);
        assert_eq!(interference_factor(&b), 0.0);
        assert_eq!(emm_pressure(&b), 0.0);
    }

    #[test]
    fn hub_level5_riskier_than_quiet_level2() {
        // The Fig. 15 inversion: excellent signal at a dense hub with close
        // cross-ISP frequencies beats a mid-signal quiet suburban cell.
        let hub = bs(Environment::TransportHub, 40, 3.0, 0.9);
        let quiet = bs(Environment::Suburban, 2, 200.0, 0.4);
        let hub_risk = RiskFactors::assess(&hub, Rat::G4, SignalLevel::L5);
        let quiet_risk = RiskFactors::assess(&quiet, Rat::G4, SignalLevel::L2);
        assert!(
            hub_risk.setup_failure_prob() > quiet_risk.setup_failure_prob(),
            "hub L5 {} vs quiet L2 {}",
            hub_risk.setup_failure_prob(),
            quiet_risk.setup_failure_prob()
        );
    }

    #[test]
    fn same_site_risk_decreases_with_level() {
        let b = bs(Environment::Urban, 6, 150.0, 0.5);
        let mut last = f64::INFINITY;
        for level in SignalLevel::ALL {
            let p = RiskFactors::assess(&b, Rat::G4, level).setup_failure_prob();
            assert!(p < last, "risk must fall with level on a fixed site");
            last = p;
        }
    }

    #[test]
    fn disrepair_amplifies_everything() {
        let mut b = bs(Environment::Remote, 0, f64::INFINITY, 0.1);
        let healthy = RiskFactors::assess(&b, Rat::G4, SignalLevel::L3);
        b.in_disrepair = true;
        let broken = RiskFactors::assess(&b, Rat::G4, SignalLevel::L3);
        assert!(broken.setup_failure_prob() > healthy.setup_failure_prob());
        assert!(broken.stall_rate_multiplier() > healthy.stall_rate_multiplier());
        assert!(broken.out_of_service_hazard() > healthy.out_of_service_hazard());
    }

    #[test]
    fn probabilities_stay_in_unit_interval() {
        let b = bs(Environment::TransportHub, 200, 0.0, 1.0);
        let r = RiskFactors::assess(&b, Rat::G5, SignalLevel::L0);
        assert!(r.setup_failure_prob() <= 0.95);
        assert!(r.interference <= 1.0 && r.emm_pressure <= 1.0);
        assert!(r.overload_prob <= 1.0);
    }
}
