//! Deployment environments.
//!
//! The paper's BS-side findings hinge on *where* a base station sits:
//! top-failure BSes cluster in crowded urban areas (§3.3, Fig. 11); the
//! excellent-RSS anomaly comes from densely deployed BSes around public
//! transport hubs; the 25.5-hour outages come from neglected BSes in remote
//! mountain/offshore areas. [`Environment`] encodes those classes together
//! with their propagation and workload characteristics.

use std::fmt;

/// The deployment environment of a base station.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Environment {
    /// Dense city core: heavy load, substantial interference.
    UrbanCore,
    /// Regular city fabric.
    Urban,
    /// Suburbs: moderate load.
    Suburban,
    /// Countryside: light load, sparse coverage.
    Rural,
    /// Public transport hub: very dense multi-ISP deployment, excellent RSS,
    /// but high control-channel pressure — the Fig. 15 anomaly's home.
    TransportHub,
    /// Mountain / offshore: BSes "long neglected and in disrepair" (§3.1),
    /// producing the extreme-duration outages.
    Remote,
}

impl Environment {
    /// All environments.
    pub const ALL: [Environment; 6] = [
        Environment::UrbanCore,
        Environment::Urban,
        Environment::Suburban,
        Environment::Rural,
        Environment::TransportHub,
        Environment::Remote,
    ];

    /// Stable array index.
    pub const fn index(self) -> usize {
        match self {
            Environment::UrbanCore => 0,
            Environment::Urban => 1,
            Environment::Suburban => 2,
            Environment::Rural => 3,
            Environment::TransportHub => 4,
            Environment::Remote => 5,
        }
    }

    /// Share of the BS population deployed in this environment.
    pub const fn deployment_share(self) -> f64 {
        match self {
            Environment::UrbanCore => 0.12,
            Environment::Urban => 0.30,
            Environment::Suburban => 0.24,
            Environment::Rural => 0.20,
            Environment::TransportHub => 0.04,
            Environment::Remote => 0.10,
        }
    }

    /// Log-distance path-loss exponent (free space = 2.0; dense clutter
    /// higher).
    pub const fn path_loss_exponent(self) -> f64 {
        match self {
            Environment::UrbanCore => 3.5,
            Environment::Urban => 3.2,
            Environment::Suburban => 2.9,
            Environment::Rural => 2.6,
            Environment::TransportHub => 3.0,
            Environment::Remote => 2.4,
        }
    }

    /// Log-normal shadowing standard deviation in dB.
    pub const fn shadowing_sigma_db(self) -> f64 {
        match self {
            Environment::UrbanCore => 8.0,
            Environment::Urban => 7.0,
            Environment::Suburban => 6.0,
            Environment::Rural => 5.0,
            Environment::TransportHub => 6.0,
            Environment::Remote => 5.0,
        }
    }

    /// Baseline cell utilisation (0..1) before per-BS noise: the ambient
    /// cellular access workload of the area.
    pub const fn base_load(self) -> f64 {
        match self {
            Environment::UrbanCore => 0.70,
            Environment::Urban => 0.55,
            Environment::Suburban => 0.40,
            Environment::Rural => 0.25,
            Environment::TransportHub => 0.85,
            Environment::Remote => 0.10,
        }
    }

    /// Relative probability that a BS here is in disrepair (drives the
    /// extreme-duration outage tail).
    pub const fn disrepair_prob(self) -> f64 {
        match self {
            Environment::UrbanCore => 0.001,
            Environment::Urban => 0.002,
            Environment::Suburban => 0.004,
            Environment::Rural => 0.010,
            Environment::TransportHub => 0.001,
            Environment::Remote => 0.060,
        }
    }

    /// Typical inter-site distance in km — controls cluster tightness during
    /// deployment generation.
    pub const fn typical_site_spacing_km(self) -> f64 {
        match self {
            Environment::UrbanCore => 0.4,
            Environment::Urban => 0.8,
            Environment::Suburban => 1.6,
            Environment::Rural => 5.0,
            Environment::TransportHub => 0.15,
            Environment::Remote => 12.0,
        }
    }

    /// Whether devices here are crowd-mobility heavy (hubs and cores), which
    /// stresses mobility management.
    pub const fn is_high_mobility(self) -> bool {
        matches!(self, Environment::TransportHub | Environment::UrbanCore)
    }
}

impl fmt::Display for Environment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Environment::UrbanCore => "urban-core",
            Environment::Urban => "urban",
            Environment::Suburban => "suburban",
            Environment::Rural => "rural",
            Environment::TransportHub => "transport-hub",
            Environment::Remote => "remote",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shares_sum_to_one() {
        let total: f64 = Environment::ALL.iter().map(|e| e.deployment_share()).sum();
        assert!((total - 1.0).abs() < 1e-9, "shares sum to {total}");
    }

    #[test]
    fn indices_are_unique() {
        let mut seen = [false; 6];
        for e in Environment::ALL {
            assert!(!seen[e.index()]);
            seen[e.index()] = true;
        }
    }

    #[test]
    fn hub_is_densest_and_busiest() {
        for e in Environment::ALL {
            if e != Environment::TransportHub {
                assert!(
                    Environment::TransportHub.typical_site_spacing_km()
                        < e.typical_site_spacing_km()
                );
                assert!(Environment::TransportHub.base_load() >= e.base_load());
            }
        }
    }

    #[test]
    fn remote_has_worst_disrepair() {
        for e in Environment::ALL {
            if e != Environment::Remote {
                assert!(Environment::Remote.disrepair_prob() > e.disrepair_prob());
            }
        }
    }

    #[test]
    fn path_loss_exponents_are_physical() {
        for e in Environment::ALL {
            let n = e.path_loss_exponent();
            assert!((2.0..=4.0).contains(&n), "{e}: exponent {n}");
        }
    }
}
