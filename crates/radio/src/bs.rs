//! The base-station record.

use crate::environment::Environment;
use crate::geometry::Pos;
use cellrel_types::{BsId, Isp, Rat, RatSet};

/// Dense index of a base station inside a [`crate::RadioEnvironment`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BsIndex(pub u32);

/// One base station of the synthetic deployment.
#[derive(Debug, Clone)]
pub struct BaseStation {
    /// Protocol-level identity (what devices record in traces).
    pub id: BsId,
    /// Owning ISP.
    pub isp: Isp,
    /// RAT generations this site radiates. Multi-RAT sites are common
    /// (the paper's support shares sum to >100 %).
    pub rats: RatSet,
    /// Carrier frequency in MHz (per-ISP band with per-site offset).
    pub freq_mhz: f64,
    /// Site position, km.
    pub pos: Pos,
    /// Deployment environment class.
    pub env: Environment,
    /// Effective isotropic transmit power in dBm.
    pub tx_power_dbm: f64,
    /// Current utilisation 0..1 (ambient load; drives overload rejections).
    pub load: f64,
    /// Number of other BSes within interference range — populated by the
    /// deployment generator; the Fig. 15 anomaly scales with this.
    pub neighbor_count: u32,
    /// Smallest carrier-frequency gap (MHz) to any different-ISP neighbour;
    /// `f64::INFINITY` when isolated. Small gaps ⇒ adjacent-channel
    /// interference (§3.3).
    pub min_cross_isp_gap_mhz: f64,
    /// True for the "long neglected and in disrepair" sites that produce
    /// extreme-duration outages (§3.1).
    pub in_disrepair: bool,
}

impl BaseStation {
    /// Effective utilisation as seen by a device attaching over `rat`,
    /// applying the per-RAT demand model (the idle-3G effect).
    pub fn load_for(&self, rat: Rat) -> f64 {
        (self.load * crate::load::rat_demand_factor(rat)).clamp(0.0, 1.0)
    }

    /// Probability the BS rejects a setup right now purely because it is
    /// overloaded (a *rational* rejection → false positive in the study).
    pub fn overload_rejection_prob(&self, rat: Rat) -> f64 {
        let l = self.load_for(rat);
        // Rejections only materialise once utilisation is high; quadratic
        // onset above 70 %.
        let excess = (l - 0.7).max(0.0) / 0.3;
        (0.35 * excess * excess).min(0.35)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bs(load: f64) -> BaseStation {
        BaseStation {
            id: BsId::gsm_cn(0, 1, 1),
            isp: Isp::A,
            rats: RatSet::up_to(Rat::G4),
            freq_mhz: 1880.0,
            pos: Pos::new(0.0, 0.0),
            env: Environment::Urban,
            tx_power_dbm: 46.0,
            load,
            neighbor_count: 3,
            min_cross_isp_gap_mhz: 100.0,
            in_disrepair: false,
        }
    }

    #[test]
    fn idle_bs_never_rejects() {
        let bs = sample_bs(0.2);
        for rat in Rat::ALL {
            assert_eq!(bs.overload_rejection_prob(rat), 0.0);
        }
    }

    #[test]
    fn overloaded_bs_rejects_sometimes() {
        let bs = sample_bs(1.0);
        assert!(bs.overload_rejection_prob(Rat::G4) > 0.2);
        assert!(bs.overload_rejection_prob(Rat::G4) <= 0.35);
    }

    #[test]
    fn three_g_sees_less_load() {
        let bs = sample_bs(0.9);
        assert!(bs.load_for(Rat::G3) < bs.load_for(Rat::G4));
        assert!(bs.load_for(Rat::G3) < bs.load_for(Rat::G2));
    }
}
