//! # cellrel-radio
//!
//! The physical-radio-network substrate: everything the paper's real world
//! provided for free — 5.3 M base stations of three ISPs, propagation, cell
//! selection, LTE mobility management, interference — rebuilt as an explicit
//! model.
//!
//! Components:
//!
//! * [`geometry`] — positions and distances on the synthetic map.
//! * [`environment`] — deployment environments (urban core, transport hub,
//!   rural, remote, …) with their propagation and load characteristics.
//! * [`bs`] — the [`BaseStation`] record.
//! * [`propagation`] — log-distance path loss with shadowing; RSS → level.
//! * [`deployment`] — procedural generation of a full BS deployment with the
//!   paper's ISP shares, RAT-support mix and hub clustering.
//! * [`selection`] — cell scan/selection: the best serving cell per RAT.
//! * [`emm`] — EPS mobility management: registration, service requests,
//!   access barring (the source of `EMM_ACCESS_BARRED` / `INVALID_EMM_STATE`
//!   failures near dense deployments).
//! * [`interference`] — adjacent-channel and density-driven interference,
//!   reproducing the paper's "excellent RSS but failure-prone" anomaly.
//! * [`load`] — per-RAT utilisation, including the idle-3G effect.
//!
//! The facade type is [`RadioEnvironment`]: build one from a
//! [`DeploymentConfig`], then `scan` from device positions and query
//! [`RiskFactors`] for any candidate cell.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bs;
pub mod deployment;
pub mod emm;
pub mod environment;
pub mod geometry;
pub mod interference;
pub mod load;
pub mod propagation;
pub mod selection;
pub mod transitions;

pub use bs::{BaseStation, BsIndex};
pub use deployment::{DeploymentConfig, RadioEnvironment};
pub use emm::{EmmEvent, EmmState, EmmStateMachine};
pub use environment::Environment;
pub use geometry::Pos;
pub use interference::RiskFactors;
pub use selection::CellView;
pub use transitions::RatTransitionModel;
