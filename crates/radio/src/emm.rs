//! EPS mobility management (EMM) — the registration state machine.
//!
//! Every data-call setup rides on EMM state: the device must be attached
//! (registered) before bearers can be activated, service requests move it
//! from idle to connected, and the network can bar access under congestion.
//! Dense deployments make this machinery "highly complicated and
//! challenging" (§3.3) — which is where `EMM_ACCESS_BARRED` and
//! `INVALID_EMM_STATE` failures come from.
//!
//! The machine here is deliberately faithful in shape (attach / service
//! request / TAU / detach / barring) while abstracting the NAS message
//! encodings away.

use crate::interference::RiskFactors;
use cellrel_sim::SimRng;
use cellrel_types::{DataFailCause, Rat};

/// EMM registration states (EMM-DEREGISTERED / EMM-REGISTERED with the
/// ECM-IDLE / ECM-CONNECTED split folded in).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EmmState {
    /// Not attached to any network.
    Deregistered,
    /// Attach procedure in flight.
    Registering,
    /// Attached, no signalling connection (ECM-IDLE).
    RegisteredIdle,
    /// Attached with an active signalling connection (ECM-CONNECTED).
    Connected,
}

/// Observable EMM transitions, kept as a bounded history for diagnosis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EmmEvent {
    /// Attach accepted by the network.
    AttachAccepted,
    /// Attach rejected (cause attached).
    AttachRejected(DataFailCause),
    /// Access barred before the request could be sent.
    AccessBarred,
    /// Service request accepted (idle → connected).
    ServiceAccepted,
    /// Service request rejected.
    ServiceRejected(DataFailCause),
    /// Network- or device-initiated detach.
    Detached,
    /// Tracking-area update completed.
    TauCompleted,
    /// Tracking-area update failed.
    TauFailed,
}

/// Maximum number of events retained in the history ring.
const HISTORY_LIMIT: usize = 64;

/// The per-device EMM state machine.
#[derive(Debug, Clone)]
pub struct EmmStateMachine {
    state: EmmState,
    history: Vec<EmmEvent>,
    /// Consecutive barring events — barring storms escalate.
    barred_streak: u32,
}

impl Default for EmmStateMachine {
    fn default() -> Self {
        Self::new()
    }
}

impl EmmStateMachine {
    /// A fresh, deregistered machine.
    pub fn new() -> Self {
        EmmStateMachine {
            state: EmmState::Deregistered,
            history: Vec::new(),
            barred_streak: 0,
        }
    }

    /// Current state.
    pub fn state(&self) -> EmmState {
        self.state
    }

    /// The recorded event history (most recent last, bounded).
    pub fn history(&self) -> &[EmmEvent] {
        &self.history
    }

    fn record(&mut self, ev: EmmEvent) {
        if self.history.len() == HISTORY_LIMIT {
            self.history.remove(0);
        }
        self.history.push(ev);
    }

    /// Probability the network bars this access attempt, given site risk.
    fn barring_prob(&self, risk: &RiskFactors) -> f64 {
        // Base barring is rare; dense-deployment EMM pressure dominates, and
        // streaks escalate (barring timers under persistent congestion).
        let streak = 1.0 + 0.5 * self.barred_streak.min(4) as f64;
        (0.004 + 0.11 * risk.emm_pressure) * streak
    }

    /// Attempt to attach (register) to the network on `rat`.
    ///
    /// On failure, returns the `DataFailCause` the radio layer would report.
    pub fn attach(
        &mut self,
        rat: Rat,
        risk: &RiskFactors,
        rng: &mut SimRng,
    ) -> Result<(), DataFailCause> {
        if matches!(self.state, EmmState::RegisteredIdle | EmmState::Connected) {
            return Ok(()); // already attached
        }
        self.state = EmmState::Registering;

        if rng.chance(self.barring_prob(risk)) {
            self.barred_streak += 1;
            self.state = EmmState::Deregistered;
            self.record(EmmEvent::AccessBarred);
            return Err(DataFailCause::EmmAccessBarred);
        }
        self.barred_streak = 0;

        // Registration failure scales with the site's signal risk.
        let reg_fail = (0.4 * risk.signal_risk * (1.0 + risk.interference)).min(0.5);
        if rng.chance(reg_fail) {
            self.state = EmmState::Deregistered;
            let cause = match rat {
                Rat::G2 | Rat::G3 => DataFailCause::GprsRegistrationFail,
                Rat::G4 | Rat::G5 => DataFailCause::RegistrationFail,
            };
            self.record(EmmEvent::AttachRejected(cause));
            return Err(cause);
        }

        self.state = EmmState::RegisteredIdle;
        self.record(EmmEvent::AttachAccepted);
        Ok(())
    }

    /// Request a signalling connection (idle → connected), the prerequisite
    /// for bearer activation.
    pub fn service_request(
        &mut self,
        risk: &RiskFactors,
        rng: &mut SimRng,
    ) -> Result<(), DataFailCause> {
        match self.state {
            EmmState::Deregistered | EmmState::Registering => {
                // Asking for service while not attached: the INVALID_EMM_STATE
                // class of failure.
                self.record(EmmEvent::ServiceRejected(DataFailCause::InvalidEmmState));
                return Err(DataFailCause::InvalidEmmState);
            }
            EmmState::Connected => return Ok(()),
            EmmState::RegisteredIdle => {}
        }

        if rng.chance(self.barring_prob(risk)) {
            self.barred_streak += 1;
            self.record(EmmEvent::AccessBarred);
            return Err(DataFailCause::EmmAccessBarred);
        }
        self.barred_streak = 0;

        // Under heavy EMM pressure, the network's and device's pictures of
        // the EMM state drift (stale GUTI, missed detach), surfacing as
        // INVALID_EMM_STATE.
        if rng.chance(0.05 * risk.emm_pressure) {
            self.state = EmmState::Deregistered;
            self.record(EmmEvent::ServiceRejected(DataFailCause::InvalidEmmState));
            return Err(DataFailCause::InvalidEmmState);
        }

        // Paging / service-request timeout under poor signal.
        if rng.chance((0.25 * risk.signal_risk).min(0.2)) {
            self.record(EmmEvent::ServiceRejected(DataFailCause::EmmT3417Expired));
            return Err(DataFailCause::EmmT3417Expired);
        }

        self.state = EmmState::Connected;
        self.record(EmmEvent::ServiceAccepted);
        Ok(())
    }

    /// Tracking-area update when the device moves between cells. Failure
    /// drops the device to idle and, in the worst case, deregisters it.
    pub fn tracking_area_update(
        &mut self,
        risk: &RiskFactors,
        rng: &mut SimRng,
    ) -> Result<(), DataFailCause> {
        if self.state == EmmState::Deregistered {
            return Err(DataFailCause::EmmDetached);
        }
        let fail = (0.02 + 0.12 * risk.emm_pressure + 0.2 * risk.signal_risk).min(0.45);
        if rng.chance(fail) {
            self.record(EmmEvent::TauFailed);
            if rng.chance(0.3) {
                self.state = EmmState::Deregistered;
                self.record(EmmEvent::Detached);
                return Err(DataFailCause::EmmDetached);
            }
            self.state = EmmState::RegisteredIdle;
            return Err(DataFailCause::InvalidEmmState);
        }
        self.record(EmmEvent::TauCompleted);
        Ok(())
    }

    /// Release the signalling connection (connected → idle).
    pub fn release(&mut self) {
        if self.state == EmmState::Connected {
            self.state = EmmState::RegisteredIdle;
        }
    }

    /// Detach from the network entirely.
    pub fn detach(&mut self) {
        if self.state != EmmState::Deregistered {
            self.state = EmmState::Deregistered;
            self.record(EmmEvent::Detached);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet_risk() -> RiskFactors {
        RiskFactors {
            signal_risk: 0.03,
            interference: 0.0,
            overload_prob: 0.0,
            emm_pressure: 0.0,
            disrepair: false,
        }
    }

    fn hub_risk() -> RiskFactors {
        RiskFactors {
            signal_risk: 0.022,
            interference: 0.9,
            overload_prob: 0.2,
            emm_pressure: 1.0,
            disrepair: false,
        }
    }

    #[test]
    fn attach_then_service_reaches_connected() {
        let mut rng = SimRng::new(1);
        let mut emm = EmmStateMachine::new();
        let risk = quiet_risk();
        // Quiet cell: overwhelmingly succeeds; retry a few times to be safe.
        for _ in 0..10 {
            if emm.attach(Rat::G4, &risk, &mut rng).is_ok() {
                break;
            }
        }
        assert_eq!(emm.state(), EmmState::RegisteredIdle);
        for _ in 0..10 {
            if emm.service_request(&risk, &mut rng).is_ok() {
                break;
            }
        }
        assert_eq!(emm.state(), EmmState::Connected);
    }

    #[test]
    fn service_request_while_deregistered_is_invalid_emm_state() {
        let mut rng = SimRng::new(2);
        let mut emm = EmmStateMachine::new();
        let err = emm.service_request(&quiet_risk(), &mut rng).unwrap_err();
        assert_eq!(err, DataFailCause::InvalidEmmState);
    }

    #[test]
    fn hub_pressure_causes_barring() {
        let mut rng = SimRng::new(3);
        let risk = hub_risk();
        let mut barred = 0;
        let mut total = 0;
        for _ in 0..400 {
            let mut emm = EmmStateMachine::new();
            total += 1;
            if emm.attach(Rat::G4, &risk, &mut rng) == Err(DataFailCause::EmmAccessBarred) {
                barred += 1;
            }
        }
        let frac = barred as f64 / total as f64;
        assert!(
            frac > 0.05,
            "expected noticeable barring at hubs, got {frac}"
        );
    }

    #[test]
    fn quiet_cell_rarely_bars() {
        let mut rng = SimRng::new(4);
        let risk = quiet_risk();
        let barred = (0..400)
            .filter(|_| {
                let mut emm = EmmStateMachine::new();
                emm.attach(Rat::G4, &risk, &mut rng) == Err(DataFailCause::EmmAccessBarred)
            })
            .count();
        assert!(barred < 10, "quiet cell barred {barred}/400");
    }

    #[test]
    fn gprs_cause_on_legacy_rats() {
        let mut rng = SimRng::new(5);
        // Force registration failures with hostile risk.
        let risk = RiskFactors {
            signal_risk: 1.0,
            interference: 1.0,
            overload_prob: 0.0,
            emm_pressure: 0.0,
            disrepair: false,
        };
        let mut saw_gprs = false;
        for _ in 0..100 {
            let mut emm = EmmStateMachine::new();
            if let Err(c) = emm.attach(Rat::G2, &risk, &mut rng) {
                assert_ne!(c, DataFailCause::RegistrationFail);
                if c == DataFailCause::GprsRegistrationFail {
                    saw_gprs = true;
                }
            }
        }
        assert!(saw_gprs);
    }

    #[test]
    fn detach_resets_state() {
        let mut emm = EmmStateMachine::new();
        let mut rng = SimRng::new(6);
        while emm.attach(Rat::G4, &quiet_risk(), &mut rng).is_err() {}
        emm.detach();
        assert_eq!(emm.state(), EmmState::Deregistered);
        assert!(emm.history().contains(&EmmEvent::Detached));
    }

    #[test]
    fn tau_on_deregistered_fails() {
        let mut emm = EmmStateMachine::new();
        let mut rng = SimRng::new(7);
        assert_eq!(
            emm.tracking_area_update(&quiet_risk(), &mut rng),
            Err(DataFailCause::EmmDetached)
        );
    }

    #[test]
    fn history_is_bounded() {
        let mut emm = EmmStateMachine::new();
        let mut rng = SimRng::new(8);
        for _ in 0..1000 {
            let _ = emm.attach(Rat::G4, &hub_risk(), &mut rng);
            emm.detach();
        }
        assert!(emm.history().len() <= HISTORY_LIMIT);
    }

    #[test]
    fn release_returns_to_idle() {
        let mut emm = EmmStateMachine::new();
        let mut rng = SimRng::new(9);
        while emm.attach(Rat::G4, &quiet_risk(), &mut rng).is_err() {}
        while emm.service_request(&quiet_risk(), &mut rng).is_err() {}
        assert_eq!(emm.state(), EmmState::Connected);
        emm.release();
        assert_eq!(emm.state(), EmmState::RegisteredIdle);
    }
}
