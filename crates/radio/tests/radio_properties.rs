//! Property-based tests for the radio substrate.

use cellrel_radio::bs::BaseStation;
use cellrel_radio::geometry::{GridIndex, Pos};
use cellrel_radio::interference::RiskFactors;
use cellrel_radio::propagation::{coverage_radius_km, path_loss_db, range_for_rss, received_rss};
use cellrel_radio::Environment;
use cellrel_types::{BsId, Isp, Rat, RatSet, SignalLevel};
use proptest::prelude::*;

fn env_strategy() -> impl Strategy<Value = Environment> {
    prop::sample::select(Environment::ALL.to_vec())
}

fn rat_strategy() -> impl Strategy<Value = Rat> {
    prop::sample::select(Rat::ALL.to_vec())
}

proptest! {
    #[test]
    fn path_loss_monotone_in_distance(
        env in env_strategy(),
        freq in 800.0f64..3600.0,
        d1 in 0.01f64..30.0,
        d2 in 0.01f64..30.0,
    ) {
        let (lo, hi) = if d1 <= d2 { (d1, d2) } else { (d2, d1) };
        prop_assert!(path_loss_db(lo, freq, env) <= path_loss_db(hi, freq, env) + 1e-9);
    }

    #[test]
    fn path_loss_monotone_in_frequency(
        env in env_strategy(),
        d in 0.05f64..20.0,
        f1 in 800.0f64..3600.0,
        f2 in 800.0f64..3600.0,
    ) {
        let (lo, hi) = if f1 <= f2 { (f1, f2) } else { (f2, f1) };
        prop_assert!(path_loss_db(d, lo, env) <= path_loss_db(d, hi, env) + 1e-9);
    }

    #[test]
    fn range_inverts_received_rss(
        env in env_strategy(),
        freq in 800.0f64..3600.0,
        target in -130.0f64..-70.0,
    ) {
        let tx = 46.0;
        let d = range_for_rss(tx, target, freq, env);
        // At 1 m the model clamps; only check ranges beyond the clamp.
        prop_assume!(d > 0.0011);
        let rss = received_rss(tx, d, freq, env, 0.0);
        prop_assert!((rss.dbm() - target).abs() < 0.1, "target {target}, got {rss}");
    }

    #[test]
    fn coverage_shrinks_with_generation_clutter(
        env in env_strategy(),
        freq in 800.0f64..3600.0,
    ) {
        // Higher-generation clutter penalties can only shrink coverage.
        let mut last = f64::INFINITY;
        for rat in Rat::ALL {
            let r = coverage_radius_km(46.0, freq, env, rat);
            prop_assert!(r > 0.0);
            // 2G has the laxest edge threshold relative to clutter; the
            // invariant we rely on is 5G ≤ 4G specifically.
            if rat == Rat::G4 {
                last = r;
            }
            if rat == Rat::G5 {
                prop_assert!(r <= last + 1e-9, "5G coverage exceeds 4G");
            }
        }
    }

    #[test]
    fn grid_query_matches_brute_force(
        points in prop::collection::vec((0.0f64..20.0, 0.0f64..20.0), 1..60),
        qx in 0.0f64..20.0,
        qy in 0.0f64..20.0,
        radius in 0.1f64..8.0,
    ) {
        let positions: Vec<Pos> = points.iter().map(|&(x, y)| Pos::new(x, y)).collect();
        let mut grid = GridIndex::new(20.0, 1.0);
        for (i, &p) in positions.iter().enumerate() {
            grid.insert(p, i as u32);
        }
        let q = Pos::new(qx, qy);
        let mut got = grid.query_within(q, radius, |i| positions[i as usize]);
        got.sort_unstable();
        let mut expected: Vec<u32> = positions
            .iter()
            .enumerate()
            .filter(|(_, p)| p.distance_km(q) <= radius)
            .map(|(i, _)| i as u32)
            .collect();
        expected.sort_unstable();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn risk_probabilities_always_valid(
        neighbors in 0u32..200,
        gap in prop::option::of(0.0f64..500.0),
        load in 0.0f64..1.0,
        env in env_strategy(),
        rat in rat_strategy(),
        level in 0u8..=5,
    ) {
        let bs = BaseStation {
            id: BsId::gsm_cn(0, 1, 1),
            isp: Isp::A,
            rats: RatSet::up_to(Rat::G5),
            freq_mhz: 1900.0,
            pos: Pos::new(0.0, 0.0),
            env,
            tx_power_dbm: 46.0,
            load,
            neighbor_count: neighbors,
            min_cross_isp_gap_mhz: gap.unwrap_or(f64::INFINITY),
            in_disrepair: false,
        };
        let risk = RiskFactors::assess(&bs, rat, SignalLevel::new(level));
        prop_assert!((0.0..=1.0).contains(&risk.interference));
        prop_assert!((0.0..=1.0).contains(&risk.emm_pressure));
        prop_assert!((0.0..=1.0).contains(&risk.overload_prob));
        prop_assert!((0.0..=0.95).contains(&risk.setup_failure_prob()));
        prop_assert!(risk.stall_rate_multiplier() >= 1.0);
        prop_assert!(risk.out_of_service_hazard() > 0.0);
    }

    #[test]
    fn denser_sites_are_never_safer(
        n1 in 0u32..100,
        n2 in 0u32..100,
        level in 0u8..=5,
    ) {
        let site = |n: u32| BaseStation {
            id: BsId::gsm_cn(0, 1, 1),
            isp: Isp::B,
            rats: RatSet::up_to(Rat::G5),
            freq_mhz: 2370.0,
            pos: Pos::new(0.0, 0.0),
            env: Environment::TransportHub,
            tx_power_dbm: 43.0,
            load: 0.8,
            neighbor_count: n,
            min_cross_isp_gap_mhz: 10.0,
            in_disrepair: false,
        };
        let (lo, hi) = if n1 <= n2 { (n1, n2) } else { (n2, n1) };
        let p_lo = RiskFactors::assess(&site(lo), Rat::G4, SignalLevel::new(level))
            .setup_failure_prob();
        let p_hi = RiskFactors::assess(&site(hi), Rat::G4, SignalLevel::new(level))
            .setup_failure_prob();
        prop_assert!(p_hi + 1e-12 >= p_lo, "density lowered risk: {p_lo} -> {p_hi}");
    }
}
