//! Deterministic fault-campaign engine.
//!
//! A *campaign* enumerates seeded scenarios `0..n` and runs each one through
//! a caller-supplied closure on the [`crate::par::run_sharded`] kernel. The
//! engine knows nothing about what a scenario simulates — it supplies the
//! generic machinery every campaign needs:
//!
//! * [`Invariant`] / [`InvariantRegistry`] — stateful cross-stack checks a
//!   scenario harness evaluates after every event step;
//! * [`Violation`] — a minimal repro record `(scenario, invariant,
//!   event_index, at_ms, detail)`: together with the campaign's root seed it
//!   pinpoints one event of one deterministic scenario, so a replay of that
//!   scenario reproduces the failure byte-identically;
//! * [`ScenarioOutcome`] / [`CampaignReport`] — per-scenario results and
//!   their order-preserving fold ([`Merge`]), so the report is identical at
//!   any thread count;
//! * [`Digest64`] — an FNV-1a content digest of the report, the value CI
//!   compares across re-runs and thread counts.
//!
//! Scenario determinism is the caller's contract: a scenario's behaviour
//! must depend only on `(root_seed, scenario_id)` — derive all randomness
//! via [`crate::SimRng::for_substream`] and never read host state.

use crate::par::{merge_all, resolve_threads, run_sharded, Merge};
use std::collections::BTreeMap;

/// A minimal repro record for one invariant failure.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Violation {
    /// Scenario index within the campaign.
    pub scenario: u64,
    /// Name of the violated invariant.
    pub invariant: &'static str,
    /// 1-based index of the event step at which the check failed (0 for
    /// finish-phase checks reported before any event fired).
    pub event_index: u64,
    /// Simulation time of the step, in milliseconds.
    pub at_ms: u64,
    /// Human-readable description of what went wrong.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "scenario {} event #{} at {} ms: [{}] {}",
            self.scenario, self.event_index, self.at_ms, self.invariant, self.detail
        )
    }
}

/// A stateful cross-stack invariant, checked after every event step of one
/// scenario. One instance is created per scenario (state never leaks across
/// scenarios), so implementations may accumulate whatever bookkeeping the
/// property needs (last recovery stage seen, open episodes, …).
pub trait Invariant<V> {
    /// Stable name, used in violation records and coverage tables.
    fn name(&self) -> &'static str;

    /// Check the invariant against the view of the just-executed step.
    /// Return `Err(detail)` to report a violation; checking continues (one
    /// broken invariant must not mask others).
    fn check(&mut self, view: &V) -> Result<(), String>;

    /// Final check after the scenario's last event (quiesced state).
    fn finish(&mut self, view: &V) -> Result<(), String> {
        let _ = view;
        Ok(())
    }
}

/// An ordered collection of invariants driven by a scenario harness.
pub struct InvariantRegistry<V> {
    invariants: Vec<Box<dyn Invariant<V>>>,
}

impl<V> Default for InvariantRegistry<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> InvariantRegistry<V> {
    /// An empty registry.
    pub fn new() -> Self {
        InvariantRegistry {
            invariants: Vec::new(),
        }
    }

    /// Add an invariant. Registration order is check order (and therefore
    /// violation order — keep it deterministic).
    pub fn register(&mut self, inv: impl Invariant<V> + 'static) -> &mut Self {
        self.invariants.push(Box::new(inv));
        self
    }

    /// Number of registered invariants.
    pub fn len(&self) -> usize {
        self.invariants.len()
    }

    /// True when no invariants are registered.
    pub fn is_empty(&self) -> bool {
        self.invariants.is_empty()
    }

    /// Names of the registered invariants, in check order.
    pub fn names(&self) -> Vec<&'static str> {
        self.invariants.iter().map(|i| i.name()).collect()
    }

    /// Run every invariant against one event step's view, appending a
    /// [`Violation`] per failed check.
    pub fn check_step(
        &mut self,
        scenario: u64,
        event_index: u64,
        at_ms: u64,
        view: &V,
        out: &mut Vec<Violation>,
    ) {
        for inv in &mut self.invariants {
            if let Err(detail) = inv.check(view) {
                out.push(Violation {
                    scenario,
                    invariant: inv.name(),
                    event_index,
                    at_ms,
                    detail,
                });
            }
        }
    }

    /// Run every invariant's finish-phase check against the final view.
    pub fn check_finish(
        &mut self,
        scenario: u64,
        event_index: u64,
        at_ms: u64,
        view: &V,
        out: &mut Vec<Violation>,
    ) {
        for inv in &mut self.invariants {
            if let Err(detail) = inv.finish(view) {
                out.push(Violation {
                    scenario,
                    invariant: inv.name(),
                    event_index,
                    at_ms,
                    detail,
                });
            }
        }
    }
}

/// The result of one scenario run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScenarioOutcome {
    /// Scenario index.
    pub scenario: u64,
    /// Events dispatched.
    pub events: u64,
    /// Invariant violations, in detection order.
    pub violations: Vec<Violation>,
    /// Coverage labels this scenario exercised (e.g. `fault:blackhole`).
    pub coverage: Vec<String>,
}

/// The campaign-wide fold of [`ScenarioOutcome`]s. Scenario order is
/// preserved (shards are contiguous and folded in shard order), so two runs
/// at different thread counts produce byte-identical reports.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CampaignReport {
    /// Scenarios executed.
    pub scenarios: u64,
    /// Total events dispatched across all scenarios.
    pub events: u64,
    /// All violations, ordered by scenario then detection order.
    pub violations: Vec<Violation>,
    /// How many scenarios exercised each coverage label.
    pub coverage: BTreeMap<String, u64>,
}

impl CampaignReport {
    /// Fold one scenario's outcome into the report.
    pub fn absorb(&mut self, outcome: ScenarioOutcome) {
        self.scenarios += 1;
        self.events += outcome.events;
        self.violations.extend(outcome.violations);
        for label in outcome.coverage {
            *self.coverage.entry(label).or_insert(0) += 1;
        }
    }

    /// Content digest of the report: any difference in scenario count,
    /// event totals, violations, or coverage changes the digest. This is
    /// the determinism witness CI compares across re-runs and thread
    /// counts.
    pub fn digest(&self) -> u64 {
        let mut d = Digest64::new();
        d.write_u64(self.scenarios);
        d.write_u64(self.events);
        d.write_u64(self.violations.len() as u64);
        for v in &self.violations {
            d.write_u64(v.scenario);
            d.write_str(v.invariant);
            d.write_u64(v.event_index);
            d.write_u64(v.at_ms);
            d.write_str(&v.detail);
        }
        d.write_u64(self.coverage.len() as u64);
        for (label, count) in &self.coverage {
            d.write_str(label);
            d.write_u64(*count);
        }
        d.finish()
    }
}

impl Merge for CampaignReport {
    fn merge(&mut self, other: Self) {
        self.scenarios += other.scenarios;
        self.events += other.events;
        self.violations.extend(other.violations);
        for (label, count) in other.coverage {
            *self.coverage.entry(label).or_insert(0) += count;
        }
    }
}

/// A 64-bit FNV-1a hasher for deterministic content digests. `std`'s
/// `DefaultHasher` is explicitly unstable across releases; campaign digests
/// must be comparable across builds, so the function is pinned here.
#[derive(Debug, Clone, Copy)]
pub struct Digest64(u64);

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Default for Digest64 {
    fn default() -> Self {
        Self::new()
    }
}

impl Digest64 {
    /// A fresh digest at the FNV offset basis.
    pub fn new() -> Self {
        Digest64(FNV_OFFSET)
    }

    /// Absorb raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// Absorb a `u64` (little-endian).
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Absorb a string, length-prefixed so concatenations can't collide
    /// with shifted boundaries.
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write_bytes(s.as_bytes());
    }

    /// The digest value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// Run a campaign of `scenarios` scenarios across up to `threads` threads
/// (0 = auto via `CELLREL_THREADS`), folding per-scenario outcomes into one
/// [`CampaignReport`] in scenario order.
///
/// `run_one` must be deterministic in its scenario index alone (derive all
/// randomness from a root seed via [`crate::SimRng::for_substream`]); the
/// report — including its [`CampaignReport::digest`] — is then identical at
/// every thread count.
pub fn run_campaign<F>(scenarios: u64, threads: usize, run_one: F) -> CampaignReport
where
    F: Fn(u64) -> ScenarioOutcome + Sync,
{
    let threads = resolve_threads(threads);
    let parts = run_sharded(scenarios as usize, threads, |range| {
        let mut report = CampaignReport::default();
        for idx in range {
            report.absorb(run_one(idx as u64));
        }
        report
    });
    merge_all(parts).expect("at least one shard")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy view: the step's value plus a running flag.
    struct View {
        value: u64,
        finished: bool,
    }

    /// Fails whenever the value is odd.
    struct NoOdd;
    impl Invariant<View> for NoOdd {
        fn name(&self) -> &'static str {
            "no-odd"
        }
        fn check(&mut self, view: &View) -> Result<(), String> {
            if view.value % 2 == 1 {
                Err(format!("odd value {}", view.value))
            } else {
                Ok(())
            }
        }
        fn finish(&mut self, view: &View) -> Result<(), String> {
            if view.finished {
                Ok(())
            } else {
                Err("scenario did not finish".into())
            }
        }
    }

    /// Stateful: values must never decrease.
    #[derive(Default)]
    struct Monotone {
        last: Option<u64>,
    }
    impl Invariant<View> for Monotone {
        fn name(&self) -> &'static str {
            "monotone"
        }
        fn check(&mut self, view: &View) -> Result<(), String> {
            if let Some(last) = self.last {
                if view.value < last {
                    return Err(format!("{} after {last}", view.value));
                }
            }
            self.last = Some(view.value);
            Ok(())
        }
    }

    fn run_toy(id: u64) -> ScenarioOutcome {
        // Deterministic toy scenario: steps are a function of the id only.
        let mut reg = InvariantRegistry::new();
        reg.register(NoOdd).register(Monotone::default());
        let mut violations = Vec::new();
        let steps: Vec<u64> = (0..5).map(|i| (id + i) * 2 % 7).collect();
        for (i, &value) in steps.iter().enumerate() {
            let view = View {
                value,
                finished: false,
            };
            reg.check_step(id, i as u64 + 1, value * 1000, &view, &mut violations);
        }
        reg.check_finish(
            id,
            steps.len() as u64,
            9999,
            &View {
                value: 0,
                finished: true,
            },
            &mut violations,
        );
        ScenarioOutcome {
            scenario: id,
            events: steps.len() as u64,
            violations,
            coverage: vec![format!("parity:{}", id % 2)],
        }
    }

    #[test]
    fn registry_reports_violations_with_context() {
        let mut reg = InvariantRegistry::new();
        reg.register(NoOdd);
        assert_eq!(reg.len(), 1);
        assert_eq!(reg.names(), vec!["no-odd"]);
        let mut out = Vec::new();
        reg.check_step(
            7,
            3,
            1500,
            &View {
                value: 9,
                finished: false,
            },
            &mut out,
        );
        assert_eq!(out.len(), 1);
        let v = &out[0];
        assert_eq!(
            (v.scenario, v.invariant, v.event_index, v.at_ms),
            (7, "no-odd", 3, 1500)
        );
        assert!(v.detail.contains('9'));
        assert!(v.to_string().contains("no-odd"));
    }

    #[test]
    fn stateful_invariants_track_across_steps() {
        let mut reg = InvariantRegistry::new();
        reg.register(Monotone::default());
        let mut out = Vec::new();
        for (i, value) in [1u64, 3, 2].into_iter().enumerate() {
            reg.check_step(
                0,
                i as u64 + 1,
                0,
                &View {
                    value,
                    finished: false,
                },
                &mut out,
            );
        }
        assert_eq!(out.len(), 1, "only the 3 -> 2 regression violates");
        assert_eq!(out[0].event_index, 3);
    }

    #[test]
    fn finish_checks_report_separately() {
        let mut reg = InvariantRegistry::new();
        reg.register(NoOdd);
        let mut out = Vec::new();
        reg.check_finish(
            1,
            10,
            5000,
            &View {
                value: 0,
                finished: false,
            },
            &mut out,
        );
        assert_eq!(out.len(), 1);
        assert!(out[0].detail.contains("did not finish"));
    }

    #[test]
    fn campaign_report_is_thread_invariant() {
        let base = run_campaign(24, 1, run_toy);
        assert_eq!(base.scenarios, 24);
        assert!(base.events > 0);
        for threads in [2usize, 3, 8] {
            let other = run_campaign(24, threads, run_toy);
            assert_eq!(base, other, "threads={threads}");
            assert_eq!(base.digest(), other.digest(), "threads={threads}");
        }
    }

    #[test]
    fn digest_is_content_sensitive() {
        let a = run_campaign(8, 1, run_toy);
        let mut b = a.clone();
        assert_eq!(a.digest(), b.digest());
        b.events += 1;
        assert_ne!(a.digest(), b.digest());
        let mut c = a.clone();
        if let Some(v) = c.violations.first_mut() {
            v.event_index += 1;
            assert_ne!(a.digest(), c.digest());
        }
        let mut d = a.clone();
        d.coverage.insert("extra:label".into(), 1);
        assert_ne!(a.digest(), d.digest());
    }

    #[test]
    fn coverage_counts_scenarios_per_label() {
        let report = run_campaign(10, 2, run_toy);
        assert_eq!(report.coverage["parity:0"], 5);
        assert_eq!(report.coverage["parity:1"], 5);
    }

    #[test]
    fn fnv_vector_matches_reference() {
        // FNV-1a reference vectors: empty input = offset basis; "a" = known.
        assert_eq!(Digest64::new().finish(), 0xcbf2_9ce4_8422_2325);
        let mut d = Digest64::new();
        d.write_bytes(b"a");
        assert_eq!(d.finish(), 0xaf63_dc4c_8601_ec8c);
    }
}
