//! Statistics utilities: running summaries, percentiles, ECDFs, histograms,
//! least-squares regression, and the Zipf fit used for Figure 11.
//!
//! The accumulators ([`Summary`], [`Histogram`], [`Ecdf`]) implement
//! [`crate::par::Merge`] so per-shard partials from parallel fleet runs
//! combine associatively into the same value a sequential pass produces
//! (exactly for counts and bins; up to floating-point associativity for
//! [`Summary`]'s mean/variance).

use crate::par::Merge;

/// Running summary statistics (Welford's online algorithm).
#[derive(Debug, Clone, Default)]
pub struct Summary {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// An empty summary.
    pub fn new() -> Self {
        Summary {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merge another summary into this one (parallel Welford).
    pub fn merge(&mut self, other: &Summary) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n = (self.n + other.n) as f64;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n;
        self.m2 += other.m2 + delta * delta * self.n as f64 * other.n as f64 / n;
        self.mean = mean;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 for fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`+inf` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`-inf` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.mean() * self.n as f64
    }
}

impl Merge for Summary {
    fn merge(&mut self, other: Self) {
        Summary::merge(self, &other);
    }
}

/// Linear-interpolated percentile of a **sorted** slice, `q ∈ [0, 1]`.
///
/// # Panics
/// Panics if the slice is empty.
pub fn percentile(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty slice");
    let q = q.clamp(0.0, 1.0);
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// An empirical CDF over a fixed sample set.
#[derive(Debug, Clone)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Build from samples (sorted internally; NaNs rejected).
    ///
    /// # Panics
    /// Panics on empty input or NaNs.
    pub fn new(mut samples: Vec<f64>) -> Self {
        assert!(!samples.is_empty(), "Ecdf of empty sample set");
        assert!(samples.iter().all(|x| !x.is_nan()), "Ecdf rejects NaN");
        samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        Ecdf { sorted: samples }
    }

    /// `P(X <= x)`.
    pub fn at(&self, x: f64) -> f64 {
        self.sorted.partition_point(|&v| v <= x) as f64 / self.sorted.len() as f64
    }

    /// Interpolated quantile.
    pub fn quantile(&self, q: f64) -> f64 {
        percentile(&self.sorted, q)
    }

    /// Median.
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    /// Mean of the samples.
    pub fn mean(&self) -> f64 {
        self.sorted.iter().sum::<f64>() / self.sorted.len() as f64
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Always false; provided for API completeness.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Largest sample.
    pub fn max(&self) -> f64 {
        *self.sorted.last().expect("non-empty")
    }

    /// Smallest sample.
    pub fn min(&self) -> f64 {
        self.sorted[0]
    }

    /// Evaluate the CDF at evenly spaced points, returning `(x, F(x))` pairs —
    /// the series the figure benches print.
    pub fn series(&self, points: usize) -> Vec<(f64, f64)> {
        assert!(points >= 2);
        let (lo, hi) = (self.min(), self.max());
        (0..points)
            .map(|i| {
                let x = lo + (hi - lo) * i as f64 / (points - 1) as f64;
                (x, self.at(x))
            })
            .collect()
    }
}

/// A fixed-width histogram over `[lo, hi)` with values outside clamped into
/// the edge bins.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Create with `bins` equal-width buckets spanning `[lo, hi)`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0 && hi > lo);
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            total: 0,
        }
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        let bins = self.counts.len();
        let idx = if x < self.lo {
            0
        } else if x >= self.hi {
            bins - 1
        } else {
            (((x - self.lo) / (self.hi - self.lo)) * bins as f64) as usize
        };
        self.counts[idx.min(bins - 1)] += 1;
        self.total += 1;
    }

    /// Raw bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Merge another histogram over the same binning into this one.
    ///
    /// # Panics
    /// Panics if the bin layouts differ.
    pub fn merge_from(&mut self, other: &Histogram) {
        assert!(
            self.lo == other.lo && self.hi == other.hi && self.counts.len() == other.counts.len(),
            "merging histograms with different binning"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
    }

    /// The `(bin_center, fraction)` series.
    pub fn normalized(&self) -> Vec<(f64, f64)> {
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                let center = self.lo + width * (i as f64 + 0.5);
                let frac = if self.total == 0 {
                    0.0
                } else {
                    c as f64 / self.total as f64
                };
                (center, frac)
            })
            .collect()
    }
}

impl Merge for Histogram {
    fn merge(&mut self, other: Self) {
        self.merge_from(&other);
    }
}

impl Merge for Ecdf {
    /// Merge two ECDFs into the ECDF over the union of their samples
    /// (linear two-way merge of the sorted sample sets).
    fn merge(&mut self, other: Self) {
        let mut merged = Vec::with_capacity(self.sorted.len() + other.sorted.len());
        let (mut a, mut b) = (
            self.sorted.iter().peekable(),
            other.sorted.iter().peekable(),
        );
        while let (Some(&&x), Some(&&y)) = (a.peek(), b.peek()) {
            if x <= y {
                merged.push(x);
                a.next();
            } else {
                merged.push(y);
                b.next();
            }
        }
        merged.extend(a.copied());
        merged.extend(b.copied());
        self.sorted = merged;
    }
}

/// Ordinary least squares fit `y = slope * x + intercept`.
/// Returns `(slope, intercept, r²)`.
///
/// # Panics
/// Panics if the inputs have different lengths or fewer than 2 points.
pub fn linreg(xs: &[f64], ys: &[f64]) -> (f64, f64, f64) {
    assert_eq!(xs.len(), ys.len());
    assert!(xs.len() >= 2, "linreg needs at least two points");
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let sxy: f64 = xs.iter().zip(ys).map(|(x, y)| (x - mx) * (y - my)).sum();
    let sxx: f64 = xs.iter().map(|x| (x - mx).powi(2)).sum();
    let syy: f64 = ys.iter().map(|y| (y - my).powi(2)).sum();
    let slope = if sxx == 0.0 { 0.0 } else { sxy / sxx };
    let intercept = my - slope * mx;
    let r2 = if sxx == 0.0 || syy == 0.0 {
        1.0
    } else {
        (sxy * sxy) / (sxx * syy)
    };
    (slope, intercept, r2)
}

/// Bootstrap confidence interval for the mean of a sample: resample with
/// replacement `iters` times and return the `(lo, hi)` quantiles of the
/// resampled means at the given confidence level (e.g. 0.95).
///
/// # Panics
/// Panics on empty input or a confidence level outside (0, 1).
pub fn bootstrap_mean_ci(
    samples: &[f64],
    iters: u32,
    confidence: f64,
    rng: &mut crate::rng::SimRng,
) -> (f64, f64) {
    assert!(!samples.is_empty(), "bootstrap of empty sample");
    assert!((0.0..1.0).contains(&confidence) && confidence > 0.0);
    let n = samples.len();
    let mut means = Vec::with_capacity(iters as usize);
    for _ in 0..iters {
        let mut acc = 0.0;
        for _ in 0..n {
            acc += samples[rng.index(n)];
        }
        means.push(acc / n as f64);
    }
    means.sort_by(|a, b| a.partial_cmp(b).expect("finite means"));
    let alpha = (1.0 - confidence) / 2.0;
    (percentile(&means, alpha), percentile(&means, 1.0 - alpha))
}

/// Fit a Zipf law to a descending rank-count series, in the paper's form
/// `ln(count) = b − a · ln(rank)` (rank is 1-based). Zero counts are skipped.
/// Returns `(a, b, r²)`.
///
/// Figure 11 reports `a = 0.82`, `b = 17.12` for the BS failure ranking.
pub fn fit_zipf(counts_desc: &[u64]) -> (f64, f64, f64) {
    let points: Vec<(f64, f64)> = counts_desc
        .iter()
        .enumerate()
        .filter(|&(_, &c)| c > 0)
        .map(|(i, &c)| (((i + 1) as f64).ln(), (c as f64).ln()))
        .collect();
    assert!(
        points.len() >= 2,
        "fit_zipf needs at least two non-zero counts"
    );
    let xs: Vec<f64> = points.iter().map(|p| p.0).collect();
    let ys: Vec<f64> = points.iter().map(|p| p.1).collect();
    let (slope, intercept, r2) = linreg(&xs, &ys);
    (-slope, intercept, r2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basics() {
        let mut s = Summary::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert!((s.sum() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn summary_merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = Summary::new();
        xs.iter().for_each(|&x| whole.push(x));
        let mut a = Summary::new();
        let mut b = Summary::new();
        xs[..37].iter().for_each(|&x| a.push(x));
        xs[37..].iter().for_each(|&x| b.push(x));
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn summary_merge_with_empty() {
        let mut a = Summary::new();
        a.push(1.0);
        let b = Summary::new();
        a.merge(&b);
        assert_eq!(a.count(), 1);
        let mut e = Summary::new();
        e.merge(&a);
        assert_eq!(e.count(), 1);
        assert_eq!(e.mean(), 1.0);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 1.0), 4.0);
        assert!((percentile(&xs, 0.5) - 2.5).abs() < 1e-12);
        assert_eq!(percentile(&[7.0], 0.3), 7.0);
    }

    #[test]
    fn ecdf_behaviour() {
        let e = Ecdf::new(vec![1.0, 2.0, 3.0, 4.0, 5.0]);
        assert!((e.at(3.0) - 0.6).abs() < 1e-12);
        assert_eq!(e.at(0.0), 0.0);
        assert_eq!(e.at(99.0), 1.0);
        assert_eq!(e.median(), 3.0);
        assert_eq!(e.mean(), 3.0);
        let series = e.series(5);
        assert_eq!(series.len(), 5);
        assert_eq!(series[0].0, 1.0);
        assert_eq!(series[4].1, 1.0);
    }

    #[test]
    fn histogram_bins_and_clamping() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.push(-5.0); // clamps to first bin
        h.push(0.5);
        h.push(9.5);
        h.push(100.0); // clamps to last bin
        assert_eq!(h.counts()[0], 2);
        assert_eq!(h.counts()[9], 2);
        assert_eq!(h.total(), 4);
        let norm = h.normalized();
        assert!((norm[0].1 - 0.5).abs() < 1e-12);
        assert!((norm[0].0 - 0.5).abs() < 1e-12);
    }

    #[test]
    fn histogram_merge_equals_sequential() {
        let xs: Vec<f64> = (0..200).map(|i| (i % 17) as f64).collect();
        let mut whole = Histogram::new(0.0, 20.0, 10);
        xs.iter().for_each(|&x| whole.push(x));
        let mut a = Histogram::new(0.0, 20.0, 10);
        let mut b = Histogram::new(0.0, 20.0, 10);
        xs[..90].iter().for_each(|&x| a.push(x));
        xs[90..].iter().for_each(|&x| b.push(x));
        Merge::merge(&mut a, b);
        assert_eq!(a.counts(), whole.counts());
        assert_eq!(a.total(), whole.total());
    }

    #[test]
    #[should_panic(expected = "different binning")]
    fn histogram_merge_rejects_mismatched_bins() {
        let mut a = Histogram::new(0.0, 10.0, 10);
        a.merge_from(&Histogram::new(0.0, 10.0, 5));
    }

    #[test]
    fn ecdf_merge_equals_pooled_build() {
        let xs = vec![5.0, 1.0, 3.0];
        let ys = vec![4.0, 2.0, 6.0];
        let mut merged = Ecdf::new(xs.clone());
        Merge::merge(&mut merged, Ecdf::new(ys.clone()));
        let pooled = Ecdf::new(xs.into_iter().chain(ys).collect());
        assert_eq!(merged.len(), pooled.len());
        for q in [0.0, 0.25, 0.5, 0.75, 1.0] {
            assert_eq!(merged.quantile(q), pooled.quantile(q));
        }
    }

    #[test]
    fn linreg_exact_line() {
        let xs: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x + 1.0).collect();
        let (slope, intercept, r2) = linreg(&xs, &ys);
        assert!((slope - 3.0).abs() < 1e-12);
        assert!((intercept - 1.0).abs() < 1e-12);
        assert!((r2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zipf_fit_recovers_exponent() {
        // Generate an exact Zipf rank-count series with a = 0.82, b = 17.12.
        let counts: Vec<u64> = (1..=1000u64)
            .map(|rank| (17.12 - 0.82 * (rank as f64).ln()).exp().round() as u64)
            .collect();
        let (a, b, r2) = fit_zipf(&counts);
        assert!((a - 0.82).abs() < 0.01, "a = {a}");
        assert!((b - 17.12).abs() < 0.05, "b = {b}");
        assert!(r2 > 0.999);
    }

    #[test]
    fn bootstrap_ci_brackets_the_mean() {
        let mut rng = crate::rng::SimRng::new(42);
        let xs: Vec<f64> = (0..500).map(|_| rng.normal(10.0, 3.0)).collect();
        let true_mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let (lo, hi) = bootstrap_mean_ci(&xs, 400, 0.95, &mut rng);
        assert!(
            lo < true_mean && true_mean < hi,
            "CI [{lo}, {hi}] vs {true_mean}"
        );
        // Width is in the right ballpark: ~2 × 1.96 × 3/√500 ≈ 0.53.
        assert!((hi - lo) < 1.2, "CI too wide: {}", hi - lo);
        assert!((hi - lo) > 0.2, "CI suspiciously tight: {}", hi - lo);
    }

    #[test]
    fn bootstrap_ci_narrows_with_sample_size() {
        let mut rng = crate::rng::SimRng::new(43);
        let small: Vec<f64> = (0..50).map(|_| rng.normal(0.0, 1.0)).collect();
        let large: Vec<f64> = (0..2000).map(|_| rng.normal(0.0, 1.0)).collect();
        let (sl, sh) = bootstrap_mean_ci(&small, 300, 0.95, &mut rng);
        let (ll, lh) = bootstrap_mean_ci(&large, 300, 0.95, &mut rng);
        assert!(lh - ll < sh - sl);
    }

    #[test]
    fn zipf_fit_skips_zeros() {
        let counts = vec![100, 50, 0, 25, 0];
        let (a, _, _) = fit_zipf(&counts);
        assert!(a > 0.0);
    }
}
