//! Hierarchical timer wheel: the O(1) scheduler backend for fleet-scale runs.
//!
//! [`TimerWheel`] implements the same [`Scheduler`](crate::Scheduler)
//! contract as [`EventQueue`](crate::EventQueue) — deterministic FIFO order
//! among simultaneous events, clock that never moves backwards, exact
//! cancellation — but replaces the binary heap with six levels of 64 slots
//! over the millisecond clock, so `schedule`, `cancel` and the common-case
//! `advance` are constant-time instead of `O(log n)`. A fleet driver keeps
//! one wheel per shard with one alarm per device; with a million devices in
//! a shard, heap discipline is what separates "events per second" from
//! "log-n pointer chases per second".
//!
//! Layout. Level `L` covers deadlines `64^L..64^(L+1)` ms ahead of the wheel
//! cursor in slots of `64^L` ms; six levels span ~795 days, far beyond any
//! simulated horizon (later deadlines park in an overflow list). Slots hold
//! intrusive singly-linked lists of slab-allocated nodes; a per-level 64-bit
//! occupancy bitmap finds the next non-empty slot with a single
//! `trailing_zeros`. Advancing cascades a higher-level slot's nodes into
//! lower levels until an exact-millisecond level-0 slot is due, whose nodes
//! are sorted by schedule sequence — restoring the global `(time, seq)`
//! order the `EventQueue` heap maintains, which is what makes the two
//! backends produce bit-identical simulations.

use crate::queue::{run_scheduled, EventHandler, EventToken, Scheduler};
use cellrel_types::{SimDuration, SimTime};
use std::collections::VecDeque;

const SLOT_BITS: u32 = 6;
const SLOTS: usize = 1 << SLOT_BITS; // 64 slots per level
const LEVELS: usize = 6;
/// Deadlines this far (ms) past the cursor overflow into the `far` list.
const WHEEL_SPAN: u64 = 1 << (SLOT_BITS * LEVELS as u32); // 2^36 ms ≈ 795 days

const NIL: u32 = u32::MAX;

/// Tombstone-purge threshold, mirroring the `EventQueue` policy: never purge
/// below this many cancelled nodes, above it purge once they reach half the
/// allocated nodes.
const PURGE_MIN_TOMBSTONES: usize = 64;

#[derive(Debug)]
struct Node<E> {
    at: u64,
    seq: u64,
    gen: u32,
    next: u32,
    /// `None` while cancelled-but-linked or on the free list.
    event: Option<E>,
}

/// A hierarchical timer wheel with the [`Scheduler`] contract.
///
/// Drop-in for [`EventQueue`](crate::EventQueue):
///
/// ```
/// use cellrel_sim::{Scheduler, TimerWheel};
/// use cellrel_types::{SimDuration, SimTime};
///
/// let mut w: TimerWheel<&str> = TimerWheel::new();
/// w.schedule_after(SimDuration::from_secs(10), "b");
/// w.schedule_after(SimDuration::from_secs(5), "a");
/// let tok = w.schedule_after(SimDuration::from_secs(7), "cancelled");
/// w.cancel(tok);
///
/// assert_eq!(w.pop(), Some((SimTime::from_secs(5), "a")));
/// assert_eq!(w.pop(), Some((SimTime::from_secs(10), "b")));
/// assert_eq!(w.pop(), None);
/// ```
#[derive(Debug)]
pub struct TimerWheel<E> {
    /// `LEVELS * SLOTS` intrusive list heads, level-major.
    slots: Vec<u32>,
    /// One occupancy bit per slot, per level.
    occupied: [u64; LEVELS],
    nodes: Vec<Node<E>>,
    free_head: u32,
    /// Public clock: timestamp (ms) of the last popped event.
    clock: u64,
    /// Wheel position (ms): every node still in the wheel has `at >= cursor`;
    /// everything earlier has been moved to `due`. Always `>= clock`.
    cursor: u64,
    /// Nodes due at or before the cursor, sorted by `(at, seq)`; popped from
    /// the front before the wheel advances again.
    due: VecDeque<u32>,
    /// Deadlines beyond [`WHEEL_SPAN`] from the cursor; re-placed as the
    /// cursor catches up. Expected empty in practice.
    far: Vec<u32>,
    far_min: u64,
    live: usize,
    cancelled: usize,
    next_seq: u64,
}

impl<E> Default for TimerWheel<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> TimerWheel<E> {
    /// An empty wheel with the clock at `SimTime::ZERO`.
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// An empty wheel with slab space pre-allocated for `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        TimerWheel {
            slots: vec![NIL; LEVELS * SLOTS],
            occupied: [0; LEVELS],
            nodes: Vec::with_capacity(capacity),
            free_head: NIL,
            clock: 0,
            cursor: 0,
            due: VecDeque::new(),
            far: Vec::new(),
            far_min: u64::MAX,
            live: 0,
            cancelled: 0,
            next_seq: 0,
        }
    }

    /// Current simulation time (the timestamp of the last popped event).
    pub fn now(&self) -> SimTime {
        SimTime::from_millis(self.clock)
    }

    /// Number of live (non-cancelled) scheduled events.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True if no live events remain.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Approximate resident size of the wheel in bytes (slab + slots + due
    /// ring); used by fleet drivers to report bytes/device.
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.slots.capacity() * std::mem::size_of::<u32>()
            + self.nodes.capacity() * std::mem::size_of::<Node<E>>()
            + self.due.capacity() * std::mem::size_of::<u32>()
            + self.far.capacity() * std::mem::size_of::<u32>()
    }

    fn alloc(&mut self, at: u64, seq: u64, event: E) -> u32 {
        if self.free_head != NIL {
            let idx = self.free_head;
            let node = &mut self.nodes[idx as usize];
            self.free_head = node.next;
            node.at = at;
            node.seq = seq;
            node.next = NIL;
            node.event = Some(event);
            idx
        } else {
            let idx = self.nodes.len() as u32;
            assert!(idx != NIL, "timer wheel slab exhausted");
            self.nodes.push(Node {
                at,
                seq,
                gen: 0,
                next: NIL,
                event: Some(event),
            });
            idx
        }
    }

    /// Return a node to the free list. The generation bump invalidates any
    /// outstanding token for it, so freed slots can be reused safely.
    fn release(&mut self, idx: u32) {
        let node = &mut self.nodes[idx as usize];
        node.event = None;
        node.gen = node.gen.wrapping_add(1);
        node.next = self.free_head;
        self.free_head = idx;
    }

    /// Slot placement: which level holds a deadline `delta` ms ahead.
    fn level_for(delta: u64) -> usize {
        debug_assert!(delta > 0);
        ((63 - delta.leading_zeros()) / SLOT_BITS) as usize
    }

    /// Absolute start time of the next occurrence of `slot` at `level`, at
    /// or after the cursor.
    fn slot_base(&self, level: usize, slot: u64) -> u64 {
        let slot_size = 1u64 << (SLOT_BITS * level as u32);
        let span = slot_size << SLOT_BITS;
        let rotation_start = self.cursor & !(span - 1);
        let base = rotation_start.saturating_add(slot * slot_size);
        if base.saturating_add(slot_size) <= self.cursor {
            // The slot's window already passed this rotation.
            base.saturating_add(span)
        } else {
            base
        }
    }

    /// Link node `idx` where it belongs given the current cursor: the sorted
    /// due ring (deadline already reached), a wheel slot, or the far list.
    fn place(&mut self, idx: u32) {
        let at = self.nodes[idx as usize].at;
        if at <= self.cursor {
            self.insert_due(idx);
            return;
        }
        let delta = at - self.cursor;
        if delta >= WHEEL_SPAN {
            self.far_min = self.far_min.min(at);
            self.far.push(idx);
            return;
        }
        let mut level = Self::level_for(delta);
        // If the deadline maps onto the cursor's own slot at this level it is
        // a full rotation away, not current — park it one level up (where the
        // slot index is guaranteed to differ; see the equivalence proptest).
        if (at >> (SLOT_BITS * level as u32)) & 63
            == (self.cursor >> (SLOT_BITS * level as u32)) & 63
        {
            level += 1;
        }
        if level >= LEVELS {
            self.far_min = self.far_min.min(at);
            self.far.push(idx);
            return;
        }
        let slot = ((at >> (SLOT_BITS * level as u32)) & 63) as usize;
        let head = level * SLOTS + slot;
        self.nodes[idx as usize].next = self.slots[head];
        self.slots[head] = idx;
        self.occupied[level] |= 1 << slot;
    }

    /// Sorted insert into the due ring by `(at, seq)`.
    fn insert_due(&mut self, idx: u32) {
        let nodes = &self.nodes;
        let key = {
            let n = &nodes[idx as usize];
            (n.at, n.seq)
        };
        let pos = self
            .due
            .binary_search_by(|&i| {
                let n = &nodes[i as usize];
                (n.at, n.seq).cmp(&key)
            })
            .unwrap_err();
        self.due.insert(pos, idx);
    }

    /// Earliest occupied slot across all levels: `(level, slot, base)`,
    /// preferring the highest level on a base tie so cascades happen before
    /// harvests (their nodes may share the harvested millisecond).
    fn best_slot(&self) -> Option<(usize, u64, u64)> {
        let mut best: Option<(usize, u64, u64)> = None;
        for level in 0..LEVELS {
            let occ = self.occupied[level];
            if occ == 0 {
                continue;
            }
            let cs = ((self.cursor >> (SLOT_BITS * level as u32)) & 63) as u32;
            // Rotate so bit k of `rotated` is slot (cs + k) % 64: the first
            // set bit is the next occupied slot at/after the cursor's.
            let rotated = occ.rotate_right(cs);
            let k = rotated.trailing_zeros() as u64;
            let slot = (u64::from(cs) + k) % 64;
            let base = self.slot_base(level, slot);
            let better = match best {
                None => true,
                Some((bl, _, bb)) => base < bb || (base == bb && level > bl),
            };
            if better {
                best = Some((level, slot, base));
            }
        }
        best
    }

    /// Detach and return the head of a slot's list, clearing its bitmap bit.
    fn take_slot(&mut self, level: usize, slot: u64) -> u32 {
        let head = level * SLOTS + slot as usize;
        let idx = self.slots[head];
        self.slots[head] = NIL;
        self.occupied[level] &= !(1 << slot);
        idx
    }

    /// Advance the wheel until the due ring has entries or nothing is left.
    fn refill_due(&mut self) {
        // Scratch buffer for level-0 harvests, kept out of the loop.
        let mut batch: Vec<u32> = Vec::new();
        while self.due.is_empty() {
            let best = self.best_slot();
            let far_ready = !self.far.is_empty()
                && match best {
                    None => true,
                    Some((_, _, base)) => self.far_min < base,
                };
            if far_ready {
                // Nothing in the wheel fires before the earliest far node:
                // jump the cursor forward and re-place what now fits.
                self.cursor = self.cursor.max(match best {
                    None => self.far_min,
                    Some((_, _, base)) => base.min(self.far_min),
                });
                self.pull_far();
                continue;
            }
            let Some((level, slot, base)) = best else {
                return;
            };
            debug_assert!(base >= self.cursor || level > 0);
            self.cursor = self.cursor.max(base);
            let mut idx = self.take_slot(level, slot);
            if level == 0 {
                // Exact-millisecond slot: everything in it is due *now*.
                batch.clear();
                while idx != NIL {
                    let next = self.nodes[idx as usize].next;
                    if self.nodes[idx as usize].event.is_none() {
                        self.cancelled -= 1;
                        self.release(idx);
                    } else {
                        debug_assert_eq!(self.nodes[idx as usize].at, self.cursor);
                        batch.push(idx);
                    }
                    idx = next;
                }
                // Restore FIFO among simultaneous events (lists are LIFO).
                batch.sort_unstable_by_key(|&i| self.nodes[i as usize].seq);
                self.due.extend(batch.iter().copied());
            } else {
                // Cascade: nodes fall to strictly lower levels (or the due
                // ring) now that the cursor is inside their slot window.
                while idx != NIL {
                    let next = self.nodes[idx as usize].next;
                    if self.nodes[idx as usize].event.is_none() {
                        self.cancelled -= 1;
                        self.release(idx);
                    } else {
                        self.nodes[idx as usize].next = NIL;
                        self.place(idx);
                    }
                    idx = next;
                }
            }
        }
    }

    /// Re-place far-list nodes that now fit in the wheel (or are due).
    fn pull_far(&mut self) {
        let far = std::mem::take(&mut self.far);
        self.far_min = u64::MAX;
        for idx in far {
            if self.nodes[idx as usize].event.is_none() {
                self.cancelled -= 1;
                self.release(idx);
            } else {
                // `place` re-files into wheel/due, or back into `far` (with
                // far_min maintenance) if still beyond the span.
                self.place(idx);
            }
        }
    }

    /// Schedule `event` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is in the past — the simulation never time-travels,
    /// and a past-dated event is always a logic bug in the caller.
    pub fn schedule_at(&mut self, at: SimTime, event: E) -> EventToken {
        assert!(
            at >= self.now(),
            "scheduled event at {at} before current time {}",
            self.now()
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        let idx = self.alloc(at.as_millis(), seq, event);
        self.live += 1;
        self.place(idx);
        let gen = self.nodes[idx as usize].gen;
        EventToken::from_raw((u64::from(gen) << 32) | u64::from(idx))
    }

    /// Schedule `event` after a delay from the current time.
    pub fn schedule_after(&mut self, delay: SimDuration, event: E) -> EventToken {
        self.schedule_at(self.now() + delay, event)
    }

    /// Cancel a previously scheduled event. Returns `false` if the event has
    /// already fired or was already cancelled. O(1): the node is tombstoned
    /// in place and reclaimed when its slot is next visited (or by the purge
    /// sweep if tombstones ever dominate).
    pub fn cancel(&mut self, token: EventToken) -> bool {
        let raw = token.raw();
        let idx = (raw & u64::from(u32::MAX)) as usize;
        let gen = (raw >> 32) as u32;
        let Some(node) = self.nodes.get_mut(idx) else {
            return false;
        };
        if node.gen != gen || node.event.is_none() {
            return false;
        }
        node.event = None;
        self.live -= 1;
        self.cancelled += 1;
        if self.cancelled >= PURGE_MIN_TOMBSTONES
            && self.cancelled * 2 >= self.live + self.cancelled
        {
            self.purge_cancelled();
        }
        true
    }

    /// Sweep every list and reclaim tombstoned nodes, bounding slab memory
    /// to O(live events) under schedule/cancel churn.
    fn purge_cancelled(&mut self) {
        for level in 0..LEVELS {
            let mut occ = self.occupied[level];
            while occ != 0 {
                let slot = occ.trailing_zeros() as usize;
                occ &= occ - 1;
                let head = level * SLOTS + slot;
                let mut idx = self.slots[head];
                let mut kept = NIL;
                while idx != NIL {
                    let next = self.nodes[idx as usize].next;
                    if self.nodes[idx as usize].event.is_none() {
                        self.release(idx);
                    } else {
                        self.nodes[idx as usize].next = kept;
                        kept = idx;
                    }
                    idx = next;
                }
                // The surviving list is reversed; reverse back to preserve
                // insertion order (harvest sorts by seq anyway, but keep the
                // structure canonical).
                let mut rev = NIL;
                let mut idx = kept;
                while idx != NIL {
                    let next = self.nodes[idx as usize].next;
                    self.nodes[idx as usize].next = rev;
                    rev = idx;
                    idx = next;
                }
                self.slots[head] = rev;
                if rev == NIL {
                    self.occupied[level] &= !(1 << slot);
                }
            }
        }
        let nodes = &self.nodes;
        let mut freed: Vec<u32> = Vec::new();
        self.due.retain(|&idx| {
            let keep = nodes[idx as usize].event.is_some();
            if !keep {
                freed.push(idx);
            }
            keep
        });
        self.far.retain(|&idx| {
            let keep = nodes[idx as usize].event.is_some();
            if !keep {
                freed.push(idx);
            }
            keep
        });
        for idx in freed {
            self.release(idx);
        }
        self.far_min = self
            .far
            .iter()
            .map(|&i| self.nodes[i as usize].at)
            .min()
            .unwrap_or(u64::MAX);
        self.cancelled = 0;
    }

    /// Timestamp of the next live event, without popping it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        loop {
            self.refill_due();
            match self.due.front() {
                None => return None,
                Some(&idx) if self.nodes[idx as usize].event.is_none() => {
                    self.due.pop_front();
                    self.cancelled -= 1;
                    self.release(idx);
                }
                Some(&idx) => return Some(SimTime::from_millis(self.nodes[idx as usize].at)),
            }
        }
    }

    /// Pop the next live event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        loop {
            self.refill_due();
            let idx = self.due.pop_front()?;
            match self.nodes[idx as usize].event.take() {
                None => {
                    self.cancelled -= 1;
                    self.release(idx);
                }
                Some(event) => {
                    let at = self.nodes[idx as usize].at;
                    self.live -= 1;
                    self.release(idx);
                    debug_assert!(at >= self.clock);
                    self.clock = at;
                    return Some((SimTime::from_millis(at), event));
                }
            }
        }
    }

    /// Run the simulation loop until the wheel drains or the clock passes
    /// `until`. Events scheduled exactly at `until` still fire. Returns the
    /// number of events dispatched.
    pub fn run_until<H: EventHandler<E, Self>>(&mut self, handler: &mut H, until: SimTime) -> u64 {
        run_scheduled(self, handler, until)
    }

    /// Run until the wheel drains completely. Returns events dispatched.
    pub fn run_to_completion<H: EventHandler<E, Self>>(&mut self, handler: &mut H) -> u64 {
        self.run_until(handler, SimTime::MAX)
    }
}

impl<E> Scheduler<E> for TimerWheel<E> {
    fn now(&self) -> SimTime {
        TimerWheel::now(self)
    }
    fn len(&self) -> usize {
        TimerWheel::len(self)
    }
    fn schedule_at(&mut self, at: SimTime, event: E) -> EventToken {
        TimerWheel::schedule_at(self, at, event)
    }
    fn cancel(&mut self, token: EventToken) -> bool {
        TimerWheel::cancel(self, token)
    }
    fn peek_time(&mut self) -> Option<SimTime> {
        TimerWheel::peek_time(self)
    }
    fn pop(&mut self) -> Option<(SimTime, E)> {
        TimerWheel::pop(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::EventQueue;
    use crate::rng::SimRng;

    #[test]
    fn pops_in_time_order() {
        let mut w = TimerWheel::new();
        w.schedule_at(SimTime::from_secs(3), 3u32);
        w.schedule_at(SimTime::from_secs(1), 1u32);
        w.schedule_at(SimTime::from_secs(2), 2u32);
        let order: Vec<u32> = std::iter::from_fn(|| w.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
        assert_eq!(w.now(), SimTime::from_secs(3));
    }

    #[test]
    fn simultaneous_events_fifo() {
        let mut w = TimerWheel::new();
        for i in 0..10u32 {
            w.schedule_at(SimTime::from_secs(5), i);
        }
        let order: Vec<u32> = std::iter::from_fn(|| w.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn cancellation_and_token_reuse() {
        let mut w = TimerWheel::new();
        let t1 = w.schedule_at(SimTime::from_secs(1), "a");
        w.schedule_at(SimTime::from_secs(2), "b");
        assert!(w.cancel(t1));
        assert!(!w.cancel(t1), "double-cancel must return false");
        assert_eq!(w.len(), 1);
        assert_eq!(w.pop(), Some((SimTime::from_secs(2), "b")));
        assert!(!w.cancel(t1), "cancel after slab reuse must return false");
    }

    #[test]
    fn cancel_after_fire_is_noop() {
        let mut w = TimerWheel::new();
        let t = w.schedule_at(SimTime::from_secs(1), ());
        w.pop();
        assert!(!w.cancel(t), "cancelling a fired event must return false");
    }

    #[test]
    #[should_panic(expected = "before current time")]
    fn scheduling_in_the_past_panics() {
        let mut w = TimerWheel::new();
        w.schedule_at(SimTime::from_secs(10), ());
        w.pop();
        w.schedule_at(SimTime::from_secs(5), ());
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        // Schedule-before-cursor exercises the due-ring sorted insert.
        let mut w = TimerWheel::new();
        w.schedule_at(SimTime::from_millis(100), 1u32);
        w.schedule_at(SimTime::from_millis(100), 2u32);
        assert_eq!(w.peek_time(), Some(SimTime::from_millis(100)));
        // Clock still 0; inserting at 50 must fire before the 100s.
        w.schedule_at(SimTime::from_millis(50), 0u32);
        let order: Vec<u32> = std::iter::from_fn(|| w.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![0, 1, 2]);
    }

    #[test]
    fn far_future_deadlines() {
        let mut w = TimerWheel::new();
        // Beyond the 2^36 ms wheel span, plus the MAX sentinel.
        w.schedule_at(SimTime::from_millis(WHEEL_SPAN * 3), 1u32);
        w.schedule_at(SimTime::MAX, 2u32);
        w.schedule_at(SimTime::from_secs(1), 0u32);
        assert_eq!(w.pop(), Some((SimTime::from_secs(1), 0)));
        assert_eq!(w.pop(), Some((SimTime::from_millis(WHEEL_SPAN * 3), 1)));
        assert_eq!(w.pop(), Some((SimTime::MAX, 2)));
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn long_horizon_cascades() {
        // One event per hour for 40 days crosses several wheel levels.
        let mut w = TimerWheel::new();
        for h in 0..(40 * 24u64) {
            w.schedule_at(SimTime::from_secs(h * 3600), h);
        }
        let mut prev = None;
        let mut n = 0;
        while let Some((at, h)) = w.pop() {
            assert_eq!(at.as_secs(), h * 3600);
            assert!(prev < Some(at));
            prev = Some(at);
            n += 1;
        }
        assert_eq!(n, 40 * 24);
    }

    #[test]
    fn cancel_churn_keeps_memory_bounded() {
        let mut w = TimerWheel::new();
        for i in 0..100u32 {
            w.schedule_at(SimTime::from_secs(1_000_000 + u64::from(i)), i);
        }
        for round in 0..200_000u64 {
            let tok = w.schedule_at(SimTime::from_secs(500_000 + round), 0u32);
            assert!(w.cancel(tok));
        }
        assert_eq!(w.len(), 100);
        assert!(
            w.nodes.len() <= 100 + 2 * PURGE_MIN_TOMBSTONES,
            "slab retained {} nodes for 100 live events — tombstones leak",
            w.nodes.len()
        );
        assert_eq!(w.pop(), Some((SimTime::from_secs(1_000_000), 0u32)));
    }

    #[test]
    fn matches_event_queue_on_random_workloads() {
        // Randomised differential test; the proptest suite goes further,
        // this one keeps a fast in-crate witness.
        for seed in 0..20u64 {
            let mut rng = SimRng::new(seed);
            let mut q: EventQueue<u64> = EventQueue::new();
            let mut w: TimerWheel<u64> = TimerWheel::new();
            let mut q_toks = Vec::new();
            let mut w_toks = Vec::new();
            let mut q_log = Vec::new();
            let mut w_log = Vec::new();
            for step in 0..400u64 {
                match rng.index(4) {
                    0 | 1 => {
                        let delay = SimDuration::from_millis(rng.range_u64(0, 500_000));
                        q_toks.push(q.schedule_after(delay, step));
                        w_toks.push(w.schedule_after(delay, step));
                    }
                    2 if !q_toks.is_empty() => {
                        let i = rng.index(q_toks.len());
                        assert_eq!(q.cancel(q_toks[i]), w.cancel(w_toks[i]));
                    }
                    _ => {
                        assert_eq!(q.peek_time(), w.peek_time());
                        q_log.push(q.pop());
                        w_log.push(w.pop());
                    }
                }
                assert_eq!(q.len(), w.len());
            }
            loop {
                let (a, b) = (q.pop(), w.pop());
                q_log.push(a);
                w_log.push(b);
                if a.is_none() {
                    break;
                }
            }
            assert_eq!(q_log, w_log, "divergence at seed {seed}");
        }
    }

    #[test]
    fn run_until_respects_horizon() {
        struct Counter(u64);
        impl EventHandler<u32, TimerWheel<u32>> for Counter {
            fn handle(&mut self, _at: SimTime, _ev: u32, _q: &mut TimerWheel<u32>) {
                self.0 += 1;
            }
        }
        let mut w = TimerWheel::new();
        for s in 1..=10 {
            w.schedule_at(SimTime::from_secs(s), s as u32);
        }
        let mut c = Counter(0);
        let n = w.run_until(&mut c, SimTime::from_secs(5));
        assert_eq!(n, 5);
        assert_eq!(c.0, 5);
        assert_eq!(w.len(), 5);
    }

    #[test]
    fn handlers_can_schedule_followups() {
        struct Chain {
            fired: Vec<u64>,
        }
        impl EventHandler<u64, TimerWheel<u64>> for Chain {
            fn handle(&mut self, at: SimTime, ev: u64, q: &mut TimerWheel<u64>) {
                self.fired.push(ev);
                if ev < 5 {
                    q.schedule_at(at + SimDuration::from_secs(1), ev + 1);
                }
            }
        }
        let mut w = TimerWheel::new();
        w.schedule_at(SimTime::from_secs(0), 1);
        let mut h = Chain { fired: vec![] };
        w.run_to_completion(&mut h);
        assert_eq!(h.fired, vec![1, 2, 3, 4, 5]);
        assert_eq!(w.now(), SimTime::from_secs(4));
    }
}
