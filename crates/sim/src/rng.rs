//! Deterministic random number generation.
//!
//! [`SimRng`] wraps a seeded PRNG and exposes exactly the sampling surface
//! the simulation needs. Components obtain *forked* sub-streams via
//! [`SimRng::fork`], derived with SplitMix64 from the parent seed and a salt,
//! so that adding a consumer never perturbs the draws another consumer sees —
//! the property that keeps large experiments reproducible as they grow.

use cellrel_types::SimDuration;
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

/// SplitMix64 — the canonical seed-derivation mixer.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seeded, forkable random stream.
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: SmallRng,
    seed: u64,
    forks: u64,
}

impl SimRng {
    /// Create a stream from a root seed.
    pub fn new(seed: u64) -> Self {
        SimRng {
            inner: SmallRng::seed_from_u64(splitmix64(seed)),
            seed,
            forks: 0,
        }
    }

    /// The seed this stream was created with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derive the substream for item `id` of the experiment rooted at
    /// `root_seed` — a *counter-based* stream constructor: the result
    /// depends on `(root_seed, id)` alone, never on any other stream's
    /// draw or fork history. This is what lets fleet drivers shard a
    /// population across threads and still produce bit-identical output at
    /// any thread count: device `id`'s draws are the same whether devices
    /// `0..id` ran before it, after it, or on another thread.
    pub fn for_substream(root_seed: u64, id: u64) -> SimRng {
        // Feed both words through SplitMix64 before combining so that
        // related roots (seed, seed+1) and adjacent ids land in unrelated
        // streams; the wrapping_add keeps the map (root, id) -> seed
        // bijective per root.
        let child =
            splitmix64(splitmix64(root_seed ^ 0x5851_F42D_4C95_7F2D).wrapping_add(splitmix64(!id)));
        SimRng::new(child)
    }

    /// Derive an independent child stream. The child's seed depends on this
    /// stream's seed, the salt, and how many forks were taken before — but
    /// *not* on how many samples were drawn, so sampling and forking don't
    /// interfere.
    pub fn fork(&mut self, salt: u64) -> SimRng {
        self.forks += 1;
        let child = splitmix64(self.seed ^ splitmix64(salt) ^ (self.forks << 32));
        SimRng::new(child)
    }

    /// Uniform in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        self.inner.random::<f64>()
    }

    /// Bernoulli trial with probability `p` (clamped into `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.inner.random::<f64>() < p
        }
    }

    /// Uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `lo >= hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        self.inner.random_range(lo..hi)
    }

    /// Uniform usize in `[0, n)`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index() on empty range");
        self.inner.random_range(0..n)
    }

    /// Uniform float in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + (hi - lo) * self.f64()
    }

    /// Exponential with the given mean (inverse-CDF method).
    pub fn exp(&mut self, mean: f64) -> f64 {
        debug_assert!(mean > 0.0);
        let u = 1.0 - self.f64(); // (0, 1]
        -mean * u.ln()
    }

    /// Standard normal via Box–Muller (one value per call; the pair's second
    /// value is discarded to keep the stream's draw count predictable).
    pub fn std_normal(&mut self) -> f64 {
        let u1 = (1.0 - self.f64()).max(f64::MIN_POSITIVE); // (0, 1]
        let u2 = self.f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Normal with mean `mu` and standard deviation `sigma`.
    pub fn normal(&mut self, mu: f64, sigma: f64) -> f64 {
        mu + sigma * self.std_normal()
    }

    /// Log-normal: `exp(N(mu, sigma))`.
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.normal(mu, sigma).exp()
    }

    /// Pareto with scale `x_min > 0` and shape `alpha > 0`.
    pub fn pareto(&mut self, x_min: f64, alpha: f64) -> f64 {
        debug_assert!(x_min > 0.0 && alpha > 0.0);
        let u = 1.0 - self.f64();
        x_min / u.powf(1.0 / alpha)
    }

    /// Pick a uniformly random element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.index(items.len())]
    }

    /// Sample an index proportionally to `weights` (linear scan; use
    /// [`crate::dist::WeightedIndex`] for repeated sampling).
    ///
    /// # Panics
    /// Panics if `weights` is empty or sums to a non-positive value.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weighted_index with non-positive total");
        let mut x = self.f64() * total;
        for (i, &w) in weights.iter().enumerate() {
            x -= w;
            if x < 0.0 {
                return i;
            }
        }
        weights.len() - 1
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }

    /// Exponentially distributed duration with the given mean.
    pub fn duration_exp(&mut self, mean: SimDuration) -> SimDuration {
        SimDuration::from_millis(self.exp(mean.as_millis() as f64).round() as u64)
    }

    /// Uniform duration in `[lo, hi)`.
    pub fn duration_range(&mut self, lo: SimDuration, hi: SimDuration) -> SimDuration {
        SimDuration::from_millis(self.range_u64(lo.as_millis(), hi.as_millis()))
    }

    /// Poisson-distributed count with the given mean (Knuth for small means,
    /// normal approximation above 30 to stay O(1)).
    pub fn poisson(&mut self, mean: f64) -> u64 {
        debug_assert!(mean >= 0.0);
        if mean <= 0.0 {
            return 0;
        }
        if mean > 30.0 {
            let v = self.normal(mean, mean.sqrt()).round();
            return v.max(0.0) as u64;
        }
        let l = (-mean).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= self.f64();
            if p <= l {
                return k;
            }
            k += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism_same_seed() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.f64(), b.f64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..32).filter(|_| a.f64() == b.f64()).count();
        assert!(same < 4);
    }

    #[test]
    fn forks_are_independent_of_draw_count() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        // Draw from `a` before forking; fork seeds must still match.
        for _ in 0..10 {
            a.f64();
        }
        let mut fa = a.fork(99);
        let mut fb = b.fork(99);
        for _ in 0..32 {
            assert_eq!(fa.f64(), fb.f64());
        }
    }

    #[test]
    fn successive_forks_differ() {
        let mut r = SimRng::new(7);
        let mut f1 = r.fork(1);
        let mut f2 = r.fork(1);
        assert_ne!(f1.f64(), f2.f64());
    }

    #[test]
    fn substreams_depend_only_on_root_and_id() {
        let mut a = SimRng::for_substream(42, 7);
        let mut b = SimRng::for_substream(42, 7);
        for _ in 0..64 {
            assert_eq!(a.f64().to_bits(), b.f64().to_bits());
        }
        // Distinct ids and distinct roots give distinct streams.
        let mut c = SimRng::for_substream(42, 8);
        let mut d = SimRng::for_substream(43, 7);
        let a0 = SimRng::for_substream(42, 7).f64();
        assert_ne!(a0, c.f64());
        assert_ne!(a0, d.f64());
    }

    #[test]
    fn adjacent_substreams_are_uncorrelated() {
        // Neighbouring ids (the common sharding layout) must not produce
        // correlated draws: compare means of XORed low bits.
        let mut agree = 0u32;
        let n = 4096;
        for id in 0..n {
            let x = SimRng::for_substream(9, id).f64();
            let y = SimRng::for_substream(9, id + 1).f64();
            if (x < 0.5) == (y < 0.5) {
                agree += 1;
            }
        }
        let rate = agree as f64 / n as f64;
        assert!((rate - 0.5).abs() < 0.05, "neighbour agreement {rate}");
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::new(0);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-0.5));
        assert!(r.chance(1.5));
    }

    #[test]
    fn exp_mean_is_close() {
        let mut r = SimRng::new(3);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| r.exp(5.0)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.15, "exp mean {mean}");
    }

    #[test]
    fn normal_moments() {
        let mut r = SimRng::new(4);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| r.normal(10.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut r = SimRng::new(5);
        let w = [1.0, 0.0, 3.0];
        let mut counts = [0u32; 3];
        for _ in 0..10_000 {
            counts[r.weighted_index(&w)] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.4, "ratio {ratio}");
    }

    #[test]
    fn pareto_respects_minimum() {
        let mut r = SimRng::new(6);
        for _ in 0..1000 {
            assert!(r.pareto(2.0, 1.5) >= 2.0);
        }
    }

    #[test]
    fn poisson_mean_small_and_large() {
        let mut r = SimRng::new(8);
        for &mean in &[0.5, 4.0, 100.0] {
            let n = 20_000;
            let avg: f64 = (0..n).map(|_| r.poisson(mean) as f64).sum::<f64>() / n as f64;
            assert!(
                (avg - mean).abs() < mean.max(1.0) * 0.05 + 0.05,
                "poisson({mean}) mean {avg}"
            );
        }
        assert_eq!(r.poisson(0.0), 0);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::new(9);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "shuffle left input sorted");
    }

    #[test]
    fn duration_helpers() {
        let mut r = SimRng::new(10);
        let d = r.duration_range(SimDuration::from_secs(1), SimDuration::from_secs(2));
        assert!(d >= SimDuration::from_secs(1) && d < SimDuration::from_secs(2));
        let e = r.duration_exp(SimDuration::from_secs(10));
        assert!(e.as_millis() < 10_000 * 100);
    }
}
