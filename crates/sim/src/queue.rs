//! The discrete-event queue and simulation driver.
//!
//! [`EventQueue`] is a time-ordered priority queue of typed events with
//! stable FIFO ordering for simultaneous events and O(log n) cancellation
//! via tombstones. Popping an event advances the simulation clock; time
//! never moves backwards.

use cellrel_types::{SimDuration, SimTime};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

/// Handle to a scheduled event, used to cancel it before it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventToken(u64);

#[derive(Debug)]
struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

// Min-heap ordering: earliest time first; FIFO (lowest seq) among equals.
impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest entry on top.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic, cancellable discrete-event queue.
///
/// ```
/// use cellrel_sim::EventQueue;
/// use cellrel_types::{SimDuration, SimTime};
///
/// let mut q: EventQueue<&str> = EventQueue::new();
/// q.schedule_after(SimDuration::from_secs(10), "b");
/// q.schedule_after(SimDuration::from_secs(5), "a");
/// let tok = q.schedule_after(SimDuration::from_secs(7), "cancelled");
/// q.cancel(tok);
///
/// assert_eq!(q.pop(), Some((SimTime::from_secs(5), "a")));
/// assert_eq!(q.pop(), Some((SimTime::from_secs(10), "b")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    /// Seqs of events currently scheduled (in the heap, not yet fired or
    /// skimmed). Membership here is what makes cancellation exact.
    pending: HashSet<u64>,
    /// Seqs cancelled while still pending; lazily removed from the heap.
    cancelled: HashSet<u64>,
    now: SimTime,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue with the clock at `SimTime::ZERO`.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            pending: HashSet::new(),
            cancelled: HashSet::new(),
            now: SimTime::ZERO,
            next_seq: 0,
        }
    }

    /// Current simulation time (the timestamp of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of live (non-cancelled) scheduled events.
    pub fn len(&self) -> usize {
        self.heap.len() - self.cancelled.len()
    }

    /// True if no live events remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Schedule `event` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is in the past — the simulation never time-travels,
    /// and a past-dated event is always a logic bug in the caller.
    pub fn schedule_at(&mut self, at: SimTime, event: E) -> EventToken {
        assert!(
            at >= self.now,
            "scheduled event at {at} before current time {}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, event });
        self.pending.insert(seq);
        EventToken(seq)
    }

    /// Schedule `event` after a delay from the current time.
    pub fn schedule_after(&mut self, delay: SimDuration, event: E) -> EventToken {
        self.schedule_at(self.now + delay, event)
    }

    /// Cancel a previously scheduled event. Returns `false` if the event has
    /// already fired or was already cancelled.
    pub fn cancel(&mut self, token: EventToken) -> bool {
        if !self.pending.remove(&token.0) {
            return false;
        }
        self.cancelled.insert(token.0);
        true
    }

    /// Timestamp of the next live event, without popping it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.skim_cancelled();
        self.heap.peek().map(|e| e.at)
    }

    /// Pop the next live event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.skim_cancelled();
        let entry = self.heap.pop()?;
        self.pending.remove(&entry.seq);
        debug_assert!(entry.at >= self.now);
        self.now = entry.at;
        Some((entry.at, entry.event))
    }

    /// Drop any cancelled entries sitting on top of the heap.
    fn skim_cancelled(&mut self) {
        while let Some(top) = self.heap.peek() {
            if self.cancelled.remove(&top.seq) {
                self.heap.pop();
            } else {
                break;
            }
        }
    }

    /// Discard all pending events (the clock is unchanged).
    pub fn clear(&mut self) {
        self.heap.clear();
        self.pending.clear();
        self.cancelled.clear();
    }
}

/// A component that consumes events and may schedule follow-ups.
pub trait EventHandler<E> {
    /// Handle one event that fired at time `at`.
    fn handle(&mut self, at: SimTime, event: E, queue: &mut EventQueue<E>);
}

impl<E> EventQueue<E> {
    /// Run the simulation loop until the queue drains or the clock passes
    /// `until`. Events scheduled exactly at `until` still fire. Returns the
    /// number of events dispatched.
    pub fn run_until<H: EventHandler<E>>(&mut self, handler: &mut H, until: SimTime) -> u64 {
        let mut dispatched = 0;
        while let Some(at) = self.peek_time() {
            if at > until {
                break;
            }
            let (at, ev) = self.pop().expect("peeked event vanished");
            handler.handle(at, ev, self);
            dispatched += 1;
        }
        dispatched
    }

    /// Run until the queue drains completely. Returns events dispatched.
    pub fn run_to_completion<H: EventHandler<E>>(&mut self, handler: &mut H) -> u64 {
        self.run_until(handler, SimTime::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(3), 3u32);
        q.schedule_at(SimTime::from_secs(1), 1u32);
        q.schedule_at(SimTime::from_secs(2), 2u32);
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
        assert_eq!(q.now(), SimTime::from_secs(3));
    }

    #[test]
    fn simultaneous_events_fifo() {
        let mut q = EventQueue::new();
        for i in 0..10u32 {
            q.schedule_at(SimTime::from_secs(5), i);
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn cancellation() {
        let mut q = EventQueue::new();
        let t1 = q.schedule_at(SimTime::from_secs(1), "a");
        q.schedule_at(SimTime::from_secs(2), "b");
        assert!(q.cancel(t1));
        assert!(!q.cancel(t1), "double-cancel must return false");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((SimTime::from_secs(2), "b")));
    }

    #[test]
    fn cancel_after_fire_is_noop() {
        let mut q = EventQueue::new();
        let t = q.schedule_at(SimTime::from_secs(1), ());
        q.pop();
        assert!(!q.cancel(t), "cancelling a fired event must return false");
        let t2 = q.schedule_at(SimTime::from_secs(2), ());
        assert_ne!(t, t2, "tokens are never reused");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((SimTime::from_secs(2), ())));
    }

    #[test]
    #[should_panic(expected = "before current time")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(10), ());
        q.pop();
        q.schedule_at(SimTime::from_secs(5), ());
    }

    #[test]
    fn run_until_respects_horizon() {
        struct Counter(u64);
        impl EventHandler<u32> for Counter {
            fn handle(&mut self, _at: SimTime, _ev: u32, _q: &mut EventQueue<u32>) {
                self.0 += 1;
            }
        }
        let mut q = EventQueue::new();
        for s in 1..=10 {
            q.schedule_at(SimTime::from_secs(s), s as u32);
        }
        let mut c = Counter(0);
        let n = q.run_until(&mut c, SimTime::from_secs(5));
        assert_eq!(n, 5);
        assert_eq!(c.0, 5);
        assert_eq!(q.len(), 5);
    }

    #[test]
    fn handlers_can_schedule_followups() {
        struct Chain {
            fired: Vec<u64>,
        }
        impl EventHandler<u64> for Chain {
            fn handle(&mut self, at: SimTime, ev: u64, q: &mut EventQueue<u64>) {
                self.fired.push(ev);
                if ev < 5 {
                    q.schedule_at(at + SimDuration::from_secs(1), ev + 1);
                }
            }
        }
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(0), 1);
        let mut h = Chain { fired: vec![] };
        q.run_to_completion(&mut h);
        assert_eq!(h.fired, vec![1, 2, 3, 4, 5]);
        assert_eq!(q.now(), SimTime::from_secs(4));
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(1), ());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }
}
