//! The discrete-event queue and simulation driver.
//!
//! [`EventQueue`] is a time-ordered priority queue of typed events with
//! stable FIFO ordering for simultaneous events and O(log n) cancellation
//! via tombstones. Popping an event advances the simulation clock; time
//! never moves backwards.
//!
//! The [`Scheduler`] trait abstracts the scheduling surface so simulation
//! components can run unchanged on either backend: the binary-heap
//! [`EventQueue`] here, or the hierarchical [`TimerWheel`](crate::TimerWheel)
//! whose schedule/cancel/advance are O(1) for the fleet hot path. Both
//! dispatch simultaneous events in strict schedule (FIFO) order, so a
//! deterministic simulation produces bit-identical traces on either.

use cellrel_types::{SimDuration, SimTime};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

/// Handle to a scheduled event, used to cancel it before it fires.
///
/// Tokens are only meaningful on the scheduler that issued them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventToken(u64);

impl EventToken {
    /// Build a token from a raw backend-specific id (crate-internal: the
    /// timer wheel packs a slab index + generation in here).
    pub(crate) fn from_raw(raw: u64) -> Self {
        EventToken(raw)
    }

    /// The raw backend-specific id.
    pub(crate) fn raw(self) -> u64 {
        self.0
    }
}

/// The scheduling surface shared by every event-loop backend.
///
/// Implementations guarantee:
///
/// * the clock ([`now`](Scheduler::now)) is the timestamp of the last popped
///   event and never moves backwards;
/// * events pop in ascending `(time, schedule order)` — simultaneous events
///   fire in the order they were scheduled (FIFO);
/// * scheduling in the past (before `now`) panics — a past-dated event is
///   always a logic bug in the caller.
pub trait Scheduler<E> {
    /// Current simulation time (the timestamp of the last popped event).
    fn now(&self) -> SimTime;
    /// Number of live (non-cancelled) scheduled events.
    fn len(&self) -> usize;
    /// True if no live events remain.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Schedule `event` at absolute time `at`.
    fn schedule_at(&mut self, at: SimTime, event: E) -> EventToken;
    /// Schedule `event` after a delay from the current time.
    fn schedule_after(&mut self, delay: SimDuration, event: E) -> EventToken {
        let at = self.now() + delay;
        self.schedule_at(at, event)
    }
    /// Cancel a previously scheduled event. Returns `false` if the event has
    /// already fired or was already cancelled.
    fn cancel(&mut self, token: EventToken) -> bool;
    /// Timestamp of the next live event, without popping it.
    fn peek_time(&mut self) -> Option<SimTime>;
    /// Pop the next live event, advancing the clock to its timestamp.
    fn pop(&mut self) -> Option<(SimTime, E)>;
}

/// Run the simulation loop on any [`Scheduler`] backend until the queue
/// drains or the clock passes `until`. Events scheduled exactly at `until`
/// still fire. Returns the number of events dispatched.
pub fn run_scheduled<E, Q, H>(queue: &mut Q, handler: &mut H, until: SimTime) -> u64
where
    Q: Scheduler<E>,
    H: EventHandler<E, Q>,
{
    let mut dispatched = 0;
    while let Some(at) = queue.peek_time() {
        if at > until {
            break;
        }
        let (at, ev) = queue.pop().expect("peeked event vanished");
        handler.handle(at, ev, queue);
        dispatched += 1;
    }
    dispatched
}

#[derive(Debug)]
struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

// Min-heap ordering: earliest time first; FIFO (lowest seq) among equals.
impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest entry on top.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic, cancellable discrete-event queue.
///
/// ```
/// use cellrel_sim::{EventQueue, Scheduler};
/// use cellrel_types::{SimDuration, SimTime};
///
/// let mut q: EventQueue<&str> = EventQueue::new();
/// q.schedule_after(SimDuration::from_secs(10), "b");
/// q.schedule_after(SimDuration::from_secs(5), "a");
/// let tok = q.schedule_after(SimDuration::from_secs(7), "cancelled");
/// q.cancel(tok);
///
/// assert_eq!(q.pop(), Some((SimTime::from_secs(5), "a")));
/// assert_eq!(q.pop(), Some((SimTime::from_secs(10), "b")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    /// Seqs of events currently scheduled (in the heap, not yet fired or
    /// skimmed). Membership here is what makes cancellation exact.
    pending: HashSet<u64>,
    /// Seqs cancelled while still pending; lazily removed from the heap.
    /// Compacted whenever tombstones come to dominate the heap, so memory
    /// stays proportional to *live* events under schedule/cancel churn.
    cancelled: HashSet<u64>,
    now: SimTime,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

/// Compaction threshold: never compact below this many tombstones (small
/// queues would churn), above it compact once tombstones reach half the heap.
const COMPACT_MIN_TOMBSTONES: usize = 64;

impl<E> EventQueue<E> {
    /// An empty queue with the clock at `SimTime::ZERO`.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            pending: HashSet::new(),
            cancelled: HashSet::new(),
            now: SimTime::ZERO,
            next_seq: 0,
        }
    }

    /// Current simulation time (the timestamp of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of live (non-cancelled) scheduled events.
    pub fn len(&self) -> usize {
        self.heap.len() - self.cancelled.len()
    }

    /// True if no live events remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Schedule `event` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is in the past — the simulation never time-travels,
    /// and a past-dated event is always a logic bug in the caller.
    pub fn schedule_at(&mut self, at: SimTime, event: E) -> EventToken {
        assert!(
            at >= self.now,
            "scheduled event at {at} before current time {}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, event });
        self.pending.insert(seq);
        EventToken(seq)
    }

    /// Schedule `event` after a delay from the current time.
    pub fn schedule_after(&mut self, delay: SimDuration, event: E) -> EventToken {
        self.schedule_at(self.now + delay, event)
    }

    /// Cancel a previously scheduled event. Returns `false` if the event has
    /// already fired or was already cancelled.
    pub fn cancel(&mut self, token: EventToken) -> bool {
        if !self.pending.remove(&token.0) {
            return false;
        }
        self.cancelled.insert(token.0);
        // Tombstones buried deep in the heap are invisible to the skim at
        // pop time; on long cancel-heavy runs they used to accumulate
        // without bound. Compact whenever they reach half the heap, which
        // keeps memory O(live events) at amortised O(1) per cancel.
        if self.cancelled.len() >= COMPACT_MIN_TOMBSTONES
            && self.cancelled.len() * 2 >= self.heap.len()
        {
            let cancelled = std::mem::take(&mut self.cancelled);
            self.heap.retain(|e| !cancelled.contains(&e.seq));
        }
        true
    }

    /// Timestamp of the next live event, without popping it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.skim_cancelled();
        self.heap.peek().map(|e| e.at)
    }

    /// Pop the next live event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.skim_cancelled();
        let entry = self.heap.pop()?;
        self.pending.remove(&entry.seq);
        debug_assert!(entry.at >= self.now);
        self.now = entry.at;
        Some((entry.at, entry.event))
    }

    /// Drop any cancelled entries sitting on top of the heap.
    fn skim_cancelled(&mut self) {
        while let Some(top) = self.heap.peek() {
            if self.cancelled.remove(&top.seq) {
                self.heap.pop();
            } else {
                break;
            }
        }
    }

    /// Discard all pending events (the clock is unchanged).
    pub fn clear(&mut self) {
        self.heap.clear();
        self.pending.clear();
        self.cancelled.clear();
    }
}

impl<E> Scheduler<E> for EventQueue<E> {
    fn now(&self) -> SimTime {
        EventQueue::now(self)
    }
    fn len(&self) -> usize {
        EventQueue::len(self)
    }
    fn schedule_at(&mut self, at: SimTime, event: E) -> EventToken {
        EventQueue::schedule_at(self, at, event)
    }
    fn cancel(&mut self, token: EventToken) -> bool {
        EventQueue::cancel(self, token)
    }
    fn peek_time(&mut self) -> Option<SimTime> {
        EventQueue::peek_time(self)
    }
    fn pop(&mut self) -> Option<(SimTime, E)> {
        EventQueue::pop(self)
    }
}

/// A component that consumes events and may schedule follow-ups.
///
/// The second type parameter selects the scheduler backend the handler runs
/// on; it defaults to [`EventQueue`] so existing single-backend handlers
/// keep compiling unchanged. Handlers that should run on any backend (the
/// device simulator, for example) implement `EventHandler<E, Q>` for all
/// `Q: Scheduler<E>`.
pub trait EventHandler<E, Q: Scheduler<E> = EventQueue<E>> {
    /// Handle one event that fired at time `at`.
    fn handle(&mut self, at: SimTime, event: E, queue: &mut Q);
}

impl<E> EventQueue<E> {
    /// Run the simulation loop until the queue drains or the clock passes
    /// `until`. Events scheduled exactly at `until` still fire. Returns the
    /// number of events dispatched.
    pub fn run_until<H: EventHandler<E, Self>>(&mut self, handler: &mut H, until: SimTime) -> u64 {
        run_scheduled(self, handler, until)
    }

    /// Run until the queue drains completely. Returns events dispatched.
    pub fn run_to_completion<H: EventHandler<E, Self>>(&mut self, handler: &mut H) -> u64 {
        self.run_until(handler, SimTime::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(3), 3u32);
        q.schedule_at(SimTime::from_secs(1), 1u32);
        q.schedule_at(SimTime::from_secs(2), 2u32);
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
        assert_eq!(q.now(), SimTime::from_secs(3));
    }

    #[test]
    fn simultaneous_events_fifo() {
        let mut q = EventQueue::new();
        for i in 0..10u32 {
            q.schedule_at(SimTime::from_secs(5), i);
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn cancellation() {
        let mut q = EventQueue::new();
        let t1 = q.schedule_at(SimTime::from_secs(1), "a");
        q.schedule_at(SimTime::from_secs(2), "b");
        assert!(q.cancel(t1));
        assert!(!q.cancel(t1), "double-cancel must return false");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((SimTime::from_secs(2), "b")));
    }

    #[test]
    fn cancel_after_fire_is_noop() {
        let mut q = EventQueue::new();
        let t = q.schedule_at(SimTime::from_secs(1), ());
        q.pop();
        assert!(!q.cancel(t), "cancelling a fired event must return false");
        let t2 = q.schedule_at(SimTime::from_secs(2), ());
        assert_ne!(t, t2, "tokens are never reused");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((SimTime::from_secs(2), ())));
    }

    #[test]
    #[should_panic(expected = "before current time")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(10), ());
        q.pop();
        q.schedule_at(SimTime::from_secs(5), ());
    }

    #[test]
    fn run_until_respects_horizon() {
        struct Counter(u64);
        impl EventHandler<u32> for Counter {
            fn handle(&mut self, _at: SimTime, _ev: u32, _q: &mut EventQueue<u32>) {
                self.0 += 1;
            }
        }
        let mut q = EventQueue::new();
        for s in 1..=10 {
            q.schedule_at(SimTime::from_secs(s), s as u32);
        }
        let mut c = Counter(0);
        let n = q.run_until(&mut c, SimTime::from_secs(5));
        assert_eq!(n, 5);
        assert_eq!(c.0, 5);
        assert_eq!(q.len(), 5);
    }

    #[test]
    fn handlers_can_schedule_followups() {
        struct Chain {
            fired: Vec<u64>,
        }
        impl EventHandler<u64> for Chain {
            fn handle(&mut self, at: SimTime, ev: u64, q: &mut EventQueue<u64>) {
                self.fired.push(ev);
                if ev < 5 {
                    q.schedule_at(at + SimDuration::from_secs(1), ev + 1);
                }
            }
        }
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(0), 1);
        let mut h = Chain { fired: vec![] };
        q.run_to_completion(&mut h);
        assert_eq!(h.fired, vec![1, 2, 3, 4, 5]);
        assert_eq!(q.now(), SimTime::from_secs(4));
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(1), ());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    /// Regression test for unbounded tombstone growth: a long-running
    /// schedule/cancel churn loop (recurring timers that are always
    /// rescheduled before firing) must not accumulate dead heap entries.
    /// Before compaction was added, the heap grew to one entry per cancel
    /// — 200k entries here; with compaction it stays O(live).
    #[test]
    fn cancel_churn_keeps_memory_bounded() {
        let mut q = EventQueue::new();
        // A stable backlog of far-future events keeps the tombstones buried
        // so the pop-time skim alone could never reclaim them.
        for i in 0..100u32 {
            q.schedule_at(SimTime::from_secs(1_000_000 + u64::from(i)), i);
        }
        for round in 0..200_000u64 {
            let tok = q.schedule_at(SimTime::from_secs(500_000 + round), 0u32);
            assert!(q.cancel(tok));
        }
        assert_eq!(q.len(), 100);
        assert!(
            q.heap.len() <= 100 + 2 * COMPACT_MIN_TOMBSTONES,
            "heap retained {} entries for 100 live events — tombstones leak",
            q.heap.len()
        );
        assert!(q.cancelled.len() <= 2 * COMPACT_MIN_TOMBSTONES);
        // The queue still works and pops only live events, in order.
        assert_eq!(q.pop(), Some((SimTime::from_secs(1_000_000), 0u32)));
    }

    /// The compaction path must preserve ordering and cancellation exactness.
    #[test]
    fn compaction_preserves_semantics() {
        let mut q = EventQueue::new();
        let mut keep = Vec::new();
        let mut cancel = Vec::new();
        for i in 0..500u64 {
            let tok = q.schedule_at(SimTime::from_secs(1 + i), i);
            if i % 3 == 0 {
                keep.push(i);
            } else {
                cancel.push(tok);
            }
        }
        for tok in cancel {
            assert!(q.cancel(tok));
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, keep);
    }
}
