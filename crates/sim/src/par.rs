//! Deterministic parallel execution for fleet-scale drivers.
//!
//! The macro study and the micro A/B fleets are embarrassingly parallel per
//! device *once per-device randomness is derived from `(root_seed,
//! device_id)` alone* (see [`crate::SimRng::for_substream`]). This module
//! supplies the remaining two pieces:
//!
//! * [`run_sharded`] — split an index range into contiguous shards, run a
//!   worker closure per shard on scoped threads (`std::thread::scope`, no
//!   dependencies), and return the per-shard results **in shard order**.
//! * [`Merge`] — an associative combine for per-shard partial results
//!   (counters, vectors, summaries, histograms, maps, …), so shard partials
//!   fold into exactly the value a sequential run would produce.
//!
//! Because shards are contiguous, per-shard vectors concatenated in shard
//! order reproduce the sequential iteration order, and because every
//! device's draws come from its own substream, the *content* of each
//! shard's output is independent of the shard layout. Together these give
//! the headline guarantee: **bit-identical output at any thread count**,
//! including 1 — for every quantity accumulated with order-insensitive
//! arithmetic (integer counters, ordered vectors). Floating-point
//! reductions ([`crate::Summary`], `f64` sums) merge associatively but not
//! bit-identically across *different shard layouts*; drivers that need
//! exact invariance accumulate integer milliseconds and convert at the end.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::hash::{BuildHasher, Hash};
use std::ops::Range;

/// An associative combine of two partial results.
///
/// `a.merge(b)` must behave like "b's observations appended after a's":
/// folding shard partials in shard order then equals one sequential pass.
pub trait Merge {
    /// Fold `other` into `self`.
    fn merge(&mut self, other: Self);
}

impl Merge for () {
    fn merge(&mut self, _other: Self) {}
}

macro_rules! impl_merge_add {
    ($($t:ty),*) => {$(
        impl Merge for $t {
            fn merge(&mut self, other: Self) {
                *self += other;
            }
        }
    )*};
}
impl_merge_add!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, f32, f64);

impl<T> Merge for Vec<T> {
    fn merge(&mut self, mut other: Self) {
        self.append(&mut other);
    }
}

impl<T: Merge, const N: usize> Merge for [T; N] {
    fn merge(&mut self, other: Self) {
        for (a, b) in self.iter_mut().zip(other) {
            a.merge(b);
        }
    }
}

impl<T: Merge> Merge for Option<T> {
    fn merge(&mut self, other: Self) {
        match (self.as_mut(), other) {
            (Some(a), Some(b)) => a.merge(b),
            (None, Some(b)) => *self = Some(b),
            (_, None) => {}
        }
    }
}

impl<K: Eq + Hash, V: Merge, S: BuildHasher> Merge for HashMap<K, V, S> {
    fn merge(&mut self, other: Self) {
        for (k, v) in other {
            match self.entry(k) {
                std::collections::hash_map::Entry::Occupied(mut e) => e.get_mut().merge(v),
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(v);
                }
            }
        }
    }
}

impl<K: Ord, V: Merge> Merge for BTreeMap<K, V> {
    fn merge(&mut self, other: Self) {
        for (k, v) in other {
            match self.entry(k) {
                std::collections::btree_map::Entry::Occupied(mut e) => e.get_mut().merge(v),
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(v);
                }
            }
        }
    }
}

impl<T: Eq + Hash, S: BuildHasher> Merge for HashSet<T, S> {
    fn merge(&mut self, other: Self) {
        self.extend(other);
    }
}

macro_rules! impl_merge_tuple {
    ($(($($n:tt $t:ident),+)),*) => {$(
        impl<$($t: Merge),+> Merge for ($($t,)+) {
            fn merge(&mut self, other: Self) {
                $( self.$n.merge(other.$n); )+
            }
        }
    )*};
}
impl_merge_tuple!(
    (0 A),
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D),
    (0 A, 1 B, 2 C, 3 D, 4 E)
);

/// Fold an ordered sequence of partials into one via [`Merge`].
pub fn merge_all<T: Merge>(parts: impl IntoIterator<Item = T>) -> Option<T> {
    let mut parts = parts.into_iter();
    let mut acc = parts.next()?;
    for p in parts {
        acc.merge(p);
    }
    Some(acc)
}

/// The environment knob consulted by [`auto_threads`].
pub const THREADS_ENV: &str = "CELLREL_THREADS";

/// Resolve a thread-count request: `0` means "auto" — the `CELLREL_THREADS`
/// environment variable if set, otherwise the machine's available
/// parallelism. Any explicit request is used as given (min 1).
pub fn resolve_threads(requested: usize) -> usize {
    if requested > 0 {
        return requested;
    }
    auto_threads()
}

/// The default thread count: `CELLREL_THREADS` if set and positive,
/// otherwise `std::thread::available_parallelism()`.
pub fn auto_threads() -> usize {
    if let Ok(v) = std::env::var(THREADS_ENV) {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Split `0..len` into at most `threads` contiguous, near-equal,
/// non-empty shards covering the whole range, in order.
pub fn shard_ranges(len: usize, threads: usize) -> Vec<Range<usize>> {
    let threads = threads.max(1).min(len.max(1));
    if len == 0 {
        // One empty shard, so every worker-based API still runs once.
        return std::iter::once(0..0).collect();
    }
    let base = len / threads;
    let extra = len % threads;
    let mut ranges = Vec::with_capacity(threads);
    let mut start = 0;
    for i in 0..threads {
        let size = base + usize::from(i < extra);
        ranges.push(start..start + size);
        start += size;
    }
    debug_assert_eq!(start, len);
    ranges
}

/// Run `worker` over contiguous shards of `0..len` on up to `threads`
/// scoped threads and return the per-shard results **in shard order**.
///
/// `threads <= 1` (or a single shard) runs inline on the caller's thread —
/// the zero-overhead sequential path. The worker receives its shard's index
/// range; because shard boundaries never influence per-item substreams,
/// the concatenated results are identical for every thread count.
///
/// # Panics
/// Propagates a panic from any worker.
pub fn run_sharded<T, F>(len: usize, threads: usize, worker: F) -> Vec<T>
where
    T: Send,
    F: Fn(Range<usize>) -> T + Sync,
{
    let ranges = shard_ranges(len, threads);
    if ranges.len() <= 1 {
        return ranges.into_iter().map(worker).collect();
    }
    let worker = &worker;
    std::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .into_iter()
            .map(|range| scope.spawn(move || worker(range)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("shard worker panicked"))
            .collect()
    })
}

/// [`run_sharded`] followed by an in-order [`Merge`] fold of the partials.
pub fn run_sharded_merge<T, F>(len: usize, threads: usize, worker: F) -> T
where
    T: Merge + Send,
    F: Fn(Range<usize>) -> T + Sync,
{
    merge_all(run_sharded(len, threads, worker)).expect("at least one shard")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_ranges_cover_contiguously() {
        for len in [0usize, 1, 2, 7, 100, 101] {
            for threads in [1usize, 2, 3, 8, 200] {
                let ranges = shard_ranges(len, threads);
                assert_eq!(ranges[0].start, 0);
                assert_eq!(ranges.last().expect("non-empty").end, len);
                for w in ranges.windows(2) {
                    assert_eq!(w[0].end, w[1].start);
                    assert!(!w[1].is_empty() || len == 0);
                }
                // Near-equal: sizes differ by at most one.
                let sizes: Vec<usize> = ranges.iter().map(|r| r.len()).collect();
                let (lo, hi) = (
                    sizes.iter().min().expect("non-empty"),
                    sizes.iter().max().expect("non-empty"),
                );
                assert!(hi - lo <= 1, "uneven shards {sizes:?}");
            }
        }
    }

    #[test]
    fn run_sharded_preserves_order_at_any_thread_count() {
        let expect: Vec<usize> = (0..1000).collect();
        for threads in [1usize, 2, 3, 8] {
            let parts = run_sharded(1000, threads, |r| r.collect::<Vec<usize>>());
            let flat: Vec<usize> = parts.into_iter().flatten().collect();
            assert_eq!(flat, expect, "threads={threads}");
        }
    }

    #[test]
    fn run_sharded_merge_equals_sequential_fold() {
        let seq: u64 = (0..10_000u64).sum();
        for threads in [1usize, 2, 4, 16] {
            let total = run_sharded_merge(10_000, threads, |r| r.map(|i| i as u64).sum::<u64>());
            assert_eq!(total, seq, "threads={threads}");
        }
    }

    #[test]
    fn merge_primitives_and_containers() {
        let mut a = vec![1, 2];
        a.merge(vec![3]);
        assert_eq!(a, vec![1, 2, 3]);

        let mut counts = [1u64, 0];
        counts.merge([2, 5]);
        assert_eq!(counts, [3, 5]);

        let mut t = (1u64, vec![1u32]);
        t.merge((2, vec![2]));
        assert_eq!(t, (3, vec![1, 2]));

        let mut m: HashMap<&str, u64> = HashMap::from([("a", 1)]);
        m.merge(HashMap::from([("a", 2), ("b", 7)]));
        assert_eq!(m["a"], 3);
        assert_eq!(m["b"], 7);

        let mut s: HashSet<u32> = HashSet::from([1, 2]);
        s.merge(HashSet::from([2, 3]));
        assert_eq!(s.len(), 3);

        let mut o: Option<u64> = None;
        o.merge(Some(4));
        o.merge(Some(5));
        o.merge(None);
        assert_eq!(o, Some(9));

        let mut bt: BTreeMap<u8, Vec<u8>> = BTreeMap::from([(1, vec![1])]);
        Merge::merge(&mut bt, BTreeMap::from([(1, vec![2]), (2, vec![3])]));
        assert_eq!(bt[&1], vec![1, 2]);
    }

    #[test]
    fn merge_all_folds_in_order() {
        assert_eq!(merge_all(Vec::<Vec<u8>>::new()), None);
        let folded = merge_all([vec![1u8], vec![2], vec![3]]).expect("non-empty");
        assert_eq!(folded, vec![1, 2, 3]);
    }

    #[test]
    fn resolve_threads_semantics() {
        assert_eq!(resolve_threads(3), 3);
        assert!(resolve_threads(0) >= 1);
        assert!(auto_threads() >= 1);
    }

    #[test]
    fn empty_range_still_yields_one_shard() {
        let parts = run_sharded(0, 4, |r| r.len());
        assert_eq!(parts, vec![0]);
    }
}
