//! # cellrel-sim
//!
//! The deterministic discrete-event simulation kernel underpinning every
//! experiment in the `cellrel` workspace, plus the random-number and
//! statistics toolkit the other crates share.
//!
//! Design notes (following the workspace guides):
//!
//! * **Event-driven and synchronous.** The workload is CPU-bound simulation,
//!   so the kernel is a plain event loop over a binary heap — no async
//!   runtime, no wall-clock time. Fleet-scale drivers parallelise *across*
//!   devices, not inside the event loop: the [`par`] module shards an index
//!   range over scoped threads and merges per-shard partials with [`Merge`],
//!   while each device's randomness comes from a counter-based substream
//!   ([`SimRng::for_substream`]) so output is bit-identical at any thread
//!   count.
//! * **Deterministic.** All randomness flows from a single seed through
//!   [`SimRng`]; forked sub-streams are derived with SplitMix64 so component
//!   seeds are independent yet reproducible. Two runs with the same seed
//!   produce byte-identical traces.
//! * **Self-contained.** Distribution sampling (exponential, log-normal,
//!   Pareto, Zipf, empirical) and statistics (summaries, ECDFs, histograms,
//!   regression, Zipf fitting) are implemented here rather than pulled in as
//!   dependencies, keeping the dependency surface to `rand` alone.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod dist;
pub mod par;
pub mod queue;
pub mod rng;
pub mod sketch;
pub mod stats;
pub mod telemetry;
pub mod wheel;

pub use campaign::{
    run_campaign, CampaignReport, Digest64, Invariant, InvariantRegistry, ScenarioOutcome,
    Violation,
};
pub use dist::{Empirical, LogNormalDist, ParetoDist, WeightedIndex, ZipfDist};
pub use par::{
    auto_threads, merge_all, resolve_threads, run_sharded, run_sharded_merge, shard_ranges, Merge,
};
pub use queue::{run_scheduled, EventHandler, EventQueue, EventToken, Scheduler};
pub use rng::SimRng;
pub use sketch::{QuantileSketch, SparseSketch};
pub use stats::{bootstrap_mean_ci, fit_zipf, linreg, percentile, Ecdf, Histogram, Summary};
pub use telemetry::{MetricsRegistry, MetricsSnapshot, SpanGuard, Telemetry, TraceSink};
pub use wheel::TimerWheel;
