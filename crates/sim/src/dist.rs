//! Reusable sampling distributions.
//!
//! These are the pre-built distributions the workload generator leans on:
//!
//! * [`ZipfDist`] — rank-frequency skew for base-station failure counts
//!   (Fig. 11 reports a Zipf with a = 0.82).
//! * [`WeightedIndex`] — O(log n) categorical sampling over precomputed
//!   cumulative weights (model mix, ISP mix, environment mix).
//! * [`LogNormalDist`] / [`ParetoDist`] — heavy-tailed failure-count and
//!   duration bodies/tails.
//! * [`Empirical`] — sample from (or interpolate quantiles of) an observed
//!   sample set; used to bootstrap stall-duration curves into TIMP inputs.

use crate::rng::SimRng;

/// Categorical distribution with O(log n) sampling via a cumulative table.
#[derive(Debug, Clone)]
pub struct WeightedIndex {
    cumulative: Vec<f64>,
    total: f64,
}

impl WeightedIndex {
    /// Build from non-negative weights.
    ///
    /// # Panics
    /// Panics if `weights` is empty, contains a negative value, or sums to 0.
    pub fn new(weights: &[f64]) -> Self {
        assert!(
            !weights.is_empty(),
            "WeightedIndex needs at least one weight"
        );
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for &w in weights {
            assert!(w >= 0.0, "negative weight {w}");
            acc += w;
            cumulative.push(acc);
        }
        assert!(acc > 0.0, "weights sum to zero");
        WeightedIndex {
            cumulative,
            total: acc,
        }
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// Always false (construction rejects empty weights); provided for API
    /// completeness.
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }

    /// Sample a category index.
    pub fn sample(&self, rng: &mut SimRng) -> usize {
        let x = rng.f64() * self.total;
        // partition_point: first index whose cumulative weight exceeds x.
        self.cumulative
            .partition_point(|&c| c <= x)
            .min(self.cumulative.len() - 1)
    }

    /// The probability mass of category `i`.
    pub fn probability(&self, i: usize) -> f64 {
        let prev = if i == 0 { 0.0 } else { self.cumulative[i - 1] };
        (self.cumulative[i] - prev) / self.total
    }
}

/// Bounded Zipf distribution over ranks `0..n` with exponent `s`:
/// `P(rank = k) ∝ 1 / (k + 1)^s`.
#[derive(Debug, Clone)]
pub struct ZipfDist {
    weights: WeightedIndex,
    exponent: f64,
}

impl ZipfDist {
    /// Build for `n` ranks with the given exponent.
    pub fn new(n: usize, exponent: f64) -> Self {
        assert!(n > 0);
        let weights: Vec<f64> = (0..n)
            .map(|k| 1.0 / ((k + 1) as f64).powf(exponent))
            .collect();
        ZipfDist {
            weights: WeightedIndex::new(&weights),
            exponent,
        }
    }

    /// The exponent this distribution was built with.
    pub fn exponent(&self) -> f64 {
        self.exponent
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// Always false; provided for API completeness.
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Sample a rank (0 = most popular).
    pub fn sample(&self, rng: &mut SimRng) -> usize {
        self.weights.sample(rng)
    }

    /// Expected relative mass of rank `k`.
    pub fn probability(&self, k: usize) -> f64 {
        self.weights.probability(k)
    }
}

/// Log-normal distribution parameterised directly by the underlying normal's
/// `mu` and `sigma`.
#[derive(Debug, Clone, Copy)]
pub struct LogNormalDist {
    /// Mean of the underlying normal.
    pub mu: f64,
    /// Standard deviation of the underlying normal.
    pub sigma: f64,
}

impl LogNormalDist {
    /// Construct from the underlying normal parameters.
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(sigma >= 0.0);
        LogNormalDist { mu, sigma }
    }

    /// Construct from the *target* median and the sigma of the log.
    /// (`median = exp(mu)`, so this is often the most intuitive form.)
    pub fn from_median(median: f64, sigma: f64) -> Self {
        assert!(median > 0.0);
        Self::new(median.ln(), sigma)
    }

    /// Theoretical mean `exp(mu + sigma²/2)`.
    pub fn mean(&self) -> f64 {
        (self.mu + self.sigma * self.sigma / 2.0).exp()
    }

    /// Sample one value.
    pub fn sample(&self, rng: &mut SimRng) -> f64 {
        rng.lognormal(self.mu, self.sigma)
    }
}

/// Pareto distribution (scale `x_min`, shape `alpha`).
#[derive(Debug, Clone, Copy)]
pub struct ParetoDist {
    /// Scale: the minimum value.
    pub x_min: f64,
    /// Shape: smaller alpha = heavier tail.
    pub alpha: f64,
}

impl ParetoDist {
    /// Construct a Pareto distribution.
    pub fn new(x_min: f64, alpha: f64) -> Self {
        assert!(x_min > 0.0 && alpha > 0.0);
        ParetoDist { x_min, alpha }
    }

    /// Sample one value.
    pub fn sample(&self, rng: &mut SimRng) -> f64 {
        rng.pareto(self.x_min, self.alpha)
    }

    /// Complementary CDF: `P(X > x)`.
    pub fn ccdf(&self, x: f64) -> f64 {
        if x <= self.x_min {
            1.0
        } else {
            (self.x_min / x).powf(self.alpha)
        }
    }
}

/// An empirical distribution built from observed samples. Sampling draws a
/// uniformly random observation; [`Empirical::quantile`] interpolates.
#[derive(Debug, Clone)]
pub struct Empirical {
    sorted: Vec<f64>,
}

impl Empirical {
    /// Build from samples (NaNs are rejected).
    ///
    /// # Panics
    /// Panics if `samples` is empty or contains NaN.
    pub fn new(mut samples: Vec<f64>) -> Self {
        assert!(!samples.is_empty(), "Empirical needs at least one sample");
        assert!(
            samples.iter().all(|x| !x.is_nan()),
            "Empirical rejects NaN samples"
        );
        samples.sort_by(|a, b| a.partial_cmp(b).expect("NaN excluded above"));
        Empirical { sorted: samples }
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Always false; provided for API completeness.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Draw one of the observations uniformly.
    pub fn sample(&self, rng: &mut SimRng) -> f64 {
        self.sorted[rng.index(self.sorted.len())]
    }

    /// Linear-interpolated quantile, `q` in `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        crate::stats::percentile(&self.sorted, q)
    }

    /// Fraction of observations ≤ `x`.
    pub fn cdf(&self, x: f64) -> f64 {
        self.sorted.partition_point(|&v| v <= x) as f64 / self.sorted.len() as f64
    }

    /// Arithmetic mean of the observations.
    pub fn mean(&self) -> f64 {
        self.sorted.iter().sum::<f64>() / self.sorted.len() as f64
    }

    /// Smallest observation.
    pub fn min(&self) -> f64 {
        self.sorted[0]
    }

    /// Largest observation.
    pub fn max(&self) -> f64 {
        *self.sorted.last().expect("non-empty by construction")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weighted_index_probabilities() {
        let w = WeightedIndex::new(&[2.0, 6.0, 2.0]);
        assert!((w.probability(0) - 0.2).abs() < 1e-12);
        assert!((w.probability(1) - 0.6).abs() < 1e-12);
        assert_eq!(w.len(), 3);
    }

    #[test]
    fn weighted_index_sampling_matches_mass() {
        let w = WeightedIndex::new(&[1.0, 3.0]);
        let mut rng = SimRng::new(11);
        let hits = (0..20_000).filter(|_| w.sample(&mut rng) == 1).count();
        let frac = hits as f64 / 20_000.0;
        assert!((frac - 0.75).abs() < 0.02, "frac {frac}");
    }

    #[test]
    #[should_panic(expected = "at least one weight")]
    fn weighted_index_rejects_empty() {
        WeightedIndex::new(&[]);
    }

    #[test]
    #[should_panic(expected = "sum to zero")]
    fn weighted_index_rejects_zero_total() {
        WeightedIndex::new(&[0.0, 0.0]);
    }

    #[test]
    fn zipf_rank_ordering() {
        let z = ZipfDist::new(100, 0.82);
        let mut rng = SimRng::new(12);
        let mut counts = vec![0u32; 100];
        for _ in 0..50_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[10] > counts[90]);
        // The theoretical rank-0:rank-9 ratio is 10^0.82 ≈ 6.6.
        let ratio = counts[0] as f64 / counts[9].max(1) as f64;
        assert!(ratio > 3.0 && ratio < 13.0, "ratio {ratio}");
    }

    #[test]
    fn lognormal_mean_matches_theory() {
        let d = LogNormalDist::new(1.0, 0.5);
        let mut rng = SimRng::new(13);
        let n = 40_000;
        let mean: f64 = (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - d.mean()).abs() / d.mean() < 0.05, "mean {mean}");
    }

    #[test]
    fn lognormal_from_median() {
        let d = LogNormalDist::from_median(10.0, 1.0);
        assert!((d.mu - 10.0f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn pareto_ccdf_and_samples() {
        let d = ParetoDist::new(1.0, 0.82);
        assert!((d.ccdf(1.0) - 1.0).abs() < 1e-12);
        assert!(d.ccdf(10.0) < d.ccdf(2.0));
        let mut rng = SimRng::new(14);
        assert!((0..1000).all(|_| d.sample(&mut rng) >= 1.0));
    }

    #[test]
    fn empirical_quantiles_and_cdf() {
        let e = Empirical::new(vec![3.0, 1.0, 2.0, 4.0, 5.0]);
        assert_eq!(e.min(), 1.0);
        assert_eq!(e.max(), 5.0);
        assert!((e.quantile(0.5) - 3.0).abs() < 1e-12);
        assert!((e.cdf(3.0) - 0.6).abs() < 1e-12);
        assert!((e.mean() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn empirical_sampling_stays_in_support() {
        let e = Empirical::new(vec![1.0, 2.0, 3.0]);
        let mut rng = SimRng::new(15);
        for _ in 0..100 {
            let v = e.sample(&mut rng);
            assert!(v == 1.0 || v == 2.0 || v == 3.0);
        }
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn empirical_rejects_empty() {
        Empirical::new(vec![]);
    }
}
