//! Deterministic observability: sim-time metrics, spans, and Chrome-trace
//! export.
//!
//! Every subsystem in the workspace measures itself — the paper's study *is*
//! a measurement of the telephony stack — yet counters and timings used to
//! be hand-rolled per crate. This module is the single instrumentation API:
//!
//! * [`MetricsRegistry`] — named counters, gauges and sim-time duration
//!   histograms. Histograms are [`QuantileSketch`]es (the log-bucketed
//!   rank histogram the ingest pipeline uses), so per-shard registries
//!   merge exactly: bucket counts add like integers and any merge tree
//!   yields the same bytes.
//! * [`Telemetry`] — a cheap-to-clone handle the instrumented code holds.
//!   The default handle is *disabled* and every operation on it is a single
//!   `Option` branch, so always-on instrumentation in hot paths costs
//!   nothing measurable when metrics are off.
//! * [`SpanGuard`] / [`span!`] — sim-time spans. A discrete-event
//!   simulation has no ambient clock, so spans carry explicit [`SimTime`]s:
//!   begin at one event, end at a later one (stall detected → stall
//!   healed), record the duration under the span's label.
//! * [`TraceSink`] — completed spans and instant events rendered as Chrome
//!   trace-event JSON, loadable in `chrome://tracing` or Perfetto.
//! * [`MetricsSnapshot`] — the mergeable, digestible view of a registry.
//!   [`Merge`] on snapshots is commutative and associative (property-tested
//!   in `tests/parallel_invariance.rs`), so fleet-level metrics folded from
//!   per-shard registries are bit-identical at any thread count.
//!
//! Everything is keyed to sim-time and `&'static str` labels: no wall
//! clock, no allocation per sample, no iteration-order nondeterminism
//! (`BTreeMap` keys, canonically sorted trace events).

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::rc::Rc;

use cellrel_types::{SimDuration, SimTime};

use crate::campaign::Digest64;
use crate::par::Merge;
use crate::sketch::QuantileSketch;

/// The phase of a Chrome trace event: a completed span or an instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TracePhase {
    /// A completed span (`"ph": "X"`), with a duration.
    Complete,
    /// An instant event (`"ph": "i"`).
    Instant,
}

/// One trace event, in Chrome trace-event terms. Timestamps and durations
/// are sim-time microseconds (the trace viewer's native unit).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TraceEvent {
    /// Event timestamp in sim-time microseconds.
    pub ts_us: u64,
    /// Track id — by convention the device id, 0 for global events.
    pub tid: u64,
    /// Label, e.g. `"stall.recover"`.
    pub name: &'static str,
    /// Span length in microseconds (0 for instants).
    pub dur_us: u64,
    /// Complete span or instant.
    pub ph: TracePhase,
}

/// Collects completed spans/events and renders them as Chrome trace-event
/// JSON. Events are kept in arrival order and sorted canonically (by
/// timestamp, then track, then label) at render time, so the emitted file
/// does not depend on shard layout.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceSink {
    events: Vec<TraceEvent>,
}

/// Canonical event order: the derived `Ord` on [`TraceEvent`] leads with
/// `ts_us`, making sorted output monotone in time (the validity test's
/// invariant) and merge order irrelevant.
fn canonicalize(events: &mut [TraceEvent]) {
    events.sort_unstable();
}

fn escape_json_str(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

impl TraceSink {
    /// An empty sink.
    pub fn new() -> Self {
        TraceSink::default()
    }

    /// Record a completed span.
    pub fn record_complete(&mut self, name: &'static str, start: SimTime, end: SimTime, tid: u64) {
        self.events.push(TraceEvent {
            ts_us: start.as_millis() * 1000,
            tid,
            name,
            dur_us: end.since(start).as_millis() * 1000,
            ph: TracePhase::Complete,
        });
    }

    /// Record an instant event.
    pub fn record_instant(&mut self, name: &'static str, at: SimTime, tid: u64) {
        self.events.push(TraceEvent {
            ts_us: at.as_millis() * 1000,
            tid,
            name,
            dur_us: 0,
            ph: TracePhase::Instant,
        });
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The recorded events.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Render the sink as Chrome trace-event JSON (the object form with a
    /// `traceEvents` array, as `chrome://tracing` and Perfetto load it).
    /// Events are emitted in canonical order; all spans are `"X"` complete
    /// events, instants are `"i"` with `"s": "t"` (thread scope).
    pub fn to_chrome_json(&self) -> String {
        let mut events = self.events.clone();
        canonicalize(&mut events);
        let mut out = String::with_capacity(64 + events.len() * 96);
        out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        for (i, e) in events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":\"");
            escape_json_str(&mut out, e.name);
            let _ = match e.ph {
                TracePhase::Complete => write!(
                    out,
                    "\",\"ph\":\"X\",\"cat\":\"sim\",\"pid\":1,\"tid\":{},\"ts\":{},\"dur\":{}}}",
                    e.tid, e.ts_us, e.dur_us
                ),
                TracePhase::Instant => write!(
                    out,
                    "\",\"ph\":\"i\",\"cat\":\"sim\",\"s\":\"t\",\"pid\":1,\"tid\":{},\"ts\":{},\"dur\":0}}",
                    e.tid, e.ts_us
                ),
            };
        }
        out.push_str("]}");
        out
    }
}

impl Merge for TraceSink {
    fn merge(&mut self, other: Self) {
        self.events.extend(other.events);
    }
}

/// Named counters, gauges and sim-time duration histograms.
///
/// Plain owned data — `Send`, mergeable — so parallel drivers build one
/// registry per shard and fold them. Instrumented code normally holds a
/// [`Telemetry`] handle rather than the registry itself.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, i64>,
    histograms: BTreeMap<&'static str, QuantileSketch>,
    trace: Option<TraceSink>,
}

impl MetricsRegistry {
    /// An empty registry without a trace sink.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Attach an (empty) trace sink; spans recorded after this also become
    /// Chrome trace events.
    pub fn enable_trace(&mut self) {
        self.trace.get_or_insert_with(TraceSink::new);
    }

    /// Increment a counter by `n`.
    pub fn add(&mut self, name: &'static str, n: u64) {
        *self.counters.entry(name).or_insert(0) += n;
    }

    /// Increment a counter by one.
    pub fn inc(&mut self, name: &'static str) {
        self.add(name, 1);
    }

    /// Add a (possibly negative) delta to a gauge. Gauges are shard-additive
    /// so they merge like counters; use them for net quantities (current
    /// open connections), not for high-water marks.
    pub fn gauge_add(&mut self, name: &'static str, delta: i64) {
        *self.gauges.entry(name).or_insert(0) += delta;
    }

    /// Record one value into a histogram (the workspace convention is
    /// integer milliseconds for durations).
    pub fn observe(&mut self, name: &'static str, value: u64) {
        self.histograms.entry(name).or_default().push(value);
    }

    /// Record a sim-time duration into a histogram, in milliseconds.
    pub fn observe_duration(&mut self, name: &'static str, d: SimDuration) {
        self.observe(name, d.as_millis());
    }

    /// Fold a whole pre-built sketch into a histogram — the bridge for
    /// subsystems (like the ingest aggregate) that already summarise their
    /// streams with [`QuantileSketch`]es.
    pub fn merge_histogram(&mut self, name: &'static str, sketch: QuantileSketch) {
        match self.histograms.get_mut(name) {
            Some(h) => h.merge(sketch),
            None => {
                self.histograms.insert(name, sketch);
            }
        }
    }

    /// The trace sink, if tracing is enabled.
    pub fn trace(&self) -> Option<&TraceSink> {
        self.trace.as_ref()
    }

    /// Mutable trace sink access, if tracing is enabled.
    pub fn trace_mut(&mut self) -> Option<&mut TraceSink> {
        self.trace.as_mut()
    }

    /// Copy the registry into its mergeable, digestible snapshot form.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut trace = self
            .trace
            .as_ref()
            .map(|t| t.events.clone())
            .unwrap_or_default();
        canonicalize(&mut trace);
        MetricsSnapshot {
            counters: self.counters.clone(),
            gauges: self.gauges.clone(),
            histograms: self.histograms.clone(),
            trace,
        }
    }
}

impl Merge for MetricsRegistry {
    /// Fold another registry in: counters and gauges add, histograms merge
    /// bucket-wise, trace events append in merge order (shard order in the
    /// parallel drivers, which equals single-thread emission order).
    fn merge(&mut self, other: Self) {
        for (k, v) in other.counters {
            *self.counters.entry(k).or_insert(0) += v;
        }
        for (k, v) in other.gauges {
            *self.gauges.entry(k).or_insert(0) += v;
        }
        for (k, v) in other.histograms {
            match self.histograms.get_mut(k) {
                Some(h) => h.merge(v),
                None => {
                    self.histograms.insert(k, v);
                }
            }
        }
        match (&mut self.trace, other.trace) {
            (Some(a), Some(b)) => a.merge(b),
            (t @ None, Some(b)) => *t = Some(b),
            _ => {}
        }
    }
}

/// The frozen, order-canonical view of a [`MetricsRegistry`]: what golden
/// snapshots assert against, what shards exchange, what the fleet digest
/// covers. [`Merge`] here is commutative *and* associative — trace events
/// are re-sorted canonically after every merge — so any merge tree over any
/// shard layout produces identical bytes.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, i64>,
    histograms: BTreeMap<&'static str, QuantileSketch>,
    trace: Vec<TraceEvent>,
}

impl MetricsSnapshot {
    /// Counter `(name, value)` pairs in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(&k, &v)| (k, v))
    }

    /// Gauge `(name, value)` pairs in name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&'static str, i64)> + '_ {
        self.gauges.iter().map(|(&k, &v)| (k, v))
    }

    /// Histogram `(name, sketch)` pairs in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&'static str, &QuantileSketch)> + '_ {
        self.histograms.iter().map(|(&k, v)| (k, v))
    }

    /// One counter's value (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// One histogram, when present.
    pub fn histogram(&self, name: &str) -> Option<&QuantileSketch> {
        self.histograms.get(name)
    }

    /// Canonically ordered trace events.
    pub fn trace(&self) -> &[TraceEvent] {
        &self.trace
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
            && self.trace.is_empty()
    }

    /// Content digest over every name, value, histogram bucket and trace
    /// event — the fleet-level determinism witness (bit-identical at 1, 2
    /// and 8 threads; test-asserted).
    pub fn digest(&self) -> u64 {
        let mut d = Digest64::new();
        d.write_u64(self.counters.len() as u64);
        for (k, v) in &self.counters {
            d.write_str(k);
            d.write_u64(*v);
        }
        d.write_u64(self.gauges.len() as u64);
        for (k, v) in &self.gauges {
            d.write_str(k);
            d.write_u64(*v as u64);
        }
        d.write_u64(self.histograms.len() as u64);
        for (k, h) in &self.histograms {
            d.write_str(k);
            h.absorb_into(&mut d);
        }
        d.write_u64(self.trace.len() as u64);
        for e in &self.trace {
            d.write_u64(e.ts_us);
            d.write_u64(e.tid);
            d.write_str(e.name);
            d.write_u64(e.dur_us);
            d.write_u64(matches!(e.ph, TracePhase::Complete) as u64);
        }
        d.finish()
    }

    /// Rebuild a [`TraceSink`] from the snapshot's events (for JSON export
    /// after a merged run).
    pub fn trace_sink(&self) -> TraceSink {
        TraceSink {
            events: self.trace.clone(),
        }
    }
}

impl Merge for MetricsSnapshot {
    fn merge(&mut self, other: Self) {
        for (k, v) in other.counters {
            *self.counters.entry(k).or_insert(0) += v;
        }
        for (k, v) in other.gauges {
            *self.gauges.entry(k).or_insert(0) += v;
        }
        for (k, v) in other.histograms {
            match self.histograms.get_mut(k) {
                Some(h) => h.merge(v),
                None => {
                    self.histograms.insert(k, v);
                }
            }
        }
        self.trace.extend(other.trace);
        canonicalize(&mut self.trace);
    }
}

/// The handle instrumented code holds: a shared, cheap-to-clone reference
/// to one registry, or nothing at all.
///
/// The disabled handle (the [`Default`]) makes every operation a single
/// branch on a `None`, so subsystems can be instrumented unconditionally —
/// the `par_macro_study` bench gates the claim that this costs nothing
/// measurable. Handles are `Rc`-based and deliberately **not** `Send`:
/// parallel drivers give each shard its own enabled handle and fold the
/// [`MetricsSnapshot`]s.
#[derive(Debug, Clone, Default)]
pub struct Telemetry(Option<Rc<RefCell<MetricsRegistry>>>);

impl Telemetry {
    /// The no-op handle.
    pub fn disabled() -> Self {
        Telemetry(None)
    }

    /// A handle to a fresh metrics-only registry.
    pub fn enabled() -> Self {
        Telemetry(Some(Rc::new(RefCell::new(MetricsRegistry::new()))))
    }

    /// A handle to a fresh registry with span → Chrome-trace recording on.
    pub fn with_trace() -> Self {
        let mut reg = MetricsRegistry::new();
        reg.enable_trace();
        Telemetry(Some(Rc::new(RefCell::new(reg))))
    }

    /// Build a handle from flags: `metrics` turns the registry on, `trace`
    /// additionally records spans as trace events (implies `metrics`).
    pub fn from_flags(metrics: bool, trace: bool) -> Self {
        match (metrics || trace, trace) {
            (false, _) => Telemetry::disabled(),
            (true, false) => Telemetry::enabled(),
            (true, true) => Telemetry::with_trace(),
        }
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Run `f` against the registry; no-op (returns `None`) when disabled.
    pub fn with<R>(&self, f: impl FnOnce(&mut MetricsRegistry) -> R) -> Option<R> {
        self.0.as_ref().map(|r| f(&mut r.borrow_mut()))
    }

    /// Increment a counter by one.
    #[inline]
    pub fn inc(&self, name: &'static str) {
        if let Some(r) = &self.0 {
            r.borrow_mut().inc(name);
        }
    }

    /// Increment a counter by `n`.
    #[inline]
    pub fn add(&self, name: &'static str, n: u64) {
        if let Some(r) = &self.0 {
            r.borrow_mut().add(name, n);
        }
    }

    /// Add a delta to a shard-additive gauge.
    #[inline]
    pub fn gauge_add(&self, name: &'static str, delta: i64) {
        if let Some(r) = &self.0 {
            r.borrow_mut().gauge_add(name, delta);
        }
    }

    /// Record one value into a histogram.
    #[inline]
    pub fn observe(&self, name: &'static str, value: u64) {
        if let Some(r) = &self.0 {
            r.borrow_mut().observe(name, value);
        }
    }

    /// Record a sim-time duration into a histogram (milliseconds).
    #[inline]
    pub fn observe_duration(&self, name: &'static str, d: SimDuration) {
        if let Some(r) = &self.0 {
            r.borrow_mut().observe_duration(name, d);
        }
    }

    /// Fold a pre-built sketch into a histogram.
    pub fn merge_histogram(&self, name: &'static str, sketch: QuantileSketch) {
        if let Some(r) = &self.0 {
            r.borrow_mut().merge_histogram(name, sketch);
        }
    }

    /// Record an instant trace event (no-op unless tracing is enabled).
    #[inline]
    pub fn instant(&self, name: &'static str, at: SimTime, tid: u64) {
        if let Some(r) = &self.0 {
            if let Some(t) = r.borrow_mut().trace_mut() {
                t.record_instant(name, at, tid);
            }
        }
    }

    /// Open a sim-time span starting at `start` on track `tid`. Close it
    /// with [`SpanGuard::end`]; an unclosed guard records nothing.
    #[must_use = "a span records nothing until `end` is called"]
    pub fn span(&self, name: &'static str, start: SimTime, tid: u64) -> SpanGuard {
        SpanGuard {
            tele: self.clone(),
            name,
            start,
            tid,
        }
    }

    /// Snapshot the registry (empty snapshot when disabled).
    pub fn snapshot(&self) -> MetricsSnapshot {
        match &self.0 {
            Some(r) => r.borrow().snapshot(),
            None => MetricsSnapshot::default(),
        }
    }
}

/// An open sim-time span: label + start instant + track. Produced by
/// [`Telemetry::span`] or the [`span!`] macro; closing it records the
/// duration under the label's histogram and, when tracing is on, a Chrome
/// `"X"` event.
#[derive(Debug, Clone)]
pub struct SpanGuard {
    tele: Telemetry,
    name: &'static str,
    start: SimTime,
    tid: u64,
}

impl SpanGuard {
    /// The span's label.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The span's start instant.
    pub fn start(&self) -> SimTime {
        self.start
    }

    /// Close the span at `end`, recording its duration.
    pub fn end(self, end: SimTime) {
        if let Some(r) = &self.tele.0 {
            let mut reg = r.borrow_mut();
            reg.observe_duration(self.name, end.since(self.start));
            if let Some(t) = reg.trace_mut() {
                t.record_complete(self.name, self.start, end, self.tid);
            }
        }
    }
}

/// Open a sim-time span on a [`Telemetry`] handle:
/// `span!(tele, "dc.setup", now)` (track 0) or
/// `span!(tele, "dc.setup", now, device_id)`.
#[macro_export]
macro_rules! span {
    ($tele:expr, $name:expr, $start:expr) => {
        $tele.span($name, $start, 0)
    };
    ($tele:expr, $name:expr, $start:expr, $tid:expr) => {
        $tele.span($name, $start, $tid)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_a_no_op() {
        let tele = Telemetry::disabled();
        tele.inc("a");
        tele.observe("b", 5);
        tele.gauge_add("c", -1);
        let sp = span!(tele, "d", SimTime::from_secs(1));
        sp.end(SimTime::from_secs(2));
        assert!(!tele.is_enabled());
        assert!(tele.snapshot().is_empty());
    }

    #[test]
    fn counters_gauges_histograms_round_trip() {
        let tele = Telemetry::enabled();
        tele.inc("setup.ok");
        tele.add("setup.ok", 2);
        tele.gauge_add("open", 3);
        tele.gauge_add("open", -1);
        for ms in [10u64, 20, 30] {
            tele.observe("lat", ms);
        }
        let s = tele.snapshot();
        assert_eq!(s.counter("setup.ok"), 3);
        assert_eq!(s.gauges().collect::<Vec<_>>(), vec![("open", 2)]);
        let h = s.histogram("lat").unwrap();
        assert_eq!(h.count(), 3);
        assert_eq!(h.quantile(0.5), Some(20));
    }

    #[test]
    fn spans_record_durations_and_trace_events() {
        let tele = Telemetry::with_trace();
        let sp = span!(tele, "stall.recover", SimTime::from_secs(10), 7);
        sp.end(SimTime::from_secs(25));
        tele.instant("stall.suspected", SimTime::from_secs(10), 7);
        let s = tele.snapshot();
        let h = s.histogram("stall.recover").unwrap();
        assert_eq!(h.count(), 1);
        assert_eq!(h.quantile(1.0), Some(15_000));
        assert_eq!(s.trace().len(), 2);
        // Canonical order leads with ts, so the instant and span (same ts)
        // sort deterministically; both sit at ts = 10 s.
        assert!(s.trace().iter().all(|e| e.ts_us == 10_000_000));
    }

    #[test]
    fn clones_share_one_registry() {
        let tele = Telemetry::enabled();
        let other = tele.clone();
        tele.inc("x");
        other.inc("x");
        assert_eq!(tele.snapshot().counter("x"), 2);
    }

    #[test]
    fn snapshot_merge_adds_and_digest_is_stable() {
        let a = Telemetry::enabled();
        a.inc("n");
        a.observe("h", 100);
        let b = Telemetry::enabled();
        b.add("n", 4);
        b.observe("h", 200);
        let mut ab = a.snapshot();
        ab.merge(b.snapshot());
        let mut ba = b.snapshot();
        ba.merge(a.snapshot());
        assert_eq!(ab, ba);
        assert_eq!(ab.digest(), ba.digest());
        assert_eq!(ab.counter("n"), 5);
        assert_eq!(ab.histogram("h").unwrap().count(), 2);
    }

    #[test]
    fn chrome_json_shape_is_sane() {
        let tele = Telemetry::with_trace();
        span!(tele, "a\"quoted\"", SimTime::from_millis(2), 1).end(SimTime::from_millis(5));
        tele.instant("tick", SimTime::from_millis(1), 1);
        let json = tele.snapshot().trace_sink().to_chrome_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("a\\\"quoted\\\""));
        // Canonical order: the instant at 1 ms precedes the span at 2 ms.
        assert!(json.find("tick").unwrap() < json.find("quoted").unwrap());
    }

    #[test]
    fn registry_merge_matches_single_registry() {
        let whole = Telemetry::enabled();
        let pa = Telemetry::enabled();
        let pb = Telemetry::enabled();
        for i in 0..100u64 {
            whole.observe("d", i * 37 % 501);
            let part = if i < 40 { &pa } else { &pb };
            part.observe("d", i * 37 % 501);
            whole.inc("n");
            part.inc("n");
        }
        let merged = pa
            .with(|r| {
                let mut r = r.clone();
                pb.with(|o| r.merge(o.clone()));
                r
            })
            .unwrap();
        assert_eq!(merged.snapshot(), whole.snapshot());
        assert_eq!(merged.snapshot().digest(), whole.snapshot().digest());
    }
}
