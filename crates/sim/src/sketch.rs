//! Mergeable streaming quantile sketches for failure durations.
//!
//! The analysis layer draws per-kind duration CDFs (Figs. 4, 6–7, 10) and
//! headline percentiles. Materialising every duration sample defeats the
//! constant-memory goal, so the backend summarises each duration stream
//! with a [`QuantileSketch`] instead.
//!
//! **Why not KLL/GK/CKMS?** Those sketches give tight worst-case rank
//! bounds, but their compaction state depends on the order items and merges
//! happen — two shard layouts of the same stream can produce different
//! internal states and (slightly) different quantile answers. The ingest
//! pipeline's headline guarantee is a *bit-identical aggregate digest at
//! any worker count*, so we use a sketch whose merge is exactly
//! commutative and associative: a logarithmically-bucketed rank histogram
//! (HDR-histogram style). Bucket counts add like integers, so any shard
//! order, any merge tree, and any thread count produce the same bytes.
//!
//! Resolution: values below [`LINEAR_MAX`] get exact unit buckets; above,
//! each power-of-two octave is split into [`SUBBUCKETS`] equal slots, so
//! the relative value error of any reported quantile is at most
//! `1/SUBBUCKETS` ≈ 0.78 %. On the continuous duration distributions the
//! fleet produces, that value resolution translates into well under 1 %
//! rank error for the headline percentiles (asserted against exact
//! materialised values in the analysis tests).
//!
//! Two representations share the bucket geometry:
//!
//! * [`QuantileSketch`] — dense `BUCKETS` u64 slots (~58 KiB), O(1) push;
//!   the right shape for a handful of long-lived fleet aggregates.
//! * [`SparseSketch`] — a sorted `(bucket, count)` vector, memory
//!   proportional to the *distinct buckets touched*; the right shape for
//!   the analytics cube in `cellrel-store`, which keeps one sketch per
//!   cell across hundreds of thousands of cells. Both answer every
//!   quantile query identically (same rank walk over the same buckets).

use crate::campaign::Digest64;
use crate::par::Merge;

/// Sub-buckets per power-of-two octave (the relative-error knob).
pub const SUBBUCKETS: u64 = 128;
const SUB_SHIFT: u32 = 7; // log2(SUBBUCKETS)
/// Values `< LINEAR_MAX` get an exact bucket each.
pub const LINEAR_MAX: u64 = SUBBUCKETS;
/// Number of octaves above the linear region for the full `u64` range.
const OCTAVES: usize = 64 - SUB_SHIFT as usize;
/// Total bucket count.
pub const BUCKETS: usize = LINEAR_MAX as usize + OCTAVES * SUBBUCKETS as usize;

/// A mergeable, deterministic streaming quantile sketch over `u64` values
/// (the workspace uses integer milliseconds).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuantileSketch {
    count: u64,
    min: u64,
    max: u64,
    buckets: Box<[u64; BUCKETS]>,
}

impl Default for QuantileSketch {
    fn default() -> Self {
        Self::new()
    }
}

/// Bucket index for a value.
#[inline]
fn bucket_of(v: u64) -> usize {
    if v < LINEAR_MAX {
        return v as usize;
    }
    // Octave = floor(log2 v) − SUB_SHIFT ≥ 0; slot = the top SUB_SHIFT bits
    // below the leading one.
    let octave = (63 - v.leading_zeros()) - SUB_SHIFT;
    let slot = (v >> octave) - SUBBUCKETS;
    LINEAR_MAX as usize + (octave as usize) * SUBBUCKETS as usize + slot as usize
}

/// The lower edge of a bucket (inverse of [`bucket_of`] up to resolution).
#[inline]
fn bucket_low(i: usize) -> u64 {
    if i < LINEAR_MAX as usize {
        return i as u64;
    }
    let rel = i - LINEAR_MAX as usize;
    let octave = (rel / SUBBUCKETS as usize) as u32;
    let slot = (rel % SUBBUCKETS as usize) as u64;
    (SUBBUCKETS + slot) << octave
}

/// Exclusive upper edge of a bucket.
#[inline]
fn bucket_high(i: usize) -> u64 {
    if i < LINEAR_MAX as usize {
        return i as u64 + 1;
    }
    let rel = i - LINEAR_MAX as usize;
    let octave = (rel / SUBBUCKETS as usize) as u32;
    bucket_low(i).saturating_add(1u64 << octave)
}

/// The shared rank walk: the value at quantile `q` given the sketch's
/// summary stats and its non-empty buckets in ascending index order. Both
/// sketch representations call this, so their answers are identical by
/// construction.
///
/// `q <= 0` and `q >= 1` return the *exact* recorded min/max: the interior
/// path returns a bucket representative, and when several values share the
/// top (or bottom) bucket the representative can differ from the true
/// extreme even after clamping into `[min, max]`.
fn quantile_over(
    count: u64,
    min: u64,
    max: u64,
    q: f64,
    pairs: impl Iterator<Item = (usize, u64)>,
) -> Option<u64> {
    if count == 0 {
        return None;
    }
    if q <= 0.0 {
        return Some(min);
    }
    if q >= 1.0 {
        return Some(max);
    }
    // Target rank in 1..=count ("the ⌈qn⌉-th smallest").
    let target = ((q * count as f64).ceil() as u64).clamp(1, count);
    let mut cum = 0u64;
    for (i, c) in pairs {
        cum += c;
        if cum >= target {
            let v = if i < LINEAR_MAX as usize {
                i as u64
            } else {
                let (lo, hi) = (bucket_low(i), bucket_high(i));
                lo + (hi - lo) / 2
            };
            return Some(v.clamp(min, max));
        }
    }
    Some(max) // unreachable in practice: counts sum to `count`
}

impl QuantileSketch {
    /// An empty sketch.
    pub fn new() -> Self {
        QuantileSketch {
            count: 0,
            min: u64::MAX,
            max: 0,
            buckets: Box::new([0; BUCKETS]),
        }
    }

    /// Absorb one value.
    pub fn push(&mut self, v: u64) {
        self.count += 1;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.buckets[bucket_of(v)] += 1;
    }

    /// Samples absorbed.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest absorbed value (`None` when empty).
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest absorbed value (`None` when empty).
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// The value at quantile `q ∈ [0, 1]` (`None` when empty).
    ///
    /// `q <= 0` and `q >= 1` return the exact recorded min/max. Interior
    /// quantiles return a representative of the bucket containing the
    /// target rank: exact for values below [`LINEAR_MAX`], the bucket
    /// midpoint above — so the reported value is within `1/SUBBUCKETS` of a
    /// true order statistic at that rank. Clamped into `[min, max]`.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        quantile_over(
            self.count,
            self.min,
            self.max,
            q,
            self.buckets
                .iter()
                .enumerate()
                .filter(|(_, &c)| c != 0)
                .map(|(i, &c)| (i, c)),
        )
    }

    /// Exact number of absorbed values `< v`'s bucket lower edge — the rank
    /// machinery quality tests use.
    pub fn rank_below_bucket_of(&self, v: u64) -> u64 {
        self.buckets[..bucket_of(v)].iter().sum()
    }

    /// Fold the sketch into a content digest: count, min, max, then every
    /// non-empty bucket as an (index, count) pair.
    pub fn absorb_into(&self, d: &mut Digest64) {
        d.write_u64(self.count);
        d.write_u64(if self.count > 0 { self.min } else { 0 });
        d.write_u64(self.max);
        for (i, &c) in self.buckets.iter().enumerate() {
            if c != 0 {
                d.write_u64(i as u64);
                d.write_u64(c);
            }
        }
    }

    /// Non-empty `(bucket index, count)` pairs in index order — the sparse
    /// form checkpoints serialize.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c != 0)
            .map(|(i, &c)| (i, c))
    }

    /// Rebuild from the sparse form (inverse of [`Self::nonzero_buckets`],
    /// with min/max carried separately). Returns `None` if an index is out
    /// of range or the counts overflow.
    pub fn from_parts(
        min: u64,
        max: u64,
        pairs: impl IntoIterator<Item = (usize, u64)>,
    ) -> Option<Self> {
        let mut s = QuantileSketch::new();
        for (i, c) in pairs {
            if i >= BUCKETS {
                return None;
            }
            s.buckets[i] = s.buckets[i].checked_add(c)?;
            s.count = s.count.checked_add(c)?;
        }
        if s.count > 0 {
            s.min = min;
            s.max = max;
        }
        Some(s)
    }
}

impl Merge for QuantileSketch {
    fn merge(&mut self, other: Self) {
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
    }
}

/// The sparse counterpart of [`QuantileSketch`]: identical bucket geometry
/// and identical quantile answers, but storing only the buckets actually
/// touched, as a sorted `(bucket, count)` vector.
///
/// A fleet duration stream touches a few hundred of the 7 424 buckets; a
/// single analytics-cube *cell* typically touches one to three. At ~12
/// bytes per touched bucket a sparse sketch costs tens of bytes where the
/// dense form costs 58 KiB — the difference between a cube that fits in
/// memory and one that does not. Push is `O(log nnz)` (binary search +
/// insert), merge is a linear two-pointer walk, and — like the dense form —
/// merge is exact bucket addition: commutative, associative, bit-identical
/// at any shard order. [`SparseSketch::absorb_into`] emits the same digest
/// stream as the dense form over the same data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SparseSketch {
    count: u64,
    min: u64,
    max: u64,
    /// Non-empty buckets, strictly ascending by index.
    buckets: Vec<(u32, u64)>,
}

impl Default for SparseSketch {
    fn default() -> Self {
        Self::new()
    }
}

impl SparseSketch {
    /// An empty sketch.
    pub fn new() -> Self {
        SparseSketch {
            count: 0,
            min: u64::MAX,
            max: 0,
            buckets: Vec::new(),
        }
    }

    /// Absorb one value.
    pub fn push(&mut self, v: u64) {
        self.count += 1;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        let b = bucket_of(v) as u32;
        match self.buckets.binary_search_by_key(&b, |&(i, _)| i) {
            Ok(p) => self.buckets[p].1 += 1,
            Err(p) => self.buckets.insert(p, (b, 1)),
        }
    }

    /// Samples absorbed.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest absorbed value (`None` when empty).
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest absorbed value (`None` when empty).
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Number of distinct buckets touched (the memory footprint knob).
    pub fn nnz(&self) -> usize {
        self.buckets.len()
    }

    /// The value at quantile `q ∈ [0, 1]` (`None` when empty) — same
    /// contract and same answer as [`QuantileSketch::quantile`] over the
    /// same data, including exact min/max at the endpoints.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        quantile_over(
            self.count,
            self.min,
            self.max,
            q,
            self.buckets.iter().map(|&(i, c)| (i as usize, c)),
        )
    }

    /// Non-empty `(bucket index, count)` pairs in index order.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.buckets.iter().map(|&(i, c)| (i as usize, c))
    }

    /// Fold into a content digest — byte-compatible with
    /// [`QuantileSketch::absorb_into`] over the same data.
    pub fn absorb_into(&self, d: &mut Digest64) {
        d.write_u64(self.count);
        d.write_u64(if self.count > 0 { self.min } else { 0 });
        d.write_u64(self.max);
        for &(i, c) in &self.buckets {
            d.write_u64(u64::from(i));
            d.write_u64(c);
        }
    }

    /// Expand into the dense representation.
    pub fn to_dense(&self) -> QuantileSketch {
        QuantileSketch::from_parts(
            self.min().unwrap_or(0),
            self.max().unwrap_or(0),
            self.nonzero_buckets(),
        )
        .expect("sparse buckets are in range by construction")
    }

    /// Rebuild from `(index, count)` pairs in strictly ascending index
    /// order (min/max carried separately). Returns `None` on out-of-range
    /// or non-ascending indices, zero counts, or count overflow — restore
    /// paths must stay total.
    pub fn from_parts(
        min: u64,
        max: u64,
        pairs: impl IntoIterator<Item = (usize, u64)>,
    ) -> Option<Self> {
        let mut s = SparseSketch::new();
        let mut prev: Option<usize> = None;
        for (i, c) in pairs {
            if i >= BUCKETS || c == 0 || prev.is_some_and(|p| i <= p) {
                return None;
            }
            prev = Some(i);
            s.count = s.count.checked_add(c)?;
            s.buckets.push((i as u32, c));
        }
        if s.count > 0 {
            s.min = min;
            s.max = max;
        }
        Some(s)
    }
}

impl SparseSketch {
    /// [`Merge::merge`] without consuming the other sketch — the hot path
    /// for query-time group accumulation, where cloning every scanned
    /// cell's bucket vector just to consume it would dominate the scan.
    pub fn merge_ref(&mut self, other: &SparseSketch) {
        self.merge_run(other.count, other.min, other.max, &other.buckets);
    }

    /// Merge a raw sketch run — `(count, min, max)` header plus strictly
    /// ascending `(bucket, count)` pairs — without materializing the other
    /// side as a `SparseSketch`. Sealed columnar segments pool their sketch
    /// buckets in one contiguous arena; query-time accumulation merges pool
    /// slices directly through this entry point. The run must be valid
    /// sketch content (as produced by a sketch's own bucket vector).
    pub fn merge_run(&mut self, count: u64, min: u64, max: u64, run: &[(u32, u64)]) {
        if count == 0 {
            return;
        }
        self.count += count;
        if self.buckets.is_empty() {
            self.min = min;
            self.max = max;
            self.buckets = run.to_vec();
            return;
        }
        self.min = self.min.min(min);
        self.max = self.max.max(max);
        // Folding a small sketch into a large accumulator is the query hot
        // path: patch the accumulator in place instead of rebuilding its
        // whole bucket vector per merge.
        if run.len() * 8 <= self.buckets.len() {
            for &(i, c) in run {
                match self.buckets.binary_search_by_key(&i, |&(j, _)| j) {
                    Ok(p) => self.buckets[p].1 += c,
                    Err(p) => self.buckets.insert(p, (i, c)),
                }
            }
            return;
        }
        let mut merged = Vec::with_capacity(self.buckets.len() + run.len());
        let (mut a, mut b) = (self.buckets.iter().peekable(), run.iter());
        let mut next_b = b.next();
        while let Some(&&(ai, ac)) = a.peek() {
            match next_b {
                Some(&(bi, bc)) if bi < ai => {
                    merged.push((bi, bc));
                    next_b = b.next();
                }
                Some(&(bi, bc)) if bi == ai => {
                    merged.push((ai, ac + bc));
                    next_b = b.next();
                    a.next();
                }
                _ => {
                    merged.push((ai, ac));
                    a.next();
                }
            }
        }
        if let Some(&p) = next_b {
            merged.push(p);
        }
        merged.extend(b.copied());
        self.buckets = merged;
    }
}

impl Merge for SparseSketch {
    fn merge(&mut self, other: Self) {
        self.merge_ref(&other);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges_are_consistent() {
        for v in [0u64, 1, 127, 128, 129, 255, 256, 1000, 60_000, u64::MAX] {
            let i = bucket_of(v);
            assert!(i < BUCKETS, "index {i} for {v}");
            assert!(bucket_low(i) <= v, "low edge of {i} above {v}");
            assert!(
                v < bucket_high(i) || bucket_high(i) == u64::MAX,
                "{v} outside bucket {i}"
            );
        }
        // Linear region is exact.
        for v in 0..LINEAR_MAX {
            assert_eq!(bucket_low(bucket_of(v)), v);
        }
    }

    #[test]
    fn relative_error_is_bounded() {
        for v in [200u64, 5_000, 123_456, 90_000_000, 1 << 40] {
            let i = bucket_of(v);
            let mid = bucket_low(i) + (bucket_high(i) - bucket_low(i)) / 2;
            let err = (mid as f64 - v as f64).abs() / v as f64;
            assert!(err <= 1.0 / SUBBUCKETS as f64, "err {err} at {v}");
        }
    }

    #[test]
    fn quantiles_of_a_uniform_ramp() {
        let mut s = QuantileSketch::new();
        for v in 1..=100_000u64 {
            s.push(v);
        }
        for (q, expect) in [(0.5, 50_000.0), (0.9, 90_000.0), (0.99, 99_000.0)] {
            let got = s.quantile(q).unwrap() as f64;
            assert!(
                (got - expect).abs() / expect < 0.01,
                "q={q}: got {got}, expect {expect}"
            );
        }
        assert_eq!(s.quantile(0.0), Some(1));
        assert_eq!(s.quantile(1.0), Some(s.max().unwrap()));
    }

    #[test]
    fn small_values_are_exact() {
        let mut s = QuantileSketch::new();
        for v in [3u64, 3, 3, 7, 9] {
            s.push(v);
        }
        assert_eq!(s.quantile(0.5), Some(3));
        assert_eq!(s.quantile(0.8), Some(7));
        assert_eq!(s.quantile(1.0), Some(9));
    }

    #[test]
    fn quantile_endpoints_are_exact_within_a_shared_bucket() {
        // Regression: 1000 and 1003 share one log bucket (lo 1000, hi 1004,
        // midpoint 1002). The interior walk reports 1002 for any rank in the
        // bucket — acceptable resolution mid-range, but quantile(1.0) must
        // be the *exact* max and quantile(0.0) the exact min, not a
        // midpoint that clamping cannot fix.
        let mut s = QuantileSketch::new();
        s.push(1000);
        s.push(1003);
        assert_eq!(s.quantile(0.0), Some(1000));
        assert_eq!(s.quantile(1.0), Some(1003));

        // Same at the low end: min above the bucket representative.
        let mut t = QuantileSketch::new();
        t.push(1001);
        t.push(1003);
        assert_eq!(t.quantile(0.0), Some(1001));
        assert_eq!(t.quantile(1.0), Some(1003));

        // Out-of-range q behaves like the endpoints.
        assert_eq!(t.quantile(-0.5), Some(1001));
        assert_eq!(t.quantile(1.5), Some(1003));

        // Single-value sketches answer that value at every quantile.
        let mut u = QuantileSketch::new();
        u.push(987_654);
        for q in [0.0, 0.3, 1.0] {
            assert_eq!(u.quantile(q), Some(987_654));
        }
    }

    #[test]
    fn empty_sketch_is_quiet() {
        let s = QuantileSketch::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.quantile(0.5), None);
        assert_eq!(s.quantile(0.0), None);
        assert_eq!(s.quantile(1.0), None);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn merge_is_commutative_bitwise() {
        let mut a = QuantileSketch::new();
        let mut b = QuantileSketch::new();
        for v in 0..5_000u64 {
            a.push(v * 17 % 90_000);
            b.push(v * 31 % 123_456);
        }
        let mut ab = a.clone();
        ab.merge(b.clone());
        let mut ba = b.clone();
        ba.merge(a.clone());
        assert_eq!(ab, ba);
        let mut da = Digest64::new();
        ab.absorb_into(&mut da);
        let mut db = Digest64::new();
        ba.absorb_into(&mut db);
        assert_eq!(da.finish(), db.finish());
    }

    #[test]
    fn merge_equals_single_stream() {
        let values: Vec<u64> = (0..10_000u64).map(|v| v * v % 1_000_003).collect();
        let mut whole = QuantileSketch::new();
        for &v in &values {
            whole.push(v);
        }
        let mut parts = QuantileSketch::new();
        for chunk in values.chunks(777) {
            let mut p = QuantileSketch::new();
            for &v in chunk {
                p.push(v);
            }
            parts.merge(p);
        }
        assert_eq!(whole, parts);
    }

    #[test]
    fn sparse_round_trip() {
        let mut s = QuantileSketch::new();
        for v in [1u64, 60_000, 60_000, 91_770_000, 5] {
            s.push(v);
        }
        let pairs: Vec<_> = s.nonzero_buckets().collect();
        let r = QuantileSketch::from_parts(s.min().unwrap(), s.max().unwrap(), pairs).unwrap();
        assert_eq!(r, s);
        assert!(QuantileSketch::from_parts(0, 0, [(BUCKETS, 1)]).is_none());
    }

    #[test]
    fn sparse_sketch_matches_dense_exactly() {
        let mut dense = QuantileSketch::new();
        let mut sparse = SparseSketch::new();
        for v in (0..20_000u64).map(|v| v * v % 777_777) {
            dense.push(v);
            sparse.push(v);
        }
        assert_eq!(sparse.count(), dense.count());
        assert_eq!(sparse.min(), dense.min());
        assert_eq!(sparse.max(), dense.max());
        for q in [0.0, 0.01, 0.25, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(sparse.quantile(q), dense.quantile(q), "q={q}");
        }
        let sp: Vec<_> = sparse.nonzero_buckets().collect();
        let dp: Vec<_> = dense.nonzero_buckets().collect();
        assert_eq!(sp, dp);
        assert_eq!(sparse.to_dense(), dense);
        let mut ds = Digest64::new();
        sparse.absorb_into(&mut ds);
        let mut dd = Digest64::new();
        dense.absorb_into(&mut dd);
        assert_eq!(ds.finish(), dd.finish());
        // Far below the 7 424 dense slots — the memory argument for sparse.
        assert!(sparse.nnz() < BUCKETS / 4, "nnz {}", sparse.nnz());
    }

    #[test]
    fn sparse_merge_is_commutative_and_matches_single_stream() {
        let values: Vec<u64> = (0..6_000u64).map(|v| v * 13 % 250_000).collect();
        let mut whole = SparseSketch::new();
        for &v in &values {
            whole.push(v);
        }
        let (lo, hi) = values.split_at(1_234);
        let mut a = SparseSketch::new();
        let mut b = SparseSketch::new();
        for &v in lo {
            a.push(v);
        }
        for &v in hi {
            b.push(v);
        }
        let mut ab = a.clone();
        ab.merge(b.clone());
        let mut ba = b.clone();
        ba.merge(a.clone());
        assert_eq!(ab, ba);
        assert_eq!(ab, whole);
        // Merging an empty sketch in either direction is the identity.
        let mut e = SparseSketch::new();
        e.merge(whole.clone());
        assert_eq!(e, whole);
        let mut w = whole.clone();
        w.merge(SparseSketch::new());
        assert_eq!(w, whole);
    }

    #[test]
    fn sparse_from_parts_is_total() {
        let mut s = SparseSketch::new();
        for v in [4u64, 4, 999, 70_000] {
            s.push(v);
        }
        let pairs: Vec<_> = s.nonzero_buckets().collect();
        let r = SparseSketch::from_parts(s.min().unwrap(), s.max().unwrap(), pairs).unwrap();
        assert_eq!(r, s);
        // Out of range, unsorted, duplicate, and zero-count inputs are rejected.
        assert!(SparseSketch::from_parts(0, 0, [(BUCKETS, 1)]).is_none());
        assert!(SparseSketch::from_parts(0, 0, [(5, 1), (3, 1)]).is_none());
        assert!(SparseSketch::from_parts(0, 0, [(5, 1), (5, 1)]).is_none());
        assert!(SparseSketch::from_parts(0, 0, [(5, 0)]).is_none());
        assert!(SparseSketch::from_parts(0, 0, [(1, u64::MAX), (2, 1)]).is_none());
    }

    #[test]
    fn sparse_endpoints_are_exact_within_a_shared_bucket() {
        let mut s = SparseSketch::new();
        s.push(1000);
        s.push(1003);
        assert_eq!(s.quantile(0.0), Some(1000));
        assert_eq!(s.quantile(1.0), Some(1003));
        assert_eq!(SparseSketch::new().quantile(0.5), None);
    }
}
