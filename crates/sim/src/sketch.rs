//! Mergeable streaming quantile sketches for failure durations.
//!
//! The analysis layer draws per-kind duration CDFs (Figs. 4, 6–7, 10) and
//! headline percentiles. Materialising every duration sample defeats the
//! constant-memory goal, so the backend summarises each duration stream
//! with a [`QuantileSketch`] instead.
//!
//! **Why not KLL/GK/CKMS?** Those sketches give tight worst-case rank
//! bounds, but their compaction state depends on the order items and merges
//! happen — two shard layouts of the same stream can produce different
//! internal states and (slightly) different quantile answers. The ingest
//! pipeline's headline guarantee is a *bit-identical aggregate digest at
//! any worker count*, so we use a sketch whose merge is exactly
//! commutative and associative: a logarithmically-bucketed rank histogram
//! (HDR-histogram style). Bucket counts add like integers, so any shard
//! order, any merge tree, and any thread count produce the same bytes.
//!
//! Resolution: values below [`LINEAR_MAX`] get exact unit buckets; above,
//! each power-of-two octave is split into [`SUBBUCKETS`] equal slots, so
//! the relative value error of any reported quantile is at most
//! `1/SUBBUCKETS` ≈ 0.78 %. On the continuous duration distributions the
//! fleet produces, that value resolution translates into well under 1 %
//! rank error for the headline percentiles (asserted against exact
//! materialised values in the analysis tests).
//!
//! Memory is constant: `BUCKETS` u64 slots (~58 KiB) regardless of how many
//! billions of samples stream through.

use crate::campaign::Digest64;
use crate::par::Merge;

/// Sub-buckets per power-of-two octave (the relative-error knob).
pub const SUBBUCKETS: u64 = 128;
const SUB_SHIFT: u32 = 7; // log2(SUBBUCKETS)
/// Values `< LINEAR_MAX` get an exact bucket each.
pub const LINEAR_MAX: u64 = SUBBUCKETS;
/// Number of octaves above the linear region for the full `u64` range.
const OCTAVES: usize = 64 - SUB_SHIFT as usize;
/// Total bucket count.
pub const BUCKETS: usize = LINEAR_MAX as usize + OCTAVES * SUBBUCKETS as usize;

/// A mergeable, deterministic streaming quantile sketch over `u64` values
/// (the workspace uses integer milliseconds).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuantileSketch {
    count: u64,
    min: u64,
    max: u64,
    buckets: Box<[u64; BUCKETS]>,
}

impl Default for QuantileSketch {
    fn default() -> Self {
        Self::new()
    }
}

/// Bucket index for a value.
#[inline]
fn bucket_of(v: u64) -> usize {
    if v < LINEAR_MAX {
        return v as usize;
    }
    // Octave = floor(log2 v) − SUB_SHIFT ≥ 0; slot = the top SUB_SHIFT bits
    // below the leading one.
    let octave = (63 - v.leading_zeros()) - SUB_SHIFT;
    let slot = (v >> octave) - SUBBUCKETS;
    LINEAR_MAX as usize + (octave as usize) * SUBBUCKETS as usize + slot as usize
}

/// The lower edge of a bucket (inverse of [`bucket_of`] up to resolution).
#[inline]
fn bucket_low(i: usize) -> u64 {
    if i < LINEAR_MAX as usize {
        return i as u64;
    }
    let rel = i - LINEAR_MAX as usize;
    let octave = (rel / SUBBUCKETS as usize) as u32;
    let slot = (rel % SUBBUCKETS as usize) as u64;
    (SUBBUCKETS + slot) << octave
}

/// Exclusive upper edge of a bucket.
#[inline]
fn bucket_high(i: usize) -> u64 {
    if i < LINEAR_MAX as usize {
        return i as u64 + 1;
    }
    let rel = i - LINEAR_MAX as usize;
    let octave = (rel / SUBBUCKETS as usize) as u32;
    bucket_low(i).saturating_add(1u64 << octave)
}

impl QuantileSketch {
    /// An empty sketch.
    pub fn new() -> Self {
        QuantileSketch {
            count: 0,
            min: u64::MAX,
            max: 0,
            buckets: Box::new([0; BUCKETS]),
        }
    }

    /// Absorb one value.
    pub fn push(&mut self, v: u64) {
        self.count += 1;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.buckets[bucket_of(v)] += 1;
    }

    /// Samples absorbed.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest absorbed value (`None` when empty).
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest absorbed value (`None` when empty).
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// The value at quantile `q ∈ [0, 1]` (`None` when empty).
    ///
    /// Returns a representative of the bucket containing the target rank:
    /// exact for values below [`LINEAR_MAX`], the bucket midpoint above —
    /// so the reported value is within `1/SUBBUCKETS` of a true order
    /// statistic at that rank. Clamped into `[min, max]`.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // Target rank in 1..=count ("the ⌈qn⌉-th smallest").
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum >= target {
                let v = if i < LINEAR_MAX as usize {
                    i as u64
                } else {
                    let (lo, hi) = (bucket_low(i), bucket_high(i));
                    lo + (hi - lo) / 2
                };
                return Some(v.clamp(self.min, self.max));
            }
        }
        Some(self.max) // unreachable in practice: counts sum to `count`
    }

    /// Exact number of absorbed values `< v`'s bucket lower edge — the rank
    /// machinery quality tests use.
    pub fn rank_below_bucket_of(&self, v: u64) -> u64 {
        self.buckets[..bucket_of(v)].iter().sum()
    }

    /// Fold the sketch into a content digest: count, min, max, then every
    /// non-empty bucket as an (index, count) pair.
    pub fn absorb_into(&self, d: &mut Digest64) {
        d.write_u64(self.count);
        d.write_u64(if self.count > 0 { self.min } else { 0 });
        d.write_u64(self.max);
        for (i, &c) in self.buckets.iter().enumerate() {
            if c != 0 {
                d.write_u64(i as u64);
                d.write_u64(c);
            }
        }
    }

    /// Non-empty `(bucket index, count)` pairs in index order — the sparse
    /// form checkpoints serialize.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c != 0)
            .map(|(i, &c)| (i, c))
    }

    /// Rebuild from the sparse form (inverse of [`Self::nonzero_buckets`],
    /// with min/max carried separately). Returns `None` if an index is out
    /// of range or the counts overflow.
    pub fn from_parts(
        min: u64,
        max: u64,
        pairs: impl IntoIterator<Item = (usize, u64)>,
    ) -> Option<Self> {
        let mut s = QuantileSketch::new();
        for (i, c) in pairs {
            if i >= BUCKETS {
                return None;
            }
            s.buckets[i] = s.buckets[i].checked_add(c)?;
            s.count = s.count.checked_add(c)?;
        }
        if s.count > 0 {
            s.min = min;
            s.max = max;
        }
        Some(s)
    }
}

impl Merge for QuantileSketch {
    fn merge(&mut self, other: Self) {
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges_are_consistent() {
        for v in [0u64, 1, 127, 128, 129, 255, 256, 1000, 60_000, u64::MAX] {
            let i = bucket_of(v);
            assert!(i < BUCKETS, "index {i} for {v}");
            assert!(bucket_low(i) <= v, "low edge of {i} above {v}");
            assert!(
                v < bucket_high(i) || bucket_high(i) == u64::MAX,
                "{v} outside bucket {i}"
            );
        }
        // Linear region is exact.
        for v in 0..LINEAR_MAX {
            assert_eq!(bucket_low(bucket_of(v)), v);
        }
    }

    #[test]
    fn relative_error_is_bounded() {
        for v in [200u64, 5_000, 123_456, 90_000_000, 1 << 40] {
            let i = bucket_of(v);
            let mid = bucket_low(i) + (bucket_high(i) - bucket_low(i)) / 2;
            let err = (mid as f64 - v as f64).abs() / v as f64;
            assert!(err <= 1.0 / SUBBUCKETS as f64, "err {err} at {v}");
        }
    }

    #[test]
    fn quantiles_of_a_uniform_ramp() {
        let mut s = QuantileSketch::new();
        for v in 1..=100_000u64 {
            s.push(v);
        }
        for (q, expect) in [(0.5, 50_000.0), (0.9, 90_000.0), (0.99, 99_000.0)] {
            let got = s.quantile(q).unwrap() as f64;
            assert!(
                (got - expect).abs() / expect < 0.01,
                "q={q}: got {got}, expect {expect}"
            );
        }
        assert_eq!(s.quantile(0.0), Some(1));
        assert_eq!(s.quantile(1.0), Some(s.max().unwrap()));
    }

    #[test]
    fn small_values_are_exact() {
        let mut s = QuantileSketch::new();
        for v in [3u64, 3, 3, 7, 9] {
            s.push(v);
        }
        assert_eq!(s.quantile(0.5), Some(3));
        assert_eq!(s.quantile(0.8), Some(7));
        assert_eq!(s.quantile(1.0), Some(9));
    }

    #[test]
    fn empty_sketch_is_quiet() {
        let s = QuantileSketch::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.quantile(0.5), None);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn merge_is_commutative_bitwise() {
        let mut a = QuantileSketch::new();
        let mut b = QuantileSketch::new();
        for v in 0..5_000u64 {
            a.push(v * 17 % 90_000);
            b.push(v * 31 % 123_456);
        }
        let mut ab = a.clone();
        ab.merge(b.clone());
        let mut ba = b.clone();
        ba.merge(a.clone());
        assert_eq!(ab, ba);
        let mut da = Digest64::new();
        ab.absorb_into(&mut da);
        let mut db = Digest64::new();
        ba.absorb_into(&mut db);
        assert_eq!(da.finish(), db.finish());
    }

    #[test]
    fn merge_equals_single_stream() {
        let values: Vec<u64> = (0..10_000u64).map(|v| v * v % 1_000_003).collect();
        let mut whole = QuantileSketch::new();
        for &v in &values {
            whole.push(v);
        }
        let mut parts = QuantileSketch::new();
        for chunk in values.chunks(777) {
            let mut p = QuantileSketch::new();
            for &v in chunk {
                p.push(v);
            }
            parts.merge(p);
        }
        assert_eq!(whole, parts);
    }

    #[test]
    fn sparse_round_trip() {
        let mut s = QuantileSketch::new();
        for v in [1u64, 60_000, 60_000, 91_770_000, 5] {
            s.push(v);
        }
        let pairs: Vec<_> = s.nonzero_buckets().collect();
        let r = QuantileSketch::from_parts(s.min().unwrap(), s.max().unwrap(), pairs).unwrap();
        assert_eq!(r, s);
        assert!(QuantileSketch::from_parts(0, 0, [(BUCKETS, 1)]).is_none());
    }
}
