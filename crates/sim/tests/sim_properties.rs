//! Property-based tests for the simulation kernel's RNG, distributions,
//! statistics and scheduler backends.

use cellrel_sim::{
    fit_zipf, percentile, Ecdf, Empirical, EventQueue, Scheduler, SimRng, TimerWheel,
    WeightedIndex, ZipfDist,
};
use cellrel_types::SimDuration;
use proptest::prelude::*;

/// One step of a scheduler workload, decoded from a raw `(kind, payload)`
/// tuple so any drawn sequence is a valid interleaving:
///
/// * kind 0–3 — schedule at `now + delay`, with the delay scaled to span
///   near-term deadlines, multiple wheel levels, and the overflow horizon;
/// * kind 4–5 — cancel the `payload % issued`-th token ever issued
///   (possibly already fired or cancelled: results must still agree);
/// * kind 6–7 — pop the next event (or observe the drained state);
/// * kind 8 — peek the next timestamp without popping.
#[derive(Debug, Clone)]
enum SchedOp {
    Schedule(u64),
    Cancel(usize),
    Pop,
    Peek,
}

fn decode_op(kind: u8, payload: u64) -> SchedOp {
    match kind % 9 {
        0 | 1 => SchedOp::Schedule(payload % 5_000),
        2 => SchedOp::Schedule(payload % 500_000_000),
        // Past the 2^36 ms wheel span, into the overflow list; bounded so
        // 200 successive far deadlines can never overflow the clock.
        3 => SchedOp::Schedule(payload % (1 << 40)),
        4 | 5 => SchedOp::Cancel(payload as usize),
        6 | 7 => SchedOp::Pop,
        _ => SchedOp::Peek,
    }
}

proptest! {
    /// The tentpole equivalence property: on an arbitrary interleaving of
    /// schedule/cancel/pop operations, the timer wheel observably behaves
    /// exactly like the binary-heap `EventQueue` — same pop order (times
    /// AND payloads, i.e. FIFO among simultaneous events), same peeks,
    /// same cancel results, same lengths.
    #[test]
    fn wheel_matches_event_queue(
        raw_ops in prop::collection::vec((any::<u8>(), any::<u64>()), 1..200)
    ) {
        let ops: Vec<SchedOp> = raw_ops
            .iter()
            .map(|&(kind, payload)| decode_op(kind, payload))
            .collect();
        let mut q: EventQueue<usize> = EventQueue::new();
        let mut w: TimerWheel<usize> = TimerWheel::new();
        let mut q_toks = Vec::new();
        let mut w_toks = Vec::new();
        for (step, op) in ops.iter().enumerate() {
            match *op {
                SchedOp::Schedule(delay) => {
                    let d = SimDuration::from_millis(delay);
                    q_toks.push(q.schedule_after(d, step));
                    w_toks.push(w.schedule_after(d, step));
                }
                SchedOp::Cancel(i) => {
                    if !q_toks.is_empty() {
                        let i = i % q_toks.len();
                        prop_assert_eq!(q.cancel(q_toks[i]), w.cancel(w_toks[i]));
                    }
                }
                SchedOp::Pop => {
                    prop_assert_eq!(q.pop(), w.pop());
                }
                SchedOp::Peek => {
                    prop_assert_eq!(q.peek_time(), w.peek_time());
                }
            }
            prop_assert_eq!(q.len(), w.len());
            prop_assert_eq!(q.now(), Scheduler::<usize>::now(&w));
        }
        // Drain both completely; the full tails must agree.
        loop {
            let (a, b) = (q.pop(), w.pop());
            prop_assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }
}

proptest! {
    #[test]
    fn uniform_draws_stay_in_range(seed in 0u64..10_000, lo in 0u64..1000, span in 1u64..1000) {
        let mut rng = SimRng::new(seed);
        for _ in 0..50 {
            let v = rng.range_u64(lo, lo + span);
            prop_assert!((lo..lo + span).contains(&v));
            let f = rng.f64();
            prop_assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn forked_streams_are_reproducible(seed in 0u64..10_000, salt in 0u64..10_000) {
        let mut a = SimRng::new(seed);
        let mut b = SimRng::new(seed);
        let mut fa = a.fork(salt);
        let mut fb = b.fork(salt);
        for _ in 0..16 {
            prop_assert_eq!(fa.f64().to_bits(), fb.f64().to_bits());
        }
    }

    #[test]
    fn forked_children_are_independent_of_parent_draw_count(
        seed in 0u64..10_000,
        salt in 0u64..10_000,
        draws in 0usize..64,
    ) {
        // The fork-independence claim: a child's stream is a function of the
        // parent's seed, the salt, and how many forks preceded it — NOT of
        // how many values the parent has drawn.
        let mut undrawn = SimRng::new(seed);
        let mut drawn = SimRng::new(seed);
        for _ in 0..draws {
            drawn.f64();
        }
        let mut fa = undrawn.fork(salt);
        let mut fb = drawn.fork(salt);
        for _ in 0..16 {
            prop_assert_eq!(fa.f64().to_bits(), fb.f64().to_bits());
        }
    }

    #[test]
    fn distinct_salts_give_distinct_streams(
        seed in 0u64..10_000,
        salt_a in 0u64..10_000,
        offset in 1u64..10_000,
    ) {
        let salt_b = salt_a + offset;
        let mut a = SimRng::new(seed).fork(salt_a);
        let mut b = SimRng::new(seed).fork(salt_b);
        // 16 consecutive identical u64 draws from different salts would be a
        // catastrophic collision; accept any single difference.
        let differs = (0..16).any(|_| a.f64().to_bits() != b.f64().to_bits());
        prop_assert!(differs, "salts {salt_a} and {salt_b} collided");
    }

    #[test]
    fn substreams_depend_only_on_root_and_id(
        root in 0u64..10_000,
        id in 0u64..100_000,
        draws in 0usize..32,
    ) {
        // for_substream is a pure function: no hidden state, so the stream
        // is identical no matter where or when it is derived.
        let mut a = SimRng::for_substream(root, id);
        // Interleave unrelated work before deriving the second copy.
        let mut noise = SimRng::new(root ^ id);
        for _ in 0..draws {
            noise.f64();
        }
        let mut b = SimRng::for_substream(root, id);
        for _ in 0..16 {
            prop_assert_eq!(a.f64().to_bits(), b.f64().to_bits());
        }
        // And neighbouring device ids never share a stream.
        let mut c = SimRng::for_substream(root, id + 1);
        let mut a2 = SimRng::for_substream(root, id);
        let differs = (0..16).any(|_| a2.f64().to_bits() != c.f64().to_bits());
        prop_assert!(differs, "substreams {id} and {} collided", id + 1);
    }

    #[test]
    fn exp_and_pareto_are_nonnegative(seed in 0u64..5000, mean in 0.1f64..1000.0) {
        let mut rng = SimRng::new(seed);
        for _ in 0..20 {
            prop_assert!(rng.exp(mean) >= 0.0);
            prop_assert!(rng.pareto(mean, 1.1) >= mean);
            prop_assert!(rng.lognormal(0.0, 1.0) > 0.0);
        }
    }

    #[test]
    fn weighted_index_never_picks_zero_weight(
        seed in 0u64..5000,
        idx in 0usize..5,
    ) {
        let mut weights = vec![1.0f64; 5];
        weights[idx] = 0.0;
        let w = WeightedIndex::new(&weights);
        let mut rng = SimRng::new(seed);
        for _ in 0..100 {
            prop_assert_ne!(w.sample(&mut rng), idx);
        }
    }

    #[test]
    fn weighted_index_probabilities_sum_to_one(
        weights in prop::collection::vec(0.01f64..100.0, 1..20)
    ) {
        let w = WeightedIndex::new(&weights);
        let total: f64 = (0..w.len()).map(|i| w.probability(i)).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zipf_samples_in_range(seed in 0u64..5000, n in 1usize..500) {
        let z = ZipfDist::new(n, 0.82);
        let mut rng = SimRng::new(seed);
        for _ in 0..50 {
            prop_assert!(z.sample(&mut rng) < n);
        }
    }

    #[test]
    fn empirical_quantiles_bracket_support(
        xs in prop::collection::vec(-1e4f64..1e4, 1..100),
        q in 0.0f64..1.0,
    ) {
        let e = Empirical::new(xs.clone());
        let v = e.quantile(q);
        prop_assert!(v >= e.min() - 1e-9 && v <= e.max() + 1e-9);
        // Sampling stays in support.
        let mut rng = SimRng::new(1);
        let s = e.sample(&mut rng);
        prop_assert!(xs.contains(&s));
    }

    #[test]
    fn ecdf_and_percentile_agree_on_extremes(
        mut xs in prop::collection::vec(-1e4f64..1e4, 2..100)
    ) {
        let e = Ecdf::new(xs.clone());
        xs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        prop_assert_eq!(percentile(&xs, 0.0), e.min());
        prop_assert_eq!(percentile(&xs, 1.0), e.max());
        prop_assert!(e.median() >= e.min() && e.median() <= e.max());
    }

    #[test]
    fn zipf_fit_recovers_synthetic_exponents(a in 0.3f64..1.5, b in 8.0f64..15.0) {
        // Integer rounding of tiny counts distorts log-log fits, so only
        // fit the portion of the ranking with substantial counts — exactly
        // what the Fig. 11 analysis does with its head-of-ranking fit.
        let counts: Vec<u64> = (1..=500u64)
            .map(|rank| (b - a * (rank as f64).ln()).exp().round() as u64)
            .take_while(|&c| c >= 20)
            .collect();
        prop_assume!(counts.len() >= 10);
        let (fit_a, fit_b, r2) = fit_zipf(&counts);
        prop_assert!((fit_a - a).abs() < 0.1, "a {a} fit {fit_a}");
        prop_assert!((fit_b - b).abs() < 0.3, "b {b} fit {fit_b}");
        prop_assert!(r2 > 0.95);
    }

    #[test]
    fn poisson_is_nonnegative_and_bounded_in_probability(
        seed in 0u64..2000,
        mean in 0.0f64..200.0,
    ) {
        let mut rng = SimRng::new(seed);
        let v = rng.poisson(mean);
        // 20 standard deviations above the mean is astronomically unlikely.
        prop_assert!((v as f64) < mean + 20.0 * mean.sqrt() + 20.0);
    }
}
