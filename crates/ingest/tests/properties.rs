//! Property-based tests for the ingestion wire codec and the streaming
//! quantile sketch: primitive roundtrips, whole-batch roundtrips on
//! arbitrary records, totality of the decoder on hostile input, totality
//! of checkpoint restore, and the algebra of sketch merging.

use cellrel_ingest::codec::{
    crc32, decode_batch, encode_batch, peek_device, read_varint, unzigzag, write_varint, zigzag,
};
use cellrel_ingest::{
    restore_checkpoint, restore_checkpoint_with, save_checkpoint, Collector, CollectorConfig,
};
use cellrel_sim::{Merge, QuantileSketch, Telemetry};
use cellrel_types::{
    Apn, BsId, DataFailCause, DeviceId, FailureEvent, FailureKind, InSituInfo, Isp, Rat,
    SignalLevel, SimDuration, SimTime,
};
use proptest::prelude::*;

/// The field material of one record, minus the device (batches are
/// single-device; the device comes from the batch header). Grouped into
/// nested tuples because the vendored proptest implements `Strategy` for
/// tuples of ≤ 5 elements only.
type RecordParts = (
    (usize, u64, u64),                      // kind index, start ms, duration ms
    (Option<i32>, usize, u8, usize),        // cause code, rat, signal, apn
    (Option<(bool, u16, u16, u32)>, usize), // bs (is_gsm, a, b, c), isp
);

fn parts_strategy() -> impl Strategy<Value = RecordParts> {
    (
        (0usize..5, 0u64..1 << 60, 0u64..1 << 60),
        (prop::option::of(any::<i32>()), 0usize..4, 0u8..6, 0usize..4),
        (
            prop::option::of((any::<bool>(), any::<u16>(), any::<u16>(), any::<u32>())),
            0usize..3,
        ),
    )
}

fn build_event(device: DeviceId, p: &RecordParts) -> FailureEvent {
    let ((kind, start, duration), (cause, rat, signal, apn), (bs, isp)) = *p;
    FailureEvent {
        device,
        kind: FailureKind::from_index(kind).expect("kind < 5"),
        start: SimTime::from_millis(start),
        duration: SimDuration::from_millis(duration),
        cause: cause.map(DataFailCause::from_code),
        ctx: InSituInfo {
            rat: Rat::from_index(rat).expect("rat < 4"),
            signal: SignalLevel::new(signal),
            apn: Apn::from_index(apn).expect("apn < 4"),
            bs: bs.map(|(is_gsm, a, b, c)| {
                if is_gsm {
                    BsId::Gsm {
                        mcc: a,
                        mnc: b,
                        lac: a.wrapping_add(b),
                        cid: c,
                    }
                } else {
                    BsId::Cdma {
                        sid: a,
                        nid: b,
                        bid: c,
                    }
                }
            }),
            isp: Isp::from_index(isp).expect("isp < 3"),
        },
    }
}

/// Build a collector holding a few devices' worth of ingested batches, so
/// its checkpoint bytes cover populated shards, sketches and dedup state.
fn populated_collector(devices: u32, per_device: usize) -> Collector {
    let cfg = CollectorConfig {
        virtual_shards: 8,
        ..CollectorConfig::default()
    };
    let mut c = Collector::new(&cfg);
    for d in 0..devices {
        let device = DeviceId(d);
        let events: Vec<FailureEvent> = (0..per_device)
            .map(|i| {
                build_event(
                    device,
                    &(
                        ((i % 5), (1000 * i as u64), (3_000 + 17 * i as u64)),
                        ((i % 3 == 0).then_some(2157), i % 4, (i % 6) as u8, 0),
                        (None, (d as usize) % 3),
                    ),
                )
            })
            .collect();
        c.ingest(&encode_batch(device, 0, &events));
    }
    c
}

proptest! {
    #[test]
    fn varint_roundtrips_every_u64(v in any::<u64>()) {
        let mut buf = Vec::new();
        write_varint(&mut buf, v);
        prop_assert!(buf.len() <= 10);
        let mut pos = 0;
        prop_assert_eq!(read_varint(&buf, &mut pos), Ok(v));
        prop_assert_eq!(pos, buf.len());
    }

    #[test]
    fn zigzag_roundtrips_every_i64(v in any::<i64>()) {
        prop_assert_eq!(unzigzag(zigzag(v)), v);
    }

    #[test]
    fn truncated_varints_are_errors(v in any::<u64>(), cut in 0usize..10) {
        let mut buf = Vec::new();
        write_varint(&mut buf, v);
        if cut < buf.len() {
            buf.truncate(cut);
            let mut pos = 0;
            prop_assert!(read_varint(&buf, &mut pos).is_err());
        }
    }

    #[test]
    fn batches_roundtrip_arbitrary_records(
        device in any::<u32>(),
        seq in any::<u64>(),
        parts in prop::collection::vec(parts_strategy(), 0..40),
    ) {
        let device = DeviceId(device);
        let events: Vec<FailureEvent> =
            parts.iter().map(|p| build_event(device, p)).collect();
        let bytes = encode_batch(device, seq, &events);

        prop_assert_eq!(peek_device(&bytes), Ok(device));
        let batch = decode_batch(&bytes).expect("own encoding decodes");
        prop_assert_eq!(batch.device, device);
        prop_assert_eq!(batch.seq, seq);
        prop_assert_eq!(batch.records.len(), events.len());
        for r in &batch.records {
            prop_assert_eq!(r.device, device);
        }
        // Encoding is canonical: re-encoding the decoded records reproduces
        // the exact bytes, so decode lost nothing the wire format carries.
        prop_assert_eq!(encode_batch(device, seq, &batch.records), bytes);
    }

    #[test]
    fn truncated_batches_are_errors_never_panics(
        device in any::<u32>(),
        parts in prop::collection::vec(parts_strategy(), 1..20),
        cut_seed in any::<usize>(),
    ) {
        let device = DeviceId(device);
        let events: Vec<FailureEvent> =
            parts.iter().map(|p| build_event(device, p)).collect();
        let bytes = encode_batch(device, 0, &events);
        let cut = cut_seed % bytes.len(); // strictly shorter prefix
        prop_assert!(decode_batch(&bytes[..cut]).is_err());
    }

    #[test]
    fn corrupted_batches_are_errors_never_panics(
        device in any::<u32>(),
        parts in prop::collection::vec(parts_strategy(), 1..20),
        at_seed in any::<usize>(),
        mask in 1u8..=255,
    ) {
        let device = DeviceId(device);
        let events: Vec<FailureEvent> =
            parts.iter().map(|p| build_event(device, p)).collect();
        let mut bytes = encode_batch(device, 0, &events);
        let at = at_seed % bytes.len();
        bytes[at] ^= mask;
        // A single flipped byte is always caught: by the CRC if it lands in
        // the payload, or by the CRC comparison if it lands in the trailer.
        prop_assert!(decode_batch(&bytes).is_err());
    }

    #[test]
    fn garbage_never_panics_the_decoder(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = decode_batch(&bytes);
        let _ = peek_device(&bytes);
        let mut pos = 0;
        let _ = read_varint(&bytes, &mut pos);
    }

    #[test]
    fn crc_detects_any_single_byte_change(
        bytes in prop::collection::vec(any::<u8>(), 1..128),
        at_seed in any::<usize>(),
        mask in 1u8..=255,
    ) {
        let before = crc32(&bytes);
        let mut changed = bytes;
        let at = at_seed % changed.len();
        changed[at] ^= mask;
        prop_assert_ne!(crc32(&changed), before);
    }

    /// Checkpoint restore is total on truncation: every strict prefix of a
    /// valid checkpoint is a typed error, never a panic.
    #[test]
    fn truncated_checkpoints_are_errors_never_panics(
        devices in 1u32..12,
        per_device in 1usize..8,
        cut_seed in any::<usize>(),
    ) {
        let bytes = save_checkpoint(&populated_collector(devices, per_device));
        let cut = cut_seed % bytes.len(); // strictly shorter prefix
        prop_assert!(restore_checkpoint(&bytes[..cut]).is_err());
    }

    /// Checkpoint restore is total on corruption: a single flipped byte is
    /// always a typed error (the CRC trailer catches payload flips; trailer
    /// flips fail the comparison).
    #[test]
    fn corrupted_checkpoints_are_errors_never_panics(
        devices in 1u32..12,
        per_device in 1usize..8,
        at_seed in any::<usize>(),
        mask in 1u8..=255,
    ) {
        let mut bytes = save_checkpoint(&populated_collector(devices, per_device));
        let at = at_seed % bytes.len();
        bytes[at] ^= mask;
        prop_assert!(restore_checkpoint(&bytes).is_err());
    }

    /// Arbitrary garbage never panics restore — with or without telemetry —
    /// and the instrumented wrapper counts the outcome correctly.
    #[test]
    fn garbage_never_panics_checkpoint_restore(
        bytes in prop::collection::vec(any::<u8>(), 0..512),
    ) {
        let _ = restore_checkpoint(&bytes);
        let tele = Telemetry::enabled();
        let result = restore_checkpoint_with(&bytes, &tele);
        let snap = tele.snapshot();
        match result {
            Ok(_) => prop_assert_eq!(snap.counter("ingest.checkpoint.restore"), 1),
            Err(_) => prop_assert_eq!(snap.counter("ingest.checkpoint.restore_error"), 1),
        }
    }

    #[test]
    fn sketch_merge_is_commutative(
        xs in prop::collection::vec(0u64..1 << 50, 0..200),
        ys in prop::collection::vec(0u64..1 << 50, 0..200),
    ) {
        let mut a = QuantileSketch::new();
        xs.iter().for_each(|&v| a.push(v));
        let mut b = QuantileSketch::new();
        ys.iter().for_each(|&v| b.push(v));

        let mut ab = a.clone();
        ab.merge(b.clone());
        let mut ba = b;
        ba.merge(a);
        prop_assert_eq!(&ab, &ba);

        // Merging equals pushing the concatenated stream.
        let mut all = QuantileSketch::new();
        xs.iter().chain(ys.iter()).for_each(|&v| all.push(v));
        prop_assert_eq!(&ab, &all);
    }

    #[test]
    fn sketch_merge_is_associative(
        xs in prop::collection::vec(0u64..1 << 50, 0..100),
        ys in prop::collection::vec(0u64..1 << 50, 0..100),
        zs in prop::collection::vec(0u64..1 << 50, 0..100),
    ) {
        let build = |vals: &[u64]| {
            let mut s = QuantileSketch::new();
            vals.iter().for_each(|&v| s.push(v));
            s
        };
        let (a, b, c) = (build(&xs), build(&ys), build(&zs));

        let mut left = a.clone();
        left.merge(b.clone());
        left.merge(c.clone());

        let mut bc = b;
        bc.merge(c);
        let mut right = a;
        right.merge(bc);

        prop_assert_eq!(left, right);
    }

    #[test]
    fn sketch_quantiles_stay_within_bucket_resolution(
        mut xs in prop::collection::vec(1u64..1 << 40, 1..300),
        q in 0.0f64..1.0,
    ) {
        let mut s = QuantileSketch::new();
        xs.iter().for_each(|&v| s.push(v));
        xs.sort_unstable();
        let v = s.quantile(q).expect("non-empty");
        prop_assert!(v >= xs[0] && v <= xs[xs.len() - 1]);
        // Relative value error is bounded by the sub-bucket width (1/128).
        let rank = ((q * xs.len() as f64).ceil() as usize).clamp(1, xs.len());
        let exact = xs[rank - 1] as f64;
        prop_assert!(
            (v as f64 - exact).abs() <= exact / 128.0 + 1.0,
            "q={q}: sketched {v}, exact {exact}"
        );
    }
}
