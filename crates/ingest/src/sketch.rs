//! Mergeable streaming quantile sketches — re-exported from
//! [`cellrel_sim::sketch`].
//!
//! The sketch implementation began life here (the ingest aggregate was its
//! first customer) but moved into `cellrel-sim` when the telemetry layer
//! needed the same log-bucketed histogram for sim-time duration metrics:
//! `cellrel-ingest` depends on `cellrel-sim`, not the other way round, so
//! the shared primitive lives in the lower crate. This module keeps every
//! historical `cellrel_ingest::sketch::*` path compiling.

pub use cellrel_sim::sketch::{QuantileSketch, BUCKETS, LINEAR_MAX, SUBBUCKETS};
