//! The binary wire codec for trace batches (§2.2's "compressed upload").
//!
//! A batch is every record one device ships in one upload. The format is a
//! compact, self-delimiting binary layout built from three primitives:
//!
//! * **LEB128 varints** — small integers (counts, codes, BS fields) cost one
//!   byte instead of a fixed-width word;
//! * **delta-of-timestamps** — records are sorted by start time at encode
//!   time and each start is stored as the (non-negative) varint delta from
//!   its predecessor, so an 8-byte millisecond timestamp shrinks to a few
//!   bytes;
//! * **per-batch framing** — magic + schema version + device id + batch
//!   sequence number up front, CRC-32 of everything at the back, so the
//!   collector can reject truncated or corrupted uploads without panicking
//!   and deduplicate re-delivered batches by `(device, seq)`.
//!
//! ```text
//! batch := "CB" version:u8 device:varint seq:varint count:varint record* crc32:u32le
//! record := kind:u8 delta_start:varint duration_ms:varint cause:varint
//!           rat:u8 signal:u8 apn:u8 bs_tag:u8 bs_fields* isp:u8
//! ```
//!
//! `cause` is `0` for none, otherwise `1 + zigzag(code)`. `bs_tag` is 0/1/2
//! for none/GSM/CDMA, followed by the identity fields as varints. Records
//! within a batch are canonically ordered (by start, then kind, duration,
//! cause, context), which both maximises delta compression and makes the
//! encoding a pure function of the record *set* — two uploads of the same
//! records encode to identical bytes.
//!
//! Decoding is total: every failure mode maps to a [`DecodeError`], never a
//! panic, no matter how adversarial the input.

use cellrel_types::{
    Apn, BsId, DataFailCause, DeviceId, FailureEvent, FailureKind, InSituInfo, Isp, Rat,
    SignalLevel, SimDuration, SimTime,
};

/// First framing byte.
pub const MAGIC: [u8; 2] = *b"CB";
/// Current schema version.
pub const SCHEMA_VERSION: u8 = 1;

/// Why a batch failed to decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// Input ended before the structure was complete.
    Truncated,
    /// The framing magic is wrong — not a trace batch.
    BadMagic,
    /// Schema version this decoder does not understand.
    UnsupportedVersion(u8),
    /// The CRC-32 trailer does not match the received bytes.
    BadCrc {
        /// CRC computed over the received bytes.
        computed: u32,
        /// CRC carried in the trailer.
        stored: u32,
    },
    /// A varint ran past 10 bytes (cannot be a `u64`).
    VarintOverflow,
    /// A field held a value outside its domain (named for diagnostics).
    InvalidField(&'static str),
    /// Well-formed structure followed by unexpected trailing bytes.
    TrailingBytes,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "truncated batch"),
            DecodeError::BadMagic => write!(f, "bad framing magic"),
            DecodeError::UnsupportedVersion(v) => write!(f, "unsupported schema version {v}"),
            DecodeError::BadCrc { computed, stored } => {
                write!(
                    f,
                    "crc mismatch (computed {computed:08x}, stored {stored:08x})"
                )
            }
            DecodeError::VarintOverflow => write!(f, "varint overflow"),
            DecodeError::InvalidField(name) => write!(f, "invalid field: {name}"),
            DecodeError::TrailingBytes => write!(f, "trailing bytes after batch"),
        }
    }
}

impl std::error::Error for DecodeError {}

// ---------------------------------------------------------------------------
// Primitives: varint, zigzag, CRC-32.
// ---------------------------------------------------------------------------

/// Append `v` as an LEB128 varint (1–10 bytes).
pub fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Read an LEB128 varint from `bytes[*pos..]`, advancing `pos`.
pub fn read_varint(bytes: &[u8], pos: &mut usize) -> Result<u64, DecodeError> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let &b = bytes.get(*pos).ok_or(DecodeError::Truncated)?;
        *pos += 1;
        if shift == 63 && b > 1 {
            return Err(DecodeError::VarintOverflow);
        }
        v |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift > 63 {
            return Err(DecodeError::VarintOverflow);
        }
    }
}

/// Map a signed value onto an unsigned one with small magnitudes staying
/// small (0,-1,1,-2 → 0,1,2,3).
pub const fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
pub const fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// CRC-32 (IEEE, reflected) over `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = crc32_table();
    let mut crc: u32 = !0;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(b)) & 0xff) as usize];
    }
    !crc
}

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

// ---------------------------------------------------------------------------
// Batch encode.
// ---------------------------------------------------------------------------

/// A decoded upload batch: one device's records, in canonical order.
#[derive(Debug, Clone, PartialEq)]
pub struct WireBatch {
    /// The uploading device.
    pub device: DeviceId,
    /// Per-device upload sequence number (dedup key).
    pub seq: u64,
    /// The records, sorted by the canonical ordering.
    pub records: Vec<FailureEvent>,
}

/// The canonical intra-batch ordering: start, kind, duration, cause code,
/// then radio context. Total, so encoding is a function of the record set.
fn canonical_key(e: &FailureEvent) -> (u64, usize, u64, i64, u8, u8, u8, u64, u8) {
    (
        e.start.as_millis(),
        e.kind.index(),
        e.duration.as_millis(),
        e.cause.map_or(i64::MIN, |c| i64::from(c.code())),
        e.ctx.rat.index() as u8,
        e.ctx.signal.value(),
        e.ctx.apn.index() as u8,
        e.ctx.bs.map_or(u64::MAX, |b| b.as_u64()),
        e.ctx.isp.index() as u8,
    )
}

/// Encode one device's records as a wire batch.
///
/// The `device` in the header is authoritative; per-record device ids are
/// not serialized (a batch is single-device by construction — debug builds
/// assert it). Records are sorted into canonical order first, so the same
/// record set always produces the same bytes.
pub fn encode_batch(device: DeviceId, seq: u64, records: &[FailureEvent]) -> Vec<u8> {
    debug_assert!(
        records.iter().all(|r| r.device == device),
        "batch contains records from another device"
    );
    let mut sorted: Vec<&FailureEvent> = records.iter().collect();
    sorted.sort_by_key(|e| canonical_key(e));

    let mut out = Vec::with_capacity(16 + records.len() * 24);
    out.extend_from_slice(&MAGIC);
    out.push(SCHEMA_VERSION);
    write_varint(&mut out, u64::from(device.0));
    write_varint(&mut out, seq);
    write_varint(&mut out, sorted.len() as u64);

    let mut prev_start = 0u64;
    for e in sorted {
        out.push(e.kind.index() as u8);
        let start = e.start.as_millis();
        write_varint(&mut out, start - prev_start);
        prev_start = start;
        write_varint(&mut out, e.duration.as_millis());
        match e.cause {
            None => out.push(0),
            Some(c) => write_varint(&mut out, 1 + zigzag(i64::from(c.code()))),
        }
        out.push(e.ctx.rat.index() as u8);
        out.push(e.ctx.signal.value());
        out.push(e.ctx.apn.index() as u8);
        match e.ctx.bs {
            None => out.push(0),
            Some(BsId::Gsm { mcc, mnc, lac, cid }) => {
                out.push(1);
                write_varint(&mut out, u64::from(mcc));
                write_varint(&mut out, u64::from(mnc));
                write_varint(&mut out, u64::from(lac));
                write_varint(&mut out, u64::from(cid));
            }
            Some(BsId::Cdma { sid, nid, bid }) => {
                out.push(2);
                write_varint(&mut out, u64::from(sid));
                write_varint(&mut out, u64::from(nid));
                write_varint(&mut out, u64::from(bid));
            }
        }
        out.push(e.ctx.isp.index() as u8);
    }
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

// ---------------------------------------------------------------------------
// Batch decode.
// ---------------------------------------------------------------------------

fn read_u8(bytes: &[u8], pos: &mut usize) -> Result<u8, DecodeError> {
    let &b = bytes.get(*pos).ok_or(DecodeError::Truncated)?;
    *pos += 1;
    Ok(b)
}

fn narrow<T: TryFrom<u64>>(v: u64, field: &'static str) -> Result<T, DecodeError> {
    T::try_from(v).map_err(|_| DecodeError::InvalidField(field))
}

/// Decode a wire batch. Total: any malformed input yields a [`DecodeError`].
pub fn decode_batch(bytes: &[u8]) -> Result<WireBatch, DecodeError> {
    // Frame: payload then 4-byte CRC trailer. Check the CRC before parsing
    // so field errors are only reported for intact batches.
    if bytes.len() < MAGIC.len() + 1 + 4 {
        return Err(DecodeError::Truncated);
    }
    let (payload, trailer) = bytes.split_at(bytes.len() - 4);
    if payload[..2] != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let stored = u32::from_le_bytes([trailer[0], trailer[1], trailer[2], trailer[3]]);
    let computed = crc32(payload);
    if computed != stored {
        return Err(DecodeError::BadCrc { computed, stored });
    }
    let mut pos = 2;
    let version = read_u8(payload, &mut pos)?;
    if version != SCHEMA_VERSION {
        return Err(DecodeError::UnsupportedVersion(version));
    }
    let device = DeviceId(narrow::<u32>(read_varint(payload, &mut pos)?, "device")?);
    let seq = read_varint(payload, &mut pos)?;
    let count = read_varint(payload, &mut pos)?;
    // An upper bound that any genuine batch satisfies (each record is ≥ 8
    // bytes on the wire) — rejects absurd counts before allocating.
    if count > (payload.len() as u64) / 8 + 1 {
        return Err(DecodeError::InvalidField("count"));
    }

    let mut records = Vec::with_capacity(count as usize);
    let mut prev_start = 0u64;
    for _ in 0..count {
        let kind = FailureKind::from_index(usize::from(read_u8(payload, &mut pos)?))
            .ok_or(DecodeError::InvalidField("kind"))?;
        let delta = read_varint(payload, &mut pos)?;
        let start = prev_start
            .checked_add(delta)
            .ok_or(DecodeError::InvalidField("start"))?;
        prev_start = start;
        let duration = read_varint(payload, &mut pos)?;
        let cause = match read_varint(payload, &mut pos)? {
            0 => None,
            c => {
                let code = i32::try_from(unzigzag(c - 1))
                    .map_err(|_| DecodeError::InvalidField("cause"))?;
                Some(DataFailCause::from_code(code))
            }
        };
        let rat = Rat::from_index(usize::from(read_u8(payload, &mut pos)?))
            .ok_or(DecodeError::InvalidField("rat"))?;
        let signal_raw = read_u8(payload, &mut pos)?;
        if signal_raw > 5 {
            return Err(DecodeError::InvalidField("signal"));
        }
        let signal = SignalLevel::new(signal_raw);
        let apn = Apn::from_index(usize::from(read_u8(payload, &mut pos)?))
            .ok_or(DecodeError::InvalidField("apn"))?;
        let bs = match read_u8(payload, &mut pos)? {
            0 => None,
            1 => Some(BsId::Gsm {
                mcc: narrow(read_varint(payload, &mut pos)?, "mcc")?,
                mnc: narrow(read_varint(payload, &mut pos)?, "mnc")?,
                lac: narrow(read_varint(payload, &mut pos)?, "lac")?,
                cid: narrow(read_varint(payload, &mut pos)?, "cid")?,
            }),
            2 => Some(BsId::Cdma {
                sid: narrow(read_varint(payload, &mut pos)?, "sid")?,
                nid: narrow(read_varint(payload, &mut pos)?, "nid")?,
                bid: narrow(read_varint(payload, &mut pos)?, "bid")?,
            }),
            _ => return Err(DecodeError::InvalidField("bs_tag")),
        };
        let isp = Isp::from_index(usize::from(read_u8(payload, &mut pos)?))
            .ok_or(DecodeError::InvalidField("isp"))?;
        records.push(FailureEvent {
            device,
            kind,
            start: SimTime::from_millis(start),
            duration: SimDuration::from_millis(duration),
            cause,
            ctx: InSituInfo {
                rat,
                signal,
                apn,
                bs,
                isp,
            },
        });
    }
    if pos != payload.len() {
        return Err(DecodeError::TrailingBytes);
    }
    Ok(WireBatch {
        device,
        seq,
        records,
    })
}

/// Peek at a batch header without validating the CRC or parsing records —
/// the router uses this to shard batches by device cheaply.
pub fn peek_device(bytes: &[u8]) -> Result<DeviceId, DecodeError> {
    if bytes.len() < 3 {
        return Err(DecodeError::Truncated);
    }
    if bytes[..2] != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let mut pos = 3;
    Ok(DeviceId(narrow::<u32>(
        read_varint(bytes, &mut pos)?,
        "device",
    )?))
}

/// The raw (pre-codec) size estimate of one record, bytes — the fixed-width
/// row the monitor budgets storage with. The codec's win is measured
/// against this.
pub const RAW_RECORD_BYTES: u64 = 35;

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(start_ms: u64, kind: FailureKind, cause: Option<DataFailCause>) -> FailureEvent {
        FailureEvent {
            device: DeviceId(42),
            kind,
            start: SimTime::from_millis(start_ms),
            duration: SimDuration::from_secs(12),
            cause,
            ctx: InSituInfo {
                rat: Rat::G4,
                signal: SignalLevel::L3,
                apn: Apn::Internet,
                bs: Some(BsId::gsm_cn(1, 500, 77)),
                isp: Isp::B,
            },
        }
    }

    #[test]
    fn varint_round_trips() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(read_varint(&buf, &mut pos).unwrap(), v);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn zigzag_round_trips() {
        for v in [0i64, -1, 1, i64::MIN, i64::MAX, -123456, 98765] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
    }

    #[test]
    fn crc32_known_vector() {
        // The classic check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn batch_round_trips_sorted() {
        let records = vec![
            ev(5_000, FailureKind::DataStall, None),
            ev(
                1_000,
                FailureKind::DataSetupError,
                Some(DataFailCause::PppTimeout),
            ),
            ev(9_000, FailureKind::OutOfService, None),
        ];
        let bytes = encode_batch(DeviceId(42), 7, &records);
        let decoded = decode_batch(&bytes).expect("round trip");
        assert_eq!(decoded.device, DeviceId(42));
        assert_eq!(decoded.seq, 7);
        assert_eq!(decoded.records.len(), 3);
        // Canonical order: sorted by start.
        assert_eq!(decoded.records[0].start.as_millis(), 1_000);
        assert_eq!(decoded.records[1].start.as_millis(), 5_000);
        assert_eq!(decoded.records[2].start.as_millis(), 9_000);
        assert_eq!(decoded.records[0].cause, Some(DataFailCause::PppTimeout));
        assert_eq!(decoded.records[1].ctx.isp, Isp::B);
    }

    #[test]
    fn encoding_beats_raw_rows() {
        let records: Vec<FailureEvent> = (0..100)
            .map(|i| ev(i * 30_000, FailureKind::DataStall, None))
            .collect();
        let bytes = encode_batch(DeviceId(42), 0, &records);
        let raw = records.len() as u64 * RAW_RECORD_BYTES;
        assert!(
            (bytes.len() as u64) < raw,
            "encoded {} vs raw {raw}",
            bytes.len()
        );
    }

    #[test]
    fn empty_batch_round_trips() {
        let bytes = encode_batch(DeviceId(3), 1, &[]);
        let decoded = decode_batch(&bytes).expect("empty batch");
        assert_eq!(decoded.records.len(), 0);
        assert_eq!(decoded.seq, 1);
    }

    #[test]
    fn truncation_is_an_error_never_a_panic() {
        let bytes = encode_batch(DeviceId(42), 0, &[ev(10, FailureKind::DataStall, None)]);
        for cut in 0..bytes.len() {
            let err = decode_batch(&bytes[..cut]);
            assert!(err.is_err(), "prefix of {cut} bytes decoded");
        }
    }

    #[test]
    fn corruption_is_detected_by_crc() {
        let bytes = encode_batch(DeviceId(42), 0, &[ev(10, FailureKind::DataStall, None)]);
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            let r = decode_batch(&bad);
            assert!(r.is_err(), "flipping byte {i} went unnoticed");
        }
    }

    #[test]
    fn wrong_magic_and_version() {
        let mut bytes = encode_batch(DeviceId(1), 0, &[]);
        bytes[0] = b'X';
        assert_eq!(decode_batch(&bytes), Err(DecodeError::BadMagic));

        let mut v2 = encode_batch(DeviceId(1), 0, &[]);
        v2[2] = 9;
        let crc = crc32(&v2[..v2.len() - 4]).to_le_bytes();
        let n = v2.len();
        v2[n - 4..].copy_from_slice(&crc);
        assert_eq!(decode_batch(&v2), Err(DecodeError::UnsupportedVersion(9)));
    }

    #[test]
    fn peek_device_reads_header_only() {
        let bytes = encode_batch(DeviceId(1234), 9, &[]);
        assert_eq!(peek_device(&bytes).unwrap(), DeviceId(1234));
        assert!(peek_device(&bytes[..2]).is_err());
    }
}
