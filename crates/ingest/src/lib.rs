//! # cellrel-ingest
//!
//! The fleet telemetry **ingestion pipeline**: the backend half of the
//! paper's nationwide measurement platform (§2.2), which collected 2.32 B
//! failure records from 70 M devices as compressed uploads.
//!
//! Three layers, bottom up:
//!
//! * [`codec`] — the compact binary wire format for trace batches: LEB128
//!   varints, delta-of-timestamps, per-batch framing (magic, schema
//!   version, device id, upload sequence number) and a CRC-32 trailer.
//!   Encoding is a pure function of the record set; decoding is total —
//!   adversarial bytes yield a [`codec::DecodeError`], never a panic.
//!   The device-side `Uploader` in `cellrel-monitor` ships these bytes, so
//!   the network-overhead numbers in the monitor are measured, not
//!   estimated with a compression fudge factor.
//! * [`sketch`] — mergeable streaming quantile sketches for failure
//!   durations. Bucket counts add exactly, so merges are commutative and
//!   associative and the aggregate is bit-identical at any shard order.
//! * [`collector`] — the sharded collector: batches route to
//!   `device % virtual_shards`, workers behind bounded channels apply
//!   dedup (per-device upload seq), §2.1 noise filtering, and
//!   late/out-of-order accounting, then fold into constant-memory
//!   aggregates whose digest is identical at 1, 2, or 8 ingest threads.
//! * [`checkpoint`] — versioned, CRC-framed serialization of the full
//!   collector state, so ingestion survives restarts without replay.
//!
//! [`cellrel_monitor::Uploader`]: https://docs.rs/cellrel-monitor

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod codec;
pub mod collector;
pub mod sketch;

pub use checkpoint::{
    restore_checkpoint, restore_checkpoint_with, save_checkpoint, save_checkpoint_with,
};
pub use codec::{decode_batch, encode_batch, peek_device, DecodeError, WireBatch};
pub use collector::{
    run_ingest, Collector, CollectorConfig, IngestAggregate, IngestCounters, IngestReport,
};
pub use sketch::QuantileSketch;
