//! # cellrel-ingest
//!
//! The fleet telemetry **ingestion pipeline**: the backend half of the
//! paper's nationwide measurement platform (§2.2), which collected 2.32 B
//! failure records from 70 M devices as compressed uploads.
//!
//! Three layers, bottom up:
//!
//! * [`codec`] — the compact binary wire format for trace batches: LEB128
//!   varints, delta-of-timestamps, per-batch framing (magic, schema
//!   version, device id, upload sequence number) and a CRC-32 trailer.
//!   Encoding is a pure function of the record set; decoding is total —
//!   adversarial bytes yield a [`codec::DecodeError`], never a panic.
//!   The device-side `Uploader` in `cellrel-monitor` ships these bytes, so
//!   the network-overhead numbers in the monitor are measured, not
//!   estimated with a compression fudge factor.
//! * [`collector`] — the sharded collector: batches route to
//!   `device % virtual_shards`, workers behind bounded channels apply
//!   dedup (per-device upload seq), §2.1 noise filtering, and
//!   late/out-of-order accounting, then fold into constant-memory
//!   aggregates whose digest is identical at 1, 2, or 8 ingest threads.
//!   Durations are summarised with the mergeable quantile sketches from
//!   `cellrel_sim::sketch`. Downstream consumers (the `cellrel-store`
//!   analytics cube) attach via [`collector::AcceptedSink`] /
//!   [`run_ingest_with`] and observe exactly the accepted record stream.
//! * [`checkpoint`] — versioned, CRC-framed serialization of the full
//!   collector state, so ingestion survives restarts without replay.
//!
//! [`cellrel_monitor::Uploader`]: https://docs.rs/cellrel-monitor

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod codec;
pub mod collector;

pub use checkpoint::{
    restore_checkpoint, restore_checkpoint_with, save_checkpoint, save_checkpoint_with,
};
pub use codec::{decode_batch, encode_batch, peek_device, DecodeError, WireBatch};
pub use collector::{
    run_ingest, run_ingest_with, AcceptedSink, Collector, CollectorConfig, IngestAggregate,
    IngestCounters, IngestReport,
};
