//! The sharded trace collector — the backend half of the paper's platform.
//!
//! Encoded upload batches stream in from millions of devices; the collector
//! decodes, deduplicates, noise-filters (§2.1) and folds them into
//! constant-memory aggregates. Two drivers share one state machine:
//!
//! * [`Collector::ingest`] — the sequential path: route a batch to its
//!   virtual shard and fold it in.
//! * [`run_ingest`] — the parallel path: N workers behind **bounded**
//!   channels (`std::sync::mpsc::sync_channel`, so a slow worker
//!   back-pressures the producer instead of buffering unboundedly), each
//!   owning a fixed subset of virtual shards.
//!
//! **Determinism.** Batches are routed to `device % virtual_shards`; each
//! virtual shard is owned by exactly one worker, and a single producer
//! emits batches in a fixed order, so every shard sees the same batch
//! subsequence in the same order at *any* worker count. Folding shard
//! states in shard-index order therefore yields a bit-identical
//! [`Collector::digest`] at 1, 2, or 8 workers — the property CI enforces.
//!
//! **Dedup / noise / lateness.** Re-delivered batches are dropped by the
//! per-device upload sequence number (`seq` must strictly increase);
//! identical records inside one batch are collapsed; records whose cause
//! codes mark rational rejections (the §2.1 false-positive classes) are
//! filtered out; and each shard tracks a high-water mark over record
//! timestamps so late / out-of-order arrivals (devices upload when WiFi
//! appears, often hours after the failure) are surfaced as counters
//! instead of silently skewing the stream.

use crate::codec::{decode_batch, peek_device};
use cellrel_sim::sketch::QuantileSketch;
use cellrel_sim::{resolve_threads, Digest64, Merge, Telemetry};
use cellrel_types::{DeviceId, FailureEvent, SimDuration};
use std::collections::BTreeMap;
use std::sync::mpsc::sync_channel;

/// A consumer of the records the collector **accepts** — i.e. after batch
/// decode, per-device sequence dedup, intra-batch duplicate collapse, and
/// §2.1 false-positive noise filtering. Downstream consumers (the
/// `cellrel-store` analytics cube, test capture buffers) hook in here so
/// they observe exactly the record stream the aggregates are built from.
///
/// [`run_ingest_with`] keeps one sink per *virtual shard* and folds them in
/// shard-index order, so a sink that implements `Merge` sees a
/// deterministic observation sequence at any worker count.
pub trait AcceptedSink {
    /// Observe one accepted record.
    fn accepted(&mut self, e: &FailureEvent);
}

/// The no-op sink: plain ingestion with no downstream consumer.
impl AcceptedSink for () {
    fn accepted(&mut self, _: &FailureEvent) {}
}

/// Capture sink for tests and replay tooling.
impl AcceptedSink for Vec<FailureEvent> {
    fn accepted(&mut self, e: &FailureEvent) {
        self.push(*e);
    }
}

/// Collector tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct CollectorConfig {
    /// Ingest workers for [`run_ingest`] (0 = auto via `CELLREL_THREADS`).
    pub workers: usize,
    /// Bounded-channel capacity per worker (batches in flight before the
    /// producer blocks — the backpressure knob).
    pub queue_depth: usize,
    /// Fixed routing domain. Must not change across a campaign: shard
    /// layout is part of the deterministic state.
    pub virtual_shards: usize,
    /// How far behind a shard's timestamp high-water mark a record may be
    /// before it counts as late.
    pub lateness: SimDuration,
}

impl Default for CollectorConfig {
    fn default() -> Self {
        CollectorConfig {
            workers: 0,
            queue_depth: 256,
            virtual_shards: 64,
            lateness: SimDuration::from_mins(30),
        }
    }
}

/// Stream bookkeeping counters (summed across shards in the report).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IngestCounters {
    /// Batches accepted (decoded, not duplicates).
    pub batches: u64,
    /// Encoded bytes of accepted batches.
    pub bytes: u64,
    /// Records folded into the aggregate.
    pub records: u64,
    /// Batches that failed to decode (truncated / corrupt / bad version).
    pub decode_errors: u64,
    /// Batches dropped by the per-device sequence dedup.
    pub duplicate_batches: u64,
    /// Identical records collapsed within accepted batches.
    pub duplicate_records: u64,
    /// Records dropped by §2.1 noise filtering (rational-rejection causes).
    pub filtered_noise: u64,
    /// Records older than the shard watermark minus the lateness window.
    pub late_records: u64,
    /// Accepted batches whose newest record predates the shard watermark.
    pub out_of_order_batches: u64,
}

impl Merge for IngestCounters {
    fn merge(&mut self, o: Self) {
        self.batches += o.batches;
        self.bytes += o.bytes;
        self.records += o.records;
        self.decode_errors += o.decode_errors;
        self.duplicate_batches += o.duplicate_batches;
        self.duplicate_records += o.duplicate_records;
        self.filtered_noise += o.filtered_noise;
        self.late_records += o.late_records;
        self.out_of_order_batches += o.out_of_order_batches;
    }
}

/// The constant-memory aggregate a shard (and, merged, the fleet) keeps.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct IngestAggregate {
    /// Records aggregated.
    pub records: u64,
    /// Counts by kind (index = `FailureKind::index`).
    pub by_kind: [u64; 5],
    /// Counts by ISP.
    pub by_isp: [u64; 3],
    /// Counts by RAT.
    pub by_rat: [u64; 4],
    /// Exact total duration, integer milliseconds.
    pub duration_ms_total: u64,
    /// Failures shorter than 30 s (§3.1's 70.8 % headline).
    pub under_30s: u64,
    /// Longest single failure, milliseconds.
    pub max_duration_ms: u64,
    /// Duration sketch over all kinds (milliseconds).
    pub sketch_all: QuantileSketch,
    /// Per-kind duration sketches (Figs. 6–7 CDm inputs).
    pub sketch_by_kind: [QuantileSketch; 5],
}

impl IngestAggregate {
    /// Fold one record in.
    pub fn push(&mut self, e: &FailureEvent) {
        let ms = e.duration.as_millis();
        self.records += 1;
        self.by_kind[e.kind.index()] += 1;
        self.by_isp[e.ctx.isp.index()] += 1;
        self.by_rat[e.ctx.rat.index()] += 1;
        self.duration_ms_total += ms;
        if ms < 30_000 {
            self.under_30s += 1;
        }
        self.max_duration_ms = self.max_duration_ms.max(ms);
        self.sketch_all.push(ms);
        self.sketch_by_kind[e.kind.index()].push(ms);
    }

    /// Absorb into a content digest.
    pub fn absorb_into(&self, d: &mut Digest64) {
        d.write_u64(self.records);
        for c in self.by_kind.iter().chain(&self.by_isp).chain(&self.by_rat) {
            d.write_u64(*c);
        }
        d.write_u64(self.duration_ms_total);
        d.write_u64(self.under_30s);
        d.write_u64(self.max_duration_ms);
        self.sketch_all.absorb_into(d);
        for s in &self.sketch_by_kind {
            s.absorb_into(d);
        }
    }
}

impl Merge for IngestAggregate {
    fn merge(&mut self, o: Self) {
        self.records += o.records;
        self.by_kind.merge(o.by_kind);
        self.by_isp.merge(o.by_isp);
        self.by_rat.merge(o.by_rat);
        self.duration_ms_total += o.duration_ms_total;
        self.under_30s += o.under_30s;
        self.max_duration_ms = self.max_duration_ms.max(o.max_duration_ms);
        self.sketch_all.merge(o.sketch_all);
        let [a, b, c, d, e] = o.sketch_by_kind;
        self.sketch_by_kind[0].merge(a);
        self.sketch_by_kind[1].merge(b);
        self.sketch_by_kind[2].merge(c);
        self.sketch_by_kind[3].merge(d);
        self.sketch_by_kind[4].merge(e);
    }
}

/// One virtual shard's deterministic state.
#[derive(Debug, Clone, Default, PartialEq)]
pub(crate) struct ShardState {
    pub(crate) agg: IngestAggregate,
    pub(crate) counters: IngestCounters,
    /// Per-device last accepted upload sequence number (dedup).
    pub(crate) last_seq: BTreeMap<u32, u64>,
    /// High-water mark over accepted record timestamps, ms.
    pub(crate) watermark_ms: u64,
}

impl ShardState {
    /// Decode and fold one routed batch.
    fn accept(&mut self, bytes: &[u8], lateness_ms: u64) {
        self.accept_with(bytes, lateness_ms, &mut ());
    }

    /// Decode and fold one routed batch, echoing each accepted record into
    /// `sink` (after dedup and noise filtering, before anything else sees it).
    fn accept_with<S: AcceptedSink>(&mut self, bytes: &[u8], lateness_ms: u64, sink: &mut S) {
        let batch = match decode_batch(bytes) {
            Ok(b) => b,
            Err(_) => {
                self.counters.decode_errors += 1;
                return;
            }
        };
        // Per-device sequence dedup: a re-delivered (or replayed) batch
        // carries a seq at or below the last accepted one.
        if let Some(&last) = self.last_seq.get(&batch.device.0) {
            if batch.seq <= last {
                self.counters.duplicate_batches += 1;
                return;
            }
        }
        self.last_seq.insert(batch.device.0, batch.seq);
        self.counters.batches += 1;
        self.counters.bytes += bytes.len() as u64;

        let batch_max = batch
            .records
            .iter()
            .map(|e| e.start.as_millis())
            .max()
            .unwrap_or(0);
        if !batch.records.is_empty() && batch_max < self.watermark_ms {
            self.counters.out_of_order_batches += 1;
        }

        let mut prev: Option<&FailureEvent> = None;
        for e in &batch.records {
            // Canonical order puts identical records adjacent.
            if prev == Some(e) {
                self.counters.duplicate_records += 1;
                continue;
            }
            prev = Some(e);
            if e.cause_is_false_positive() {
                self.counters.filtered_noise += 1;
                continue;
            }
            if e.start.as_millis() + lateness_ms < self.watermark_ms {
                self.counters.late_records += 1;
            }
            self.counters.records += 1;
            self.agg.push(e);
            sink.accepted(e);
        }
        self.watermark_ms = self.watermark_ms.max(batch_max);
    }

    fn absorb_into(&self, d: &mut Digest64) {
        self.agg.absorb_into(d);
        d.write_u64(self.counters.batches);
        d.write_u64(self.counters.bytes);
        d.write_u64(self.counters.records);
        d.write_u64(self.counters.decode_errors);
        d.write_u64(self.counters.duplicate_batches);
        d.write_u64(self.counters.duplicate_records);
        d.write_u64(self.counters.filtered_noise);
        d.write_u64(self.counters.late_records);
        d.write_u64(self.counters.out_of_order_batches);
        d.write_u64(self.watermark_ms);
        d.write_u64(self.last_seq.len() as u64);
        for (&dev, &seq) in &self.last_seq {
            d.write_u64(u64::from(dev));
            d.write_u64(seq);
        }
    }
}

/// The collector: virtual-sharded ingestion state.
#[derive(Debug, Clone, PartialEq)]
pub struct Collector {
    pub(crate) virtual_shards: usize,
    pub(crate) lateness_ms: u64,
    pub(crate) shards: Vec<ShardState>,
    /// Batches whose header could not even be peeked for routing.
    pub(crate) unroutable: u64,
}

impl Collector {
    /// Fresh collector for a config.
    pub fn new(cfg: &CollectorConfig) -> Self {
        let vs = cfg.virtual_shards.max(1);
        Collector {
            virtual_shards: vs,
            lateness_ms: cfg.lateness.as_millis(),
            shards: vec![ShardState::default(); vs],
            unroutable: 0,
        }
    }

    /// The virtual shard a device's batches route to.
    pub fn shard_of(&self, device: DeviceId) -> usize {
        device.0 as usize % self.virtual_shards
    }

    /// Ingest one encoded batch (the sequential path).
    pub fn ingest(&mut self, bytes: &[u8]) {
        match peek_device(bytes) {
            Ok(device) => {
                let shard = self.shard_of(device);
                self.shards[shard].accept(bytes, self.lateness_ms);
            }
            Err(_) => self.unroutable += 1,
        }
    }

    /// Ingest one encoded batch, echoing accepted records into `sink`.
    /// Sequential counterpart of [`run_ingest_with`]; with a single shared
    /// sink the observation order is batch arrival order.
    pub fn ingest_with<S: AcceptedSink>(&mut self, bytes: &[u8], sink: &mut S) {
        match peek_device(bytes) {
            Ok(device) => {
                let shard = self.shard_of(device);
                self.shards[shard].accept_with(bytes, self.lateness_ms, sink);
            }
            Err(_) => self.unroutable += 1,
        }
    }

    /// Devices seen so far (shards partition devices, so this is exact).
    pub fn devices(&self) -> u64 {
        self.shards.iter().map(|s| s.last_seq.len() as u64).sum()
    }

    /// The collector-wide event-time watermark: the newest accepted record
    /// timestamp across all shards, in ms. Monotone over ingestion; a
    /// streaming consumer seals a time window once the watermark has moved
    /// past its end by the lateness bound.
    pub fn watermark_ms(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.watermark_ms)
            .max()
            .unwrap_or(0)
    }

    /// Per-shard event-time watermarks in shard-index order (ms). The
    /// fleet watermark in [`Collector::watermark_ms`] is their max.
    pub fn shard_watermarks_ms(&self) -> Vec<u64> {
        self.shards.iter().map(|s| s.watermark_ms).collect()
    }

    /// Content digest over the full collector state, folding shards in
    /// index order — bit-identical at any worker count.
    pub fn digest(&self) -> u64 {
        let mut d = Digest64::new();
        d.write_u64(self.virtual_shards as u64);
        d.write_u64(self.lateness_ms);
        d.write_u64(self.unroutable);
        for s in &self.shards {
            s.absorb_into(&mut d);
        }
        d.finish()
    }

    /// Mirror the collector's stream bookkeeping into a telemetry registry:
    /// batches decoded, records deduped/filtered/late, and the fleet
    /// duration sketch as an `ingest.duration` histogram. Shard workers
    /// keep their own deterministic counters during the run (telemetry
    /// handles are single-threaded by design), so the mirror is taken from
    /// the folded state — bit-identical at any worker count.
    pub fn record_metrics(&self, tele: &Telemetry) {
        if !tele.is_enabled() {
            return;
        }
        let r = self.report();
        let c = &r.counters;
        for (name, v) in [
            ("ingest.batches", c.batches),
            ("ingest.bytes", c.bytes),
            ("ingest.records", c.records),
            ("ingest.decode_errors", c.decode_errors),
            ("ingest.duplicate_batches", c.duplicate_batches),
            ("ingest.duplicate_records", c.duplicate_records),
            ("ingest.filtered_noise", c.filtered_noise),
            ("ingest.late_records", c.late_records),
            ("ingest.out_of_order_batches", c.out_of_order_batches),
            ("ingest.unroutable", r.unroutable),
            ("ingest.devices", r.devices),
        ] {
            tele.add(name, v);
        }
        tele.merge_histogram("ingest.duration", r.aggregate.sketch_all);
    }

    /// Merge shard states into the fleet-level report.
    pub fn report(&self) -> IngestReport {
        let mut aggregate = IngestAggregate::default();
        let mut counters = IngestCounters::default();
        for s in &self.shards {
            aggregate.merge(s.agg.clone());
            counters.merge(s.counters);
        }
        IngestReport {
            aggregate,
            counters,
            devices: self.devices(),
            unroutable: self.unroutable,
            digest: self.digest(),
        }
    }
}

/// The fleet-level ingestion summary.
#[derive(Debug, Clone)]
pub struct IngestReport {
    /// Merged aggregate across all shards.
    pub aggregate: IngestAggregate,
    /// Summed stream counters.
    pub counters: IngestCounters,
    /// Distinct uploading devices.
    pub devices: u64,
    /// Batches that could not be routed (unreadable header).
    pub unroutable: u64,
    /// The collector state digest (see [`Collector::digest`]).
    pub digest: u64,
}

impl IngestReport {
    /// Mean encoded bytes per accepted record.
    pub fn bytes_per_record(&self) -> f64 {
        if self.counters.records == 0 {
            0.0
        } else {
            self.counters.bytes as f64 / self.counters.records as f64
        }
    }

    /// Human-readable summary block.
    pub fn render(&self) -> String {
        let c = &self.counters;
        let mut out = String::new();
        out.push_str(&format!(
            "devices {} | batches {} | records {} | encoded {} B ({:.1} B/record vs {} raw)\n",
            self.devices,
            c.batches,
            c.records,
            c.bytes,
            self.bytes_per_record(),
            crate::codec::RAW_RECORD_BYTES,
        ));
        out.push_str(&format!(
            "dedup: {} dup batches, {} dup records | noise filtered {} | late {} | ooo batches {} | decode errors {} | unroutable {}\n",
            c.duplicate_batches,
            c.duplicate_records,
            c.filtered_noise,
            c.late_records,
            c.out_of_order_batches,
            c.decode_errors,
            self.unroutable,
        ));
        let a = &self.aggregate;
        if let (Some(p50), Some(p90), Some(p99)) = (
            a.sketch_all.quantile(0.50),
            a.sketch_all.quantile(0.90),
            a.sketch_all.quantile(0.99),
        ) {
            out.push_str(&format!(
                "duration p50 {:.1} s | p90 {:.1} s | p99 {:.1} s | max {:.1} s | <30 s {:.1}%\n",
                p50 as f64 / 1000.0,
                p90 as f64 / 1000.0,
                p99 as f64 / 1000.0,
                a.max_duration_ms as f64 / 1000.0,
                if a.records > 0 {
                    a.under_30s as f64 / a.records as f64 * 100.0
                } else {
                    0.0
                },
            ));
        }
        out
    }
}

/// Run the full ingestion pipeline: `produce` emits encoded batches on the
/// caller's thread; up to `cfg.workers` scoped worker threads decode and
/// aggregate behind bounded channels. Returns the finished [`Collector`]
/// (its [`Collector::digest`] is independent of the worker count).
pub fn run_ingest<F>(cfg: &CollectorConfig, produce: F) -> Collector
where
    F: FnOnce(&mut dyn FnMut(Vec<u8>)),
{
    run_ingest_with(cfg, || (), produce).0
}

/// [`run_ingest`] with a downstream [`AcceptedSink`] attached.
///
/// `make_sink` builds one sink **per virtual shard** (created lazily on the
/// owning worker when the shard first accepts a record); after the run the
/// per-shard sinks are folded in shard-index order into one. Because shard
/// routing, per-shard record order, and the fold order are all independent
/// of the worker count, the folded sink observes the exact same
/// deterministic sequence at 1, 2, or 8 workers — the same argument that
/// makes [`Collector::digest`] thread-invariant.
pub fn run_ingest_with<S, MS, F>(cfg: &CollectorConfig, make_sink: MS, produce: F) -> (Collector, S)
where
    S: AcceptedSink + Merge + Send,
    MS: Fn() -> S + Sync,
    F: FnOnce(&mut dyn FnMut(Vec<u8>)),
{
    let vs = cfg.virtual_shards.max(1);
    let workers = resolve_threads(cfg.workers).min(vs);
    let lateness_ms = cfg.lateness.as_millis();
    let mut unroutable = 0u64;
    let mut shards: Vec<ShardState> = vec![ShardState::default(); vs];
    let mut sinks: BTreeMap<u32, S> = BTreeMap::new();

    if workers <= 1 {
        let mut emit = |bytes: Vec<u8>| match peek_device(&bytes) {
            Ok(device) => {
                let shard = device.0 as usize % vs;
                let sink = sinks.entry(shard as u32).or_insert_with(&make_sink);
                shards[shard].accept_with(&bytes, lateness_ms, sink);
            }
            Err(_) => unroutable += 1,
        };
        produce(&mut emit);
    } else {
        std::thread::scope(|scope| {
            let make_sink = &make_sink;
            let mut senders = Vec::with_capacity(workers);
            let mut handles = Vec::with_capacity(workers);
            for _ in 0..workers {
                let (tx, rx) = sync_channel::<(u32, Vec<u8>)>(cfg.queue_depth.max(1));
                senders.push(tx);
                handles.push(scope.spawn(move || {
                    let mut owned: BTreeMap<u32, (ShardState, S)> = BTreeMap::new();
                    while let Ok((shard, bytes)) = rx.recv() {
                        let (state, sink) = owned
                            .entry(shard)
                            .or_insert_with(|| (ShardState::default(), make_sink()));
                        state.accept_with(&bytes, lateness_ms, sink);
                    }
                    owned
                }));
            }

            // Producer runs on the caller's thread; a full worker queue blocks
            // the send — that *is* the backpressure.
            let mut emit = |bytes: Vec<u8>| match peek_device(&bytes) {
                Ok(device) => {
                    let shard = device.0 as usize % vs;
                    senders[shard % workers]
                        .send((shard as u32, bytes))
                        .expect("ingest worker hung up");
                }
                Err(_) => unroutable += 1,
            };
            produce(&mut emit);
            drop(senders);

            for h in handles {
                let owned = h.join().expect("ingest worker panicked");
                for (shard, (state, sink)) in owned {
                    shards[shard as usize] = state;
                    sinks.insert(shard, sink);
                }
            }
        });
    }

    let mut folded = make_sink();
    for (_, s) in sinks {
        folded.merge(s);
    }
    (
        Collector {
            virtual_shards: vs,
            lateness_ms,
            shards,
            unroutable,
        },
        folded,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::encode_batch;
    use cellrel_types::{
        Apn, BsId, DataFailCause, FailureKind, InSituInfo, Isp, Rat, SignalLevel, SimTime,
    };

    fn ev(device: u32, start_s: u64, dur_s: u64, kind: FailureKind) -> FailureEvent {
        FailureEvent {
            device: DeviceId(device),
            kind,
            start: SimTime::from_secs(start_s),
            duration: SimDuration::from_secs(dur_s),
            cause: (kind == FailureKind::DataSetupError).then_some(DataFailCause::SignalLost),
            ctx: InSituInfo {
                rat: Rat::G4,
                signal: SignalLevel::L3,
                apn: Apn::Internet,
                bs: Some(BsId::gsm_cn(0, 7, 7)),
                isp: Isp::A,
            },
        }
    }

    fn batches(devices: u32, per_device: u64) -> Vec<Vec<u8>> {
        let mut out = Vec::new();
        for d in 0..devices {
            let records: Vec<FailureEvent> = (0..per_device)
                .map(|i| {
                    ev(
                        d,
                        100 * i + u64::from(d),
                        5 + i % 40,
                        if i % 2 == 0 {
                            FailureKind::DataStall
                        } else {
                            FailureKind::DataSetupError
                        },
                    )
                })
                .collect();
            out.push(encode_batch(DeviceId(d), 0, &records));
        }
        out
    }

    #[test]
    fn sequential_and_parallel_digests_match() {
        let cfg = CollectorConfig::default();
        let data = batches(200, 12);
        let mut seq = Collector::new(&cfg);
        for b in &data {
            seq.ingest(b);
        }
        for workers in [1usize, 2, 8] {
            let cfg = CollectorConfig {
                workers,
                ..CollectorConfig::default()
            };
            let par = run_ingest(&cfg, |emit| {
                for b in &data {
                    emit(b.clone());
                }
            });
            assert_eq!(par.digest(), seq.digest(), "workers={workers}");
        }
    }

    #[test]
    fn accepted_sink_sees_the_same_stream_at_any_worker_count() {
        let data = batches(60, 8);
        let mut first: Option<Vec<FailureEvent>> = None;
        for workers in [1usize, 2, 8] {
            let cfg = CollectorConfig {
                workers,
                ..CollectorConfig::default()
            };
            let (c, sink) = run_ingest_with(&cfg, Vec::new, |emit| {
                for b in &data {
                    emit(b.clone());
                }
            });
            // The sink observes exactly the accepted records (post-dedup,
            // post-noise-filter), in a worker-count-independent order.
            assert_eq!(sink.len() as u64, c.report().counters.records);
            match &first {
                None => first = Some(sink),
                Some(f) => assert_eq!(&sink, f, "workers={workers}"),
            }
        }
    }

    #[test]
    fn sequential_sink_skips_noise_and_duplicates() {
        let cfg = CollectorConfig::default();
        let mut c = Collector::new(&cfg);
        let mut sink: Vec<FailureEvent> = Vec::new();
        let mut noisy = ev(1, 10, 5, FailureKind::DataSetupError);
        noisy.cause = Some(DataFailCause::InsufficientResources);
        let keep = ev(1, 20, 5, FailureKind::DataStall);
        let b = encode_batch(DeviceId(1), 0, &[noisy, keep, keep]);
        c.ingest_with(&b, &mut sink);
        assert_eq!(sink, vec![keep]);
    }

    #[test]
    fn duplicate_batches_are_dropped_by_seq() {
        let cfg = CollectorConfig::default();
        let mut c = Collector::new(&cfg);
        let b0 = encode_batch(DeviceId(1), 0, &[ev(1, 10, 5, FailureKind::DataStall)]);
        let b1 = encode_batch(DeviceId(1), 1, &[ev(1, 20, 5, FailureKind::DataStall)]);
        c.ingest(&b0);
        c.ingest(&b0); // redelivery
        c.ingest(&b1);
        c.ingest(&b0); // stale replay
        let r = c.report();
        assert_eq!(r.counters.batches, 2);
        assert_eq!(r.counters.duplicate_batches, 2);
        assert_eq!(r.aggregate.records, 2);
    }

    #[test]
    fn intra_batch_duplicates_collapse() {
        let cfg = CollectorConfig::default();
        let mut c = Collector::new(&cfg);
        let e = ev(1, 10, 5, FailureKind::DataStall);
        let b = encode_batch(DeviceId(1), 0, &[e, e, e]);
        c.ingest(&b);
        let r = c.report();
        assert_eq!(r.aggregate.records, 1);
        assert_eq!(r.counters.duplicate_records, 2);
    }

    #[test]
    fn noise_is_filtered_by_cause_class() {
        let cfg = CollectorConfig::default();
        let mut c = Collector::new(&cfg);
        let mut noisy = ev(1, 10, 5, FailureKind::DataSetupError);
        noisy.cause = Some(DataFailCause::InsufficientResources); // BS overload
        let b = encode_batch(
            DeviceId(1),
            0,
            &[noisy, ev(1, 20, 5, FailureKind::DataStall)],
        );
        c.ingest(&b);
        let r = c.report();
        assert_eq!(r.counters.filtered_noise, 1);
        assert_eq!(r.aggregate.records, 1);
    }

    #[test]
    fn late_records_are_counted_not_dropped() {
        let cfg = CollectorConfig {
            lateness: SimDuration::from_mins(10),
            virtual_shards: 1,
            ..CollectorConfig::default()
        };
        let mut c = Collector::new(&cfg);
        // Device 1 advances the watermark to t=2h.
        c.ingest(&encode_batch(
            DeviceId(0),
            0,
            &[ev(0, 7200, 5, FailureKind::DataStall)],
        ));
        // Device 2's record from t=10s is far behind the watermark.
        c.ingest(&encode_batch(
            DeviceId(1),
            0,
            &[ev(1, 10, 5, FailureKind::DataStall)],
        ));
        let r = c.report();
        assert_eq!(r.counters.late_records, 1);
        assert_eq!(r.counters.out_of_order_batches, 1);
        assert_eq!(r.aggregate.records, 2, "late records still aggregate");
    }

    #[test]
    fn corrupt_batches_count_as_decode_errors() {
        let cfg = CollectorConfig::default();
        let mut c = Collector::new(&cfg);
        let mut b = encode_batch(DeviceId(1), 0, &[ev(1, 10, 5, FailureKind::DataStall)]);
        let n = b.len();
        b[n - 1] ^= 0xff; // break the CRC
        c.ingest(&b);
        assert_eq!(c.report().counters.decode_errors, 1);
        // A header too short to route at all:
        c.ingest(&[0x00]);
        assert_eq!(c.report().unroutable, 1);
    }

    #[test]
    fn report_counts_devices_and_bytes() {
        let cfg = CollectorConfig::default();
        let data = batches(50, 10);
        let total_bytes: u64 = data.iter().map(|b| b.len() as u64).sum();
        let mut c = Collector::new(&cfg);
        for b in &data {
            c.ingest(b);
        }
        let r = c.report();
        assert_eq!(r.devices, 50);
        assert_eq!(r.counters.bytes, total_bytes);
        assert_eq!(r.counters.records, 500);
        assert!(r.bytes_per_record() < crate::codec::RAW_RECORD_BYTES as f64);
        assert!(r.render().contains("devices 50"));
    }
}
