//! Checkpoint / restore of collector state.
//!
//! A 243-day campaign's ingestion should survive a backend restart without
//! replaying months of uploads, so the full collector state — per-shard
//! aggregates, sketches (in sparse form), dedup maps, and watermarks —
//! serializes to a versioned byte format framed exactly like the wire
//! codec: magic + version up front, CRC-32 at the back, varints throughout.
//! Restoring a checkpoint and continuing a stream produces the same digest
//! as ingesting the whole stream in one run (the pipeline test asserts it).
//!
//! ```text
//! ckpt  := "CK" version:u8 virtual_shards:varint lateness_ms:varint
//!          unroutable:varint shard* crc32:u32le
//! shard := counters:varint^9 watermark:varint
//!          nseq:varint (device:varint seq:varint)*
//!          agg
//! agg   := records:varint by_kind:varint^5 by_isp:varint^3 by_rat:varint^4
//!          duration_ms_total:varint under_30s:varint max_duration_ms:varint
//!          sketch sketch^5
//! sketch:= count:varint min:varint max:varint nnz:varint
//!          (delta_index:varint count:varint)*
//! ```
//!
//! Sketches serialize sparsely — only non-empty buckets, with delta-coded
//! indices — so an idle shard costs a handful of bytes, not 58 KiB.
//! Restore is total: corrupt or truncated checkpoints yield a
//! [`DecodeError`], never a panic or a half-restored collector.

use crate::codec::{crc32, read_varint, write_varint, DecodeError};
use crate::collector::{Collector, IngestAggregate, IngestCounters, ShardState};
use cellrel_sim::sketch::QuantileSketch;
use std::collections::BTreeMap;

/// Checkpoint framing magic.
pub const CKPT_MAGIC: [u8; 2] = *b"CK";
/// Current checkpoint format version.
pub const CKPT_VERSION: u8 = 1;

fn write_sketch(out: &mut Vec<u8>, s: &QuantileSketch) {
    write_varint(out, s.count());
    write_varint(out, s.min().unwrap_or(0));
    write_varint(out, s.max().unwrap_or(0));
    let pairs: Vec<(usize, u64)> = s.nonzero_buckets().collect();
    write_varint(out, pairs.len() as u64);
    let mut prev = 0usize;
    for (i, c) in pairs {
        write_varint(out, (i - prev) as u64);
        prev = i;
        write_varint(out, c);
    }
}

fn read_sketch(bytes: &[u8], pos: &mut usize) -> Result<QuantileSketch, DecodeError> {
    let count = read_varint(bytes, pos)?;
    let min = read_varint(bytes, pos)?;
    let max = read_varint(bytes, pos)?;
    let nnz = read_varint(bytes, pos)?;
    // Each pair costs ≥ 2 bytes on the wire; bound before allocating.
    if nnz > (bytes.len() as u64) / 2 + 1 {
        return Err(DecodeError::InvalidField("sketch nnz"));
    }
    let mut pairs = Vec::with_capacity(nnz as usize);
    let mut index = 0u64;
    for i in 0..nnz {
        let delta = read_varint(bytes, pos)?;
        if i > 0 && delta == 0 {
            return Err(DecodeError::InvalidField("sketch index delta"));
        }
        index = index
            .checked_add(delta)
            .ok_or(DecodeError::InvalidField("sketch index"))?;
        let c = read_varint(bytes, pos)?;
        pairs.push((index as usize, c));
    }
    let s = QuantileSketch::from_parts(min, max, pairs)
        .ok_or(DecodeError::InvalidField("sketch buckets"))?;
    if s.count() != count {
        return Err(DecodeError::InvalidField("sketch count"));
    }
    Ok(s)
}

fn write_agg(out: &mut Vec<u8>, a: &IngestAggregate) {
    write_varint(out, a.records);
    for c in a.by_kind.iter().chain(&a.by_isp).chain(&a.by_rat) {
        write_varint(out, *c);
    }
    write_varint(out, a.duration_ms_total);
    write_varint(out, a.under_30s);
    write_varint(out, a.max_duration_ms);
    write_sketch(out, &a.sketch_all);
    for s in &a.sketch_by_kind {
        write_sketch(out, s);
    }
}

fn read_agg(bytes: &[u8], pos: &mut usize) -> Result<IngestAggregate, DecodeError> {
    let mut a = IngestAggregate {
        records: read_varint(bytes, pos)?,
        ..IngestAggregate::default()
    };
    for c in a
        .by_kind
        .iter_mut()
        .chain(&mut a.by_isp)
        .chain(&mut a.by_rat)
    {
        *c = read_varint(bytes, pos)?;
    }
    a.duration_ms_total = read_varint(bytes, pos)?;
    a.under_30s = read_varint(bytes, pos)?;
    a.max_duration_ms = read_varint(bytes, pos)?;
    a.sketch_all = read_sketch(bytes, pos)?;
    for s in &mut a.sketch_by_kind {
        *s = read_sketch(bytes, pos)?;
    }
    Ok(a)
}

/// Serialize the collector's full state.
pub fn save_checkpoint(c: &Collector) -> Vec<u8> {
    let mut out = Vec::with_capacity(256);
    out.extend_from_slice(&CKPT_MAGIC);
    out.push(CKPT_VERSION);
    write_varint(&mut out, c.virtual_shards as u64);
    write_varint(&mut out, c.lateness_ms);
    write_varint(&mut out, c.unroutable);
    for s in &c.shards {
        let k = &s.counters;
        for v in [
            k.batches,
            k.bytes,
            k.records,
            k.decode_errors,
            k.duplicate_batches,
            k.duplicate_records,
            k.filtered_noise,
            k.late_records,
            k.out_of_order_batches,
        ] {
            write_varint(&mut out, v);
        }
        write_varint(&mut out, s.watermark_ms);
        write_varint(&mut out, s.last_seq.len() as u64);
        for (&dev, &seq) in &s.last_seq {
            write_varint(&mut out, u64::from(dev));
            write_varint(&mut out, seq);
        }
        write_agg(&mut out, &s.agg);
    }
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Rebuild a collector from checkpoint bytes. Total: malformed input yields
/// a [`DecodeError`].
pub fn restore_checkpoint(bytes: &[u8]) -> Result<Collector, DecodeError> {
    if bytes.len() < CKPT_MAGIC.len() + 1 + 4 {
        return Err(DecodeError::Truncated);
    }
    let (payload, trailer) = bytes.split_at(bytes.len() - 4);
    if payload[..2] != CKPT_MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let stored = u32::from_le_bytes([trailer[0], trailer[1], trailer[2], trailer[3]]);
    let computed = crc32(payload);
    if computed != stored {
        return Err(DecodeError::BadCrc { computed, stored });
    }
    let mut pos = 2;
    let version = payload[pos];
    pos += 1;
    if version != CKPT_VERSION {
        return Err(DecodeError::UnsupportedVersion(version));
    }
    let virtual_shards = read_varint(payload, &mut pos)?;
    if virtual_shards == 0 || virtual_shards > 1 << 20 {
        return Err(DecodeError::InvalidField("virtual_shards"));
    }
    let lateness_ms = read_varint(payload, &mut pos)?;
    let unroutable = read_varint(payload, &mut pos)?;
    let mut shards = Vec::with_capacity(virtual_shards as usize);
    for _ in 0..virtual_shards {
        let mut k = IngestCounters::default();
        for v in [
            &mut k.batches,
            &mut k.bytes,
            &mut k.records,
            &mut k.decode_errors,
            &mut k.duplicate_batches,
            &mut k.duplicate_records,
            &mut k.filtered_noise,
            &mut k.late_records,
            &mut k.out_of_order_batches,
        ] {
            *v = read_varint(payload, &mut pos)?;
        }
        let watermark_ms = read_varint(payload, &mut pos)?;
        let nseq = read_varint(payload, &mut pos)?;
        // Each entry costs ≥ 2 bytes; bound before allocating.
        if nseq > (payload.len() as u64) / 2 + 1 {
            return Err(DecodeError::InvalidField("nseq"));
        }
        let mut last_seq = BTreeMap::new();
        for _ in 0..nseq {
            let dev = read_varint(payload, &mut pos)?;
            let dev = u32::try_from(dev).map_err(|_| DecodeError::InvalidField("device"))?;
            let seq = read_varint(payload, &mut pos)?;
            last_seq.insert(dev, seq);
        }
        let agg = read_agg(payload, &mut pos)?;
        shards.push(ShardState {
            agg,
            counters: k,
            last_seq,
            watermark_ms,
        });
    }
    if pos != payload.len() {
        return Err(DecodeError::TrailingBytes);
    }
    Ok(Collector {
        virtual_shards: virtual_shards as usize,
        lateness_ms,
        shards,
        unroutable,
    })
}

/// [`save_checkpoint`] with telemetry: counts the save and the encoded
/// bytes under `ingest.checkpoint.*`.
pub fn save_checkpoint_with(c: &Collector, tele: &cellrel_sim::Telemetry) -> Vec<u8> {
    let bytes = save_checkpoint(c);
    tele.inc("ingest.checkpoint.save");
    tele.add("ingest.checkpoint.save_bytes", bytes.len() as u64);
    bytes
}

/// [`restore_checkpoint`] with telemetry: counts successful restores and
/// typed-error rejections under `ingest.checkpoint.*`.
pub fn restore_checkpoint_with(
    bytes: &[u8],
    tele: &cellrel_sim::Telemetry,
) -> Result<Collector, DecodeError> {
    match restore_checkpoint(bytes) {
        Ok(c) => {
            tele.inc("ingest.checkpoint.restore");
            Ok(c)
        }
        Err(e) => {
            tele.inc("ingest.checkpoint.restore_error");
            Err(e)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::encode_batch;
    use crate::collector::CollectorConfig;
    use cellrel_types::{
        Apn, BsId, DeviceId, FailureEvent, FailureKind, InSituInfo, Isp, Rat, SignalLevel,
        SimDuration, SimTime,
    };

    fn ev(device: u32, start_s: u64, dur_s: u64) -> FailureEvent {
        FailureEvent {
            device: DeviceId(device),
            kind: FailureKind::DataStall,
            start: SimTime::from_secs(start_s),
            duration: SimDuration::from_secs(dur_s),
            cause: None,
            ctx: InSituInfo {
                rat: Rat::G4,
                signal: SignalLevel::L2,
                apn: Apn::Internet,
                bs: Some(BsId::gsm_cn(0, 3, 9)),
                isp: Isp::C,
            },
        }
    }

    fn populated() -> Collector {
        let cfg = CollectorConfig {
            virtual_shards: 8,
            ..CollectorConfig::default()
        };
        let mut c = Collector::new(&cfg);
        for d in 0..40u32 {
            let records: Vec<FailureEvent> = (0..6)
                .map(|i| ev(d, 100 * i + u64::from(d), 3 + i))
                .collect();
            c.ingest(&encode_batch(DeviceId(d), 0, &records));
        }
        c
    }

    #[test]
    fn round_trip_preserves_digest() {
        let c = populated();
        let bytes = save_checkpoint(&c);
        let r = restore_checkpoint(&bytes).expect("restore");
        assert_eq!(r.digest(), c.digest());
        assert_eq!(r.report().counters, c.report().counters);
    }

    #[test]
    fn restored_collector_continues_identically() {
        let mut full = populated();
        let mut resumed = restore_checkpoint(&save_checkpoint(&populated())).unwrap();
        for d in 0..40u32 {
            let b = encode_batch(DeviceId(d), 1, &[ev(d, 10_000 + u64::from(d), 9)]);
            full.ingest(&b);
            resumed.ingest(&b);
        }
        assert_eq!(full.digest(), resumed.digest());
    }

    #[test]
    fn empty_collector_round_trips_small() {
        let c = Collector::new(&CollectorConfig::default());
        let bytes = save_checkpoint(&c);
        // ~51 bytes per empty shard (sparse sketches), not 58 KiB each.
        assert!(
            bytes.len() < 4096,
            "empty checkpoint is {} bytes",
            bytes.len()
        );
        let r = restore_checkpoint(&bytes).unwrap();
        assert_eq!(r.digest(), c.digest());
    }

    #[test]
    fn corruption_and_truncation_are_errors() {
        let bytes = save_checkpoint(&populated());
        for cut in 0..bytes.len().min(64) {
            assert!(restore_checkpoint(&bytes[..cut]).is_err());
        }
        for i in (0..bytes.len()).step_by(7) {
            let mut bad = bytes.clone();
            bad[i] ^= 0x20;
            assert!(restore_checkpoint(&bad).is_err(), "flip at {i} undetected");
        }
    }

    #[test]
    fn wrong_version_is_rejected() {
        let mut bytes = save_checkpoint(&Collector::new(&CollectorConfig::default()));
        bytes[2] = 99;
        let n = bytes.len();
        let crc = crc32(&bytes[..n - 4]).to_le_bytes();
        bytes[n - 4..].copy_from_slice(&crc);
        assert_eq!(
            restore_checkpoint(&bytes),
            Err(DecodeError::UnsupportedVersion(99))
        );
    }
}
