//! # cellrel-telephony
//!
//! A faithful clone of Android's cellular connection management — the system
//! whose software defects the paper identifies as a primary root cause of
//! cellular failures, and the system its two deployed enhancements patch.
//!
//! * [`data_connection`] — the five-state `DataConnection` life-cycle state
//!   machine of Fig. 1 (Inactive / Activating / Retrying / Active /
//!   Disconnecting).
//! * [`dc_tracker`] — `DcTracker`: drives setups through the modem, applies
//!   the retry schedule, distinguishes permanent causes.
//! * [`apn_manager`] — one `DcTracker` per enabled APN (internet / IMS /
//!   MMS), priority-ordered as Android manages its PDN contexts.
//! * [`service_state`] — `ServiceStateTracker`: Out_of_Service detection.
//! * [`stall`] — the vanilla Data_Stall detector over kernel TCP counters.
//! * [`recovery`] — the three-stage progressive recovery mechanism with
//!   configurable probations: vanilla (60/60/60 s) and the TIMP-optimised
//!   trigger (21/6/16 s) are both just configurations.
//! * [`rat_policy`] — RAT selection policies: Android 9, Android 10 (the
//!   blind-5G-preference defect), and the paper's Stability-Compatible
//!   policy with optional 4G/5G dual connectivity.
//! * [`events`] — the notification surface (`TelephonyEvent`) that
//!   Android-MOD instruments.
//! * [`device_sim`] — the full per-device discrete-event agent wiring
//!   radio + modem + netstack + this crate together; the micro-simulation
//!   driver used by experiments and integration tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod apn_manager;
pub mod data_connection;
pub mod dc_tracker;
pub mod device_sim;
pub mod events;
pub mod rat_policy;
pub mod recovery;
pub mod service_state;
pub mod sms;
pub mod stall;

pub use apn_manager::ApnManager;
pub use data_connection::{DataConnectionFsm, DcState};
pub use dc_tracker::{DcTracker, RetryPolicy};
pub use device_sim::{DeviceConfig, DeviceSim, DeviceStats, MobilityProfile, WorldEvent};
pub use events::{
    NullListener, RecordingBoth, RecordingListener, TelephonyEvent, TelephonyListener,
};
pub use rat_policy::{
    DualConnectivity, RatPolicyKind, RatSelectionPolicy, StabilityCompatible, VanillaAndroid10,
    VanillaAndroid11, VanillaAndroid9,
};
pub use recovery::{RecoveryAction, RecoveryConfig, RecoveryEngine};
pub use service_state::ServiceStateTracker;
pub use sms::{SmsResult, SmsService, VoiceService};
pub use stall::DataStallDetector;
