//! `ServiceStateTracker` — Out_of_Service detection.
//!
//! `Out_of_Service` (§1, §2.1): "the data connection has been established,
//! but the mobile device cannot receive cellular data". The tracker watches
//! the effective service condition and measures outage spans.

use cellrel_types::{ServiceState, SimDuration, SimTime};

/// Tracks the device's service state over time and measures
/// `Out_of_Service` episodes.
#[derive(Debug, Clone)]
pub struct ServiceStateTracker {
    state: ServiceState,
    outage_started: Option<SimTime>,
    completed_outages: Vec<(SimTime, SimDuration)>,
}

impl Default for ServiceStateTracker {
    fn default() -> Self {
        Self::new()
    }
}

impl ServiceStateTracker {
    /// A tracker starting in service.
    pub fn new() -> Self {
        ServiceStateTracker {
            state: ServiceState::InService,
            outage_started: None,
            completed_outages: Vec::new(),
        }
    }

    /// Current service state.
    pub fn state(&self) -> ServiceState {
        self.state
    }

    /// Whether an outage is in progress.
    pub fn in_outage(&self) -> bool {
        self.outage_started.is_some()
    }

    /// Completed outages as `(start, duration)`.
    pub fn outages(&self) -> &[(SimTime, SimDuration)] {
        &self.completed_outages
    }

    /// Update the service state; returns the finished outage duration when a
    /// transition closes an Out_of_Service episode.
    pub fn update(&mut self, now: SimTime, new_state: ServiceState) -> Option<SimDuration> {
        if new_state == self.state {
            return None;
        }
        let mut finished = None;
        // Entering an outage.
        if new_state == ServiceState::OutOfService && self.outage_started.is_none() {
            self.outage_started = Some(now);
        }
        // Leaving an outage (to anything but OutOfService; PowerOff ends the
        // *measured* outage because the user action supersedes it).
        if self.state == ServiceState::OutOfService {
            if let Some(start) = self.outage_started.take() {
                let d = now.since(start);
                self.completed_outages.push((start, d));
                finished = Some(d);
            }
        }
        self.state = new_state;
        finished
    }

    /// Total outage time accumulated so far (completed episodes only).
    pub fn total_outage(&self) -> SimDuration {
        self.completed_outages
            .iter()
            .fold(SimDuration::ZERO, |acc, &(_, d)| acc + d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn starts_in_service() {
        let sst = ServiceStateTracker::new();
        assert_eq!(sst.state(), ServiceState::InService);
        assert!(!sst.in_outage());
    }

    #[test]
    fn measures_outage_span() {
        let mut sst = ServiceStateTracker::new();
        assert_eq!(sst.update(t(10), ServiceState::OutOfService), None);
        assert!(sst.in_outage());
        let d = sst.update(t(95), ServiceState::InService);
        assert_eq!(d, Some(SimDuration::from_secs(85)));
        assert_eq!(sst.outages().len(), 1);
        assert_eq!(sst.total_outage(), SimDuration::from_secs(85));
    }

    #[test]
    fn repeated_same_state_is_noop() {
        let mut sst = ServiceStateTracker::new();
        sst.update(t(10), ServiceState::OutOfService);
        assert_eq!(sst.update(t(20), ServiceState::OutOfService), None);
        let d = sst.update(t(30), ServiceState::InService);
        assert_eq!(d, Some(SimDuration::from_secs(20)));
    }

    #[test]
    fn power_off_closes_outage() {
        let mut sst = ServiceStateTracker::new();
        sst.update(t(10), ServiceState::OutOfService);
        let d = sst.update(t(40), ServiceState::PowerOff);
        assert_eq!(d, Some(SimDuration::from_secs(30)));
        assert_eq!(sst.state(), ServiceState::PowerOff);
        assert!(!sst.in_outage());
    }

    #[test]
    fn multiple_outages_accumulate() {
        let mut sst = ServiceStateTracker::new();
        sst.update(t(0), ServiceState::OutOfService);
        sst.update(t(10), ServiceState::InService);
        sst.update(t(100), ServiceState::OutOfService);
        sst.update(t(130), ServiceState::InService);
        assert_eq!(sst.outages().len(), 2);
        assert_eq!(sst.total_outage(), SimDuration::from_secs(40));
    }

    #[test]
    fn emergency_only_is_not_an_outage_end_to_outage() {
        let mut sst = ServiceStateTracker::new();
        sst.update(t(0), ServiceState::EmergencyOnly);
        assert!(!sst.in_outage());
        sst.update(t(5), ServiceState::OutOfService);
        assert!(sst.in_outage());
    }
}
