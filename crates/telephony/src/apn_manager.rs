//! Multi-APN connection management.
//!
//! Android's `DcTracker` manages one data-connection context per enabled
//! APN — the default internet PDN plus IMS (VoLTE signalling), MMS and
//! supplementary contexts. [`ApnManager`] holds one [`DcTracker`] per
//! enabled APN with a priority order: the internet context is established
//! first (it carries the user's traffic and the study's failures), then the
//! auxiliary contexts.

use crate::dc_tracker::{DcTracker, RetryPolicy, SetupVerdict};
use cellrel_modem::Modem;
use cellrel_radio::RiskFactors;
use cellrel_sim::SimRng;
use cellrel_types::{Apn, SimTime};

/// Priority-ordered APN set for a consumer handset: internet first, then
/// IMS, then MMS.
pub const DEFAULT_APNS: [Apn; 3] = [Apn::Internet, Apn::Ims, Apn::Mms];

/// Per-APN connection management.
#[derive(Debug)]
pub struct ApnManager {
    trackers: Vec<DcTracker>,
}

impl ApnManager {
    /// Manager for the default consumer APN set.
    pub fn new() -> Self {
        Self::with_apns(&DEFAULT_APNS)
    }

    /// Manager for an explicit, priority-ordered APN list.
    pub fn with_apns(apns: &[Apn]) -> Self {
        assert!(!apns.is_empty(), "ApnManager needs at least one APN");
        ApnManager {
            trackers: apns
                .iter()
                .map(|&apn| DcTracker::new(apn, RetryPolicy::default()))
                .collect(),
        }
    }

    /// The tracker for an APN, if managed.
    pub fn tracker(&self, apn: Apn) -> Option<&DcTracker> {
        self.trackers.iter().find(|t| t.apn() == apn)
    }

    /// All managed trackers in priority order.
    pub fn trackers(&self) -> &[DcTracker] {
        &self.trackers
    }

    /// Drive one setup round: attempt every eligible (inactive, retriable)
    /// APN in priority order. Returns the per-APN verdicts of the attempts
    /// actually made this round.
    pub fn attempt_round(
        &mut self,
        modem: &mut Modem,
        risk: &RiskFactors,
        now: SimTime,
        rng: &mut SimRng,
    ) -> Vec<(Apn, SetupVerdict)> {
        let mut verdicts = Vec::new();
        for tracker in &mut self.trackers {
            if modem.call_for(tracker.apn()).is_some() || !tracker.can_attempt() {
                continue;
            }
            let verdict = tracker.attempt_setup(modem, risk, now, rng);
            verdicts.push((tracker.apn(), verdict));
        }
        verdicts
    }

    /// Tear everything down.
    pub fn disconnect_all(&mut self, modem: &mut Modem, now: SimTime) {
        for tracker in &mut self.trackers {
            tracker.disconnect(modem, now);
        }
        // Any bearer not owned by a tracker (shouldn't exist) goes too.
        modem.deactivate();
    }

    /// Reset all trackers (modem restart, recovery).
    pub fn reset_all(&mut self, now: SimTime) {
        for tracker in &mut self.trackers {
            tracker.reset(now);
        }
    }

    /// Number of APNs with an established bearer.
    pub fn active_count(&self, modem: &Modem) -> usize {
        self.trackers
            .iter()
            .filter(|t| modem.call_for(t.apn()).is_some())
            .count()
    }
}

impl Default for ApnManager {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cellrel_modem::FaultProfile;
    use cellrel_radio::{BsIndex, CellView};
    use cellrel_types::{DataFailCause, Rat, RssDbm};

    fn quiet_risk() -> RiskFactors {
        RiskFactors {
            signal_risk: 0.022,
            interference: 0.0,
            overload_prob: 0.0,
            emm_pressure: 0.0,
            disrepair: false,
        }
    }

    fn camped_modem() -> Modem {
        let mut m = Modem::new();
        m.camp_on(CellView::new(BsIndex(0), Rat::G4, RssDbm(-95.0)));
        m
    }

    #[test]
    fn round_establishes_all_default_apns() {
        let mut mgr = ApnManager::new();
        let mut modem = camped_modem();
        let mut rng = SimRng::new(1);
        let mut now = SimTime::ZERO;
        // A few rounds cover transient failures on a quiet cell.
        for i in 0..20 {
            mgr.attempt_round(&mut modem, &quiet_risk(), now, &mut rng);
            if mgr.active_count(&modem) == 3 {
                break;
            }
            now = SimTime::from_secs(10 * (i + 1));
        }
        assert_eq!(mgr.active_count(&modem), 3);
        assert!(modem.call_for(Apn::Internet).is_some());
        assert!(modem.call_for(Apn::Ims).is_some());
        assert!(modem.call_for(Apn::Mms).is_some());
    }

    #[test]
    fn internet_is_attempted_first() {
        let mut mgr = ApnManager::new();
        let mut modem = camped_modem();
        let mut rng = SimRng::new(2);
        let verdicts = mgr.attempt_round(&mut modem, &quiet_risk(), SimTime::ZERO, &mut rng);
        assert_eq!(verdicts.first().map(|v| v.0), Some(Apn::Internet));
    }

    #[test]
    fn established_apns_are_skipped_in_later_rounds() {
        let mut mgr = ApnManager::new();
        let mut modem = camped_modem();
        let mut rng = SimRng::new(3);
        let mut now = SimTime::ZERO;
        for i in 0..20 {
            mgr.attempt_round(&mut modem, &quiet_risk(), now, &mut rng);
            now = SimTime::from_secs(10 * (i + 1));
        }
        assert_eq!(mgr.active_count(&modem), 3);
        let verdicts = mgr.attempt_round(&mut modem, &quiet_risk(), now, &mut rng);
        assert!(verdicts.is_empty(), "no attempts once everything is up");
    }

    #[test]
    fn permanent_apn_failure_does_not_block_the_others() {
        let mut mgr = ApnManager::new();
        let mut modem = camped_modem();
        // Force every *new* setup to fail permanently, then lift the fault:
        // the first round kills internet permanently; later rounds still
        // bring up IMS and MMS.
        modem.set_fault(FaultProfile::forcing(DataFailCause::MissingUnknownApn));
        let mut rng = SimRng::new(4);
        let verdicts = mgr.attempt_round(&mut modem, &quiet_risk(), SimTime::ZERO, &mut rng);
        assert_eq!(verdicts.len(), 3);
        assert!(verdicts
            .iter()
            .all(|(_, v)| matches!(v, SetupVerdict::GaveUp(_))));

        modem.set_fault(FaultProfile::none());
        let mut now = SimTime::from_secs(10);
        for i in 0..20 {
            mgr.attempt_round(&mut modem, &quiet_risk(), now, &mut rng);
            now = SimTime::from_secs(10 * (i + 2));
        }
        // Trackers recover (Inactive is re-attemptable) and all come up.
        assert_eq!(mgr.active_count(&modem), 3);
    }

    #[test]
    fn disconnect_all_clears_everything() {
        let mut mgr = ApnManager::new();
        let mut modem = camped_modem();
        let mut rng = SimRng::new(5);
        let mut now = SimTime::ZERO;
        for i in 0..20 {
            mgr.attempt_round(&mut modem, &quiet_risk(), now, &mut rng);
            now = SimTime::from_secs(10 * (i + 1));
        }
        mgr.disconnect_all(&mut modem, now);
        assert_eq!(mgr.active_count(&modem), 0);
        assert!(modem.calls().is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one APN")]
    fn empty_apn_list_rejected() {
        ApnManager::with_apns(&[]);
    }
}
