//! The telephony notification surface.
//!
//! Vanilla Android exposes only part of this to apps (§2.1); Android-MOD
//! instruments the system services to see *all* of it. [`TelephonyEvent`]
//! is that full event stream — including the noise (voice-call disruptions,
//! manual toggles, overload rejections) the monitor must filter out.

use cellrel_netstack::LinkCondition;
use cellrel_types::{DataFailCause, FailureKind, InSituInfo, Rat, SimDuration, SimTime};

/// An event emitted by the telephony stack.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TelephonyEvent {
    /// A data-call setup attempt failed (true or false positive — carries
    /// the raw cause; filtering is the monitor's job).
    DataSetupError {
        /// The reported cause.
        cause: DataFailCause,
        /// Radio context at failure time.
        ctx: InSituInfo,
    },
    /// A data-call setup succeeded (ends a `Data_Setup_Error` episode).
    DataSetupSuccess {
        /// Radio context.
        ctx: InSituInfo,
    },
    /// The service state dropped to Out_of_Service.
    OutOfServiceBegan {
        /// Radio context.
        ctx: InSituInfo,
    },
    /// Service recovered from Out_of_Service.
    OutOfServiceEnded {
        /// Outage span.
        duration: SimDuration,
        /// Radio context.
        ctx: InSituInfo,
    },
    /// The kernel-side Data_Stall predicate fired.
    DataStallSuspected {
        /// Radio context.
        ctx: InSituInfo,
        /// Ground-truth link condition (what probing would discover).
        condition: LinkCondition,
    },
    /// A previously suspected stall cleared (by auto-recovery, a recovery
    /// action, or user intervention).
    DataStallCleared {
        /// Ground-truth span from *detection* to heal — the quantity the
        /// monitor's probing estimates (pre-detection time is invisible to
        /// the device).
        duration: SimDuration,
        /// Radio context.
        ctx: InSituInfo,
        /// Ground-truth link condition during the stall.
        condition: LinkCondition,
    },
    /// A recovery stage executed (1 = cleanup, 2 = re-register,
    /// 3 = radio restart).
    RecoveryActionExecuted {
        /// Stage number 1..=3.
        stage: u8,
        /// Whether the action fixed the stall.
        fixed: bool,
    },
    /// The user manually reset the data connection (toggled data/airplane).
    ManualReset,
    /// An incoming circuit-switched voice call pre-empted data (CSFB) —
    /// an instrumentation-level false positive source.
    VoiceCallInterruption,
    /// The serving RAT changed.
    RatChanged {
        /// Previous RAT, if any.
        from: Option<Rat>,
        /// New RAT.
        to: Rat,
    },
    /// An SMS send failed (`RIL_SMS_SEND_FAIL_RETRY` class, <1 % bucket).
    SmsSendFailed,
    /// A voice call setup failed (<1 % bucket).
    VoiceSetupFailed,
}

impl TelephonyEvent {
    /// The failure kind this event suggests, if it is failure-shaped.
    pub fn failure_kind(&self) -> Option<FailureKind> {
        match self {
            TelephonyEvent::DataSetupError { .. } => Some(FailureKind::DataSetupError),
            TelephonyEvent::OutOfServiceBegan { .. } => Some(FailureKind::OutOfService),
            TelephonyEvent::DataStallSuspected { .. } => Some(FailureKind::DataStall),
            TelephonyEvent::SmsSendFailed => Some(FailureKind::SmsSendFail),
            TelephonyEvent::VoiceSetupFailed => Some(FailureKind::VoiceSetupFail),
            _ => None,
        }
    }
}

/// A sink for telephony events — the hook Android-MOD registers (§2.2).
pub trait TelephonyListener {
    /// Called for every event, in timestamp order.
    fn on_event(&mut self, at: SimTime, event: &TelephonyEvent);
}

/// A listener that records everything (tests, tracing).
#[derive(Debug, Default)]
pub struct RecordingListener {
    /// The recorded `(time, event)` log.
    pub log: Vec<(SimTime, TelephonyEvent)>,
}

impl TelephonyListener for RecordingListener {
    fn on_event(&mut self, at: SimTime, event: &TelephonyEvent) {
        self.log.push((at, *event));
    }
}

/// A no-op listener.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullListener;

impl TelephonyListener for NullListener {
    fn on_event(&mut self, _at: SimTime, _event: &TelephonyEvent) {}
}

/// A tee: records the raw event log *and* forwards every event to an inner
/// listener (typically the monitoring service) — useful when an experiment
/// wants both the unfiltered stream and the monitor's filtered view.
#[derive(Debug)]
pub struct RecordingBoth<L> {
    /// The recorded `(time, event)` log.
    pub log: Vec<(SimTime, TelephonyEvent)>,
    /// The wrapped listener.
    pub inner: L,
}

impl<L: TelephonyListener> RecordingBoth<L> {
    /// Wrap a listener.
    pub fn new(inner: L) -> Self {
        RecordingBoth {
            log: Vec::new(),
            inner,
        }
    }
}

impl<L: TelephonyListener> TelephonyListener for RecordingBoth<L> {
    fn on_event(&mut self, at: SimTime, event: &TelephonyEvent) {
        self.log.push((at, *event));
        self.inner.on_event(at, event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cellrel_types::{Apn, BsId, Isp, SignalLevel};

    fn ctx() -> InSituInfo {
        InSituInfo {
            rat: Rat::G4,
            signal: SignalLevel::L3,
            apn: Apn::Internet,
            bs: Some(BsId::gsm_cn(0, 1, 2)),
            isp: Isp::A,
        }
    }

    #[test]
    fn failure_kinds_are_mapped() {
        assert_eq!(
            TelephonyEvent::DataSetupError {
                cause: DataFailCause::SignalLost,
                ctx: ctx()
            }
            .failure_kind(),
            Some(FailureKind::DataSetupError)
        );
        assert_eq!(
            TelephonyEvent::DataStallSuspected {
                ctx: ctx(),
                condition: LinkCondition::NetworkBlackhole
            }
            .failure_kind(),
            Some(FailureKind::DataStall)
        );
        assert_eq!(TelephonyEvent::ManualReset.failure_kind(), None);
        assert_eq!(
            TelephonyEvent::RatChanged {
                from: None,
                to: Rat::G5
            }
            .failure_kind(),
            None
        );
    }

    #[test]
    fn recording_listener_records_in_order() {
        let mut l = RecordingListener::default();
        l.on_event(SimTime::from_secs(1), &TelephonyEvent::ManualReset);
        l.on_event(SimTime::from_secs(2), &TelephonyEvent::SmsSendFailed);
        assert_eq!(l.log.len(), 2);
        assert!(l.log[0].0 < l.log[1].0);
    }
}
