//! The three-stage progressive Data_Stall recovery mechanism (§3.2, §4.2).
//!
//! When a stall is detected, Android waits out a *probation* window (hoping
//! the stall fixes itself), then executes the next recovery operation:
//!
//! 1. **cleanup** — tear down and re-establish the current connection;
//! 2. **re-register** — detach and re-attach to the network;
//! 3. **radio restart** — power-cycle the radio component.
//!
//! Vanilla Android uses fixed one-minute probations; the paper's TIMP
//! optimisation replaces them with (21 s, 6 s, 16 s). Both are just
//! [`RecoveryConfig`]s here — the engine is policy-free.
//!
//! The paper reports the first-stage operation alone fixes 75 % of stalls
//! once executed; later stages are progressively more effective (and more
//! expensive). Those effectiveness/cost numbers live in the config so
//! ablation benches can sweep them.

use cellrel_sim::SimRng;
use cellrel_types::{SimDuration, SimTime};
use std::fmt;

/// One of the three progressive recovery operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryAction {
    /// Stage 1: clean up and re-establish the data connection.
    CleanupConnections,
    /// Stage 2: re-register into the network.
    Reregister,
    /// Stage 3: restart the radio component.
    RadioRestart,
}

impl RecoveryAction {
    /// Stage number 1..=3.
    pub const fn stage(self) -> u8 {
        match self {
            RecoveryAction::CleanupConnections => 1,
            RecoveryAction::Reregister => 2,
            RecoveryAction::RadioRestart => 3,
        }
    }
}

impl fmt::Display for RecoveryAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            RecoveryAction::CleanupConnections => "cleanup-connections",
            RecoveryAction::Reregister => "re-register",
            RecoveryAction::RadioRestart => "radio-restart",
        })
    }
}

/// Recovery-trigger configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryConfig {
    /// Probation windows before each stage: `[Pro0, Pro1, Pro2]`.
    pub probations: [SimDuration; 3],
    /// Execution cost of each operation (`O1 < O2 < O3`, Eq. 1's overhead
    /// terms).
    pub op_cost: [SimDuration; 3],
    /// Probability each operation fixes the stall when executed
    /// (stage 1 = 0.75 per §3.2).
    pub op_success: [f64; 3],
}

impl RecoveryConfig {
    /// Vanilla Android: one-minute probations.
    pub fn vanilla() -> Self {
        RecoveryConfig {
            probations: [SimDuration::from_secs(60); 3],
            op_cost: Self::default_costs(),
            op_success: Self::default_success(),
        }
    }

    /// The paper's TIMP-optimised probations: 21 s, 6 s, 16 s (§4.2).
    pub fn timp_optimized() -> Self {
        Self::with_probations([21, 6, 16])
    }

    /// Custom probations (seconds), default costs/effectiveness.
    pub fn with_probations(secs: [u64; 3]) -> Self {
        RecoveryConfig {
            probations: secs.map(SimDuration::from_secs),
            op_cost: Self::default_costs(),
            op_success: Self::default_success(),
        }
    }

    /// Default operation costs (§4.2's `O1 < O2 < O3`). These are *full
    /// disruption* costs, not just execution latency: cleanup tears down
    /// every TCP connection and renegotiates the bearer (~12 s of effective
    /// outage for the user), re-registration adds the detach/attach cycle
    /// (~30 s), and a radio restart takes the modem through a cold start
    /// (~60 s). The disruption cost is what makes firing recovery on a
    /// 2-second transient a net loss — the trade-off the TIMP probations
    /// balance.
    pub fn default_costs() -> [SimDuration; 3] {
        [
            SimDuration::from_secs(12),
            SimDuration::from_secs(30),
            SimDuration::from_secs(60),
        ]
    }

    /// Default operation effectiveness: stage 1 fixes 75 % (§3.2), the
    /// heavier stages more.
    pub fn default_success() -> [f64; 3] {
        [0.75, 0.90, 0.97]
    }

    /// Sanity-check the configuration.
    pub fn validate(&self) -> Result<(), String> {
        if self.probations.iter().any(|p| p.is_zero()) {
            return Err("probations must be positive".into());
        }
        if !(self.op_cost[0] < self.op_cost[1] && self.op_cost[1] < self.op_cost[2]) {
            return Err("operation costs must satisfy O1 < O2 < O3".into());
        }
        if self.op_success.iter().any(|&p| !(0.0..=1.0).contains(&p)) {
            return Err("success probabilities must be in [0, 1]".into());
        }
        Ok(())
    }
}

/// Where the engine stands in the recovery process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Idle,
    /// Waiting out probation before executing stage `next` (0-based).
    Probation {
        next: usize,
    },
    /// All three stages executed without success.
    Exhausted,
}

/// The recovery engine: a small, explicit state machine the device agent
/// drives with timer events.
#[derive(Debug, Clone)]
pub struct RecoveryEngine {
    cfg: RecoveryConfig,
    phase: Phase,
    started_at: Option<SimTime>,
    actions_executed: u32,
}

impl RecoveryEngine {
    /// Engine with the given trigger configuration.
    pub fn new(cfg: RecoveryConfig) -> Self {
        cfg.validate().expect("invalid recovery config");
        RecoveryEngine {
            cfg,
            phase: Phase::Idle,
            started_at: None,
            actions_executed: 0,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &RecoveryConfig {
        &self.cfg
    }

    /// Whether a recovery episode is in progress.
    pub fn active(&self) -> bool {
        !matches!(self.phase, Phase::Idle)
    }

    /// Whether all stages ran without clearing the stall.
    pub fn exhausted(&self) -> bool {
        matches!(self.phase, Phase::Exhausted)
    }

    /// Total operations executed across all episodes.
    pub fn actions_executed(&self) -> u32 {
        self.actions_executed
    }

    /// A stall was detected: start the episode. Returns the first probation
    /// window (the caller schedules a timer for it).
    pub fn begin(&mut self, now: SimTime) -> SimDuration {
        debug_assert!(!self.active(), "begin() while active");
        self.phase = Phase::Probation { next: 0 };
        self.started_at = Some(now);
        self.cfg.probations[0]
    }

    /// A probation timer fired and the stall *still* persists: execute the
    /// next stage. Returns the action, whether it fixed the stall, and —
    /// if it didn't and stages remain — the next probation window.
    ///
    /// `fixable` is the caller's judgement of whether this stage's
    /// operation *can* fix the underlying condition at all: reconnecting a
    /// bearer never repairs a local firewall misconfiguration, but a radio
    /// restart does clear a wedged modem driver. When `false`, the
    /// operation executes (and costs what it costs) but cannot succeed.
    pub fn probation_expired(
        &mut self,
        fixable: bool,
        rng: &mut SimRng,
    ) -> (RecoveryAction, bool, Option<SimDuration>) {
        let Phase::Probation { next } = self.phase else {
            panic!("probation_expired while {:?}", self.phase);
        };
        let action = match next {
            0 => RecoveryAction::CleanupConnections,
            1 => RecoveryAction::Reregister,
            _ => RecoveryAction::RadioRestart,
        };
        self.actions_executed += 1;
        let fixed = fixable && rng.chance(self.cfg.op_success[next]);
        if fixed {
            self.phase = Phase::Idle;
            self.started_at = None;
            return (action, true, None);
        }
        if next + 1 < 3 {
            self.phase = Phase::Probation { next: next + 1 };
            (action, false, Some(self.cfg.probations[next + 1]))
        } else {
            self.phase = Phase::Exhausted;
            (action, false, None)
        }
    }

    /// The cost of the stage that would run next (for scheduling the
    /// post-operation check).
    pub fn next_op_cost(&self) -> Option<SimDuration> {
        match self.phase {
            Phase::Probation { next } => Some(self.cfg.op_cost[next]),
            _ => None,
        }
    }

    /// The operation that will execute when the current probation expires.
    pub fn next_action(&self) -> Option<RecoveryAction> {
        match self.phase {
            Phase::Probation { next } => Some(match next {
                0 => RecoveryAction::CleanupConnections,
                1 => RecoveryAction::Reregister,
                _ => RecoveryAction::RadioRestart,
            }),
            _ => None,
        }
    }

    /// The stall cleared by itself (or by the user): abort the episode.
    pub fn stall_cleared(&mut self) {
        self.phase = Phase::Idle;
        self.started_at = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vanilla_config_is_one_minute() {
        let c = RecoveryConfig::vanilla();
        assert!(c
            .probations
            .iter()
            .all(|&p| p == SimDuration::from_secs(60)));
        assert!(c.validate().is_ok());
    }

    #[test]
    fn timp_config_matches_paper() {
        let c = RecoveryConfig::timp_optimized();
        assert_eq!(c.probations[0], SimDuration::from_secs(21));
        assert_eq!(c.probations[1], SimDuration::from_secs(6));
        assert_eq!(c.probations[2], SimDuration::from_secs(16));
        assert!(c.validate().is_ok());
        // First-stage effectiveness is the paper's 75 %.
        assert!((c.op_success[0] - 0.75).abs() < 1e-12);
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut c = RecoveryConfig::vanilla();
        c.probations[1] = SimDuration::ZERO;
        assert!(c.validate().is_err());

        let mut c = RecoveryConfig::vanilla();
        c.op_cost = [
            SimDuration::from_secs(3),
            SimDuration::from_secs(2),
            SimDuration::from_secs(1),
        ];
        assert!(c.validate().is_err());

        let mut c = RecoveryConfig::vanilla();
        c.op_success[0] = 1.5;
        assert!(c.validate().is_err());
    }

    #[test]
    fn full_episode_walks_three_stages() {
        // Force every stage to fail so all three execute.
        let mut cfg = RecoveryConfig::vanilla();
        cfg.op_success = [0.0, 0.0, 0.0];
        let mut eng = RecoveryEngine::new(cfg);
        let mut rng = SimRng::new(1);

        let p0 = eng.begin(SimTime::from_secs(0));
        assert_eq!(p0, SimDuration::from_secs(60));
        assert!(eng.active());

        let (a1, fixed, next) = eng.probation_expired(true, &mut rng);
        assert_eq!(a1, RecoveryAction::CleanupConnections);
        assert!(!fixed);
        assert_eq!(next, Some(SimDuration::from_secs(60)));

        let (a2, _, next) = eng.probation_expired(true, &mut rng);
        assert_eq!(a2, RecoveryAction::Reregister);
        assert_eq!(next, Some(SimDuration::from_secs(60)));

        let (a3, _, next) = eng.probation_expired(true, &mut rng);
        assert_eq!(a3, RecoveryAction::RadioRestart);
        assert_eq!(next, None);
        assert!(eng.exhausted());
        assert_eq!(eng.actions_executed(), 3);
    }

    #[test]
    fn certain_success_stops_after_stage_one() {
        let mut cfg = RecoveryConfig::vanilla();
        cfg.op_success = [1.0, 1.0, 1.0];
        let mut eng = RecoveryEngine::new(cfg);
        let mut rng = SimRng::new(2);
        eng.begin(SimTime::ZERO);
        let (a, fixed, next) = eng.probation_expired(true, &mut rng);
        assert_eq!(a, RecoveryAction::CleanupConnections);
        assert!(fixed);
        assert_eq!(next, None);
        assert!(!eng.active());
    }

    #[test]
    fn stall_cleared_aborts_episode() {
        let mut eng = RecoveryEngine::new(RecoveryConfig::vanilla());
        eng.begin(SimTime::ZERO);
        assert!(eng.active());
        eng.stall_cleared();
        assert!(!eng.active());
        assert_eq!(eng.actions_executed(), 0);
        // Can begin a fresh episode afterwards.
        eng.begin(SimTime::from_secs(100));
        assert!(eng.active());
    }

    #[test]
    fn next_op_cost_tracks_stage() {
        let mut cfg = RecoveryConfig::vanilla();
        cfg.op_success = [0.0, 0.0, 0.0];
        let mut eng = RecoveryEngine::new(cfg);
        let mut rng = SimRng::new(3);
        assert_eq!(eng.next_op_cost(), None);
        eng.begin(SimTime::ZERO);
        assert_eq!(eng.next_op_cost(), Some(RecoveryConfig::default_costs()[0]));
        eng.probation_expired(true, &mut rng);
        assert_eq!(eng.next_op_cost(), Some(RecoveryConfig::default_costs()[1]));
    }

    #[test]
    fn unfixable_conditions_never_succeed() {
        let mut eng = RecoveryEngine::new(RecoveryConfig::vanilla());
        let mut rng = SimRng::new(9);
        for _ in 0..200 {
            eng.begin(SimTime::ZERO);
            let (_, fixed, _) = eng.probation_expired(false, &mut rng);
            assert!(!fixed, "an unfixable condition was 'fixed'");
            eng.stall_cleared();
        }
    }

    #[test]
    fn custom_probation_triple_escalates_in_order() {
        // The probation returned at each step must be the *configured* value
        // for the stage about to wait, in order — an asymmetric triple makes
        // any off-by-one in the indexing visible.
        let mut cfg = RecoveryConfig::with_probations([5, 7, 9]);
        cfg.op_success = [0.0, 0.0, 0.0];
        let mut eng = RecoveryEngine::new(cfg);
        let mut rng = SimRng::new(11);

        assert_eq!(eng.begin(SimTime::ZERO), SimDuration::from_secs(5));
        assert_eq!(eng.next_action(), Some(RecoveryAction::CleanupConnections));

        let (a, fixed, next) = eng.probation_expired(true, &mut rng);
        assert_eq!((a.stage(), fixed), (1, false));
        assert_eq!(next, Some(SimDuration::from_secs(7)));
        assert_eq!(eng.next_action(), Some(RecoveryAction::Reregister));

        let (a, fixed, next) = eng.probation_expired(true, &mut rng);
        assert_eq!((a.stage(), fixed), (2, false));
        assert_eq!(next, Some(SimDuration::from_secs(9)));
        assert_eq!(eng.next_action(), Some(RecoveryAction::RadioRestart));

        let (a, fixed, next) = eng.probation_expired(true, &mut rng);
        assert_eq!((a.stage(), fixed), (3, false));
        assert_eq!(next, None);
        assert!(eng.exhausted());
        assert_eq!(eng.next_action(), None);
        assert_eq!(eng.next_op_cost(), None);
    }

    #[test]
    fn mid_episode_success_resets_to_idle_and_restarts_at_stage_one() {
        // Fail stage 1, succeed at stage 2; the next episode must start
        // over at stage 1 with the first probation, not resume at stage 3.
        let mut cfg = RecoveryConfig::with_probations([5, 7, 9]);
        cfg.op_success = [0.0, 1.0, 1.0];
        let mut eng = RecoveryEngine::new(cfg);
        let mut rng = SimRng::new(12);

        eng.begin(SimTime::ZERO);
        let (_, fixed, _) = eng.probation_expired(true, &mut rng);
        assert!(!fixed);
        let (a, fixed, next) = eng.probation_expired(true, &mut rng);
        assert_eq!(a, RecoveryAction::Reregister);
        assert!(fixed);
        assert_eq!(next, None);
        assert!(!eng.active());
        assert!(!eng.exhausted());

        assert_eq!(
            eng.begin(SimTime::from_secs(500)),
            SimDuration::from_secs(5)
        );
        assert_eq!(eng.next_action(), Some(RecoveryAction::CleanupConnections));
        assert_eq!(eng.actions_executed(), 2, "counter spans episodes");
    }

    #[test]
    fn exhaustion_then_clear_resets_the_ladder() {
        // After all three stages fail, the stall eventually clears (or the
        // user resets); stall_cleared() must take the engine out of
        // Exhausted so a fresh episode begins back at stage 1.
        let mut cfg = RecoveryConfig::vanilla();
        cfg.op_success = [0.0, 0.0, 0.0];
        let mut eng = RecoveryEngine::new(cfg);
        let mut rng = SimRng::new(13);

        eng.begin(SimTime::ZERO);
        for _ in 0..3 {
            eng.probation_expired(true, &mut rng);
        }
        assert!(eng.exhausted());
        assert!(eng.active(), "exhausted still counts as an open episode");

        eng.stall_cleared();
        assert!(!eng.active());
        assert!(!eng.exhausted());

        assert_eq!(
            eng.begin(SimTime::from_secs(900)),
            SimDuration::from_secs(60)
        );
        let (a, _, _) = eng.probation_expired(true, &mut rng);
        assert_eq!(a, RecoveryAction::CleanupConnections);
        assert_eq!(eng.actions_executed(), 4);
    }

    #[test]
    fn stage_one_effectiveness_is_about_75_percent() {
        let mut eng = RecoveryEngine::new(RecoveryConfig::vanilla());
        let mut rng = SimRng::new(4);
        let mut fixed = 0;
        let n = 4000;
        for _ in 0..n {
            eng.begin(SimTime::ZERO);
            let (_, ok, _) = eng.probation_expired(true, &mut rng);
            if ok {
                fixed += 1;
            }
            eng.stall_cleared();
        }
        let rate = fixed as f64 / n as f64;
        assert!((rate - 0.75).abs() < 0.03, "stage-1 fix rate {rate}");
    }
}
