//! The vanilla Data_Stall detector.
//!
//! Android evaluates the kernel's stall predicate on a fixed cadence (the
//! one-minute window of §2.1) and raises `Data_Stall` when it trips. The
//! fixed cadence is precisely why vanilla Android's duration measurements
//! are coarse (±1 minute) — the limitation Android-MOD's probing component
//! removes (§2.2).

use cellrel_netstack::NetStack;
use cellrel_types::{SimDuration, SimTime};

/// Default evaluation cadence (Android polls the predicate roughly once a
/// minute).
pub const DEFAULT_POLL_INTERVAL: SimDuration = SimDuration::from_secs(60);

/// The stall detector: cadence + edge detection.
#[derive(Debug, Clone)]
pub struct DataStallDetector {
    interval: SimDuration,
    /// Whether the last evaluation saw a stall (edge detection).
    stalled: bool,
    /// When the current stall was first *detected* (not when it began).
    detected_at: Option<SimTime>,
}

impl Default for DataStallDetector {
    fn default() -> Self {
        Self::new(DEFAULT_POLL_INTERVAL)
    }
}

impl DataStallDetector {
    /// Detector with a custom poll interval.
    pub fn new(interval: SimDuration) -> Self {
        assert!(!interval.is_zero());
        DataStallDetector {
            interval,
            stalled: false,
            detected_at: None,
        }
    }

    /// The evaluation cadence.
    pub fn poll_interval(&self) -> SimDuration {
        self.interval
    }

    /// Whether a stall is currently flagged.
    pub fn is_stalled(&self) -> bool {
        self.stalled
    }

    /// When the current stall was detected.
    pub fn detected_at(&self) -> Option<SimTime> {
        self.detected_at
    }

    /// Evaluate the predicate now. Returns `Some(true)` on a rising edge
    /// (new stall detected), `Some(false)` on a falling edge (stall
    /// cleared), `None` when nothing changed.
    pub fn poll(&mut self, now: SimTime, stack: &mut NetStack) -> Option<bool> {
        let stalled = stack.stall_detected(now);
        match (self.stalled, stalled) {
            (false, true) => {
                self.stalled = true;
                self.detected_at = Some(now);
                Some(true)
            }
            (true, false) => {
                self.stalled = false;
                self.detected_at = None;
                Some(false)
            }
            _ => None,
        }
    }

    /// Clear the detector state (after recovery resets counters).
    pub fn reset(&mut self) {
        self.stalled = false;
        self.detected_at = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cellrel_netstack::LinkCondition;

    #[test]
    fn detects_rising_and_falling_edges() {
        let mut det = DataStallDetector::default();
        let mut stack = NetStack::new();
        stack.set_link(LinkCondition::NetworkBlackhole);
        let t0 = SimTime::from_secs(10);
        stack.app_exchange(t0, 50);

        assert_eq!(
            det.poll(t0 + SimDuration::from_secs(60), &mut stack),
            Some(true)
        );
        assert!(det.is_stalled());
        assert_eq!(det.detected_at(), Some(t0 + SimDuration::from_secs(60)));

        // Steady state: no new edge.
        stack.app_exchange(t0 + SimDuration::from_secs(90), 20);
        assert_eq!(det.poll(t0 + SimDuration::from_secs(120), &mut stack), None);

        // Heal the link; inbound traffic clears the predicate.
        stack.set_link(LinkCondition::Healthy);
        stack.app_exchange(t0 + SimDuration::from_secs(130), 5);
        assert_eq!(
            det.poll(t0 + SimDuration::from_secs(180), &mut stack),
            Some(false)
        );
        assert!(!det.is_stalled());
    }

    #[test]
    fn healthy_stack_never_edges() {
        let mut det = DataStallDetector::default();
        let mut stack = NetStack::new();
        for s in 0..10 {
            stack.app_exchange(SimTime::from_secs(s * 30), 20);
            assert_eq!(det.poll(SimTime::from_secs(s * 30 + 1), &mut stack), None);
        }
    }

    #[test]
    fn reset_clears_flag() {
        let mut det = DataStallDetector::default();
        let mut stack = NetStack::new();
        stack.set_link(LinkCondition::NetworkBlackhole);
        stack.app_exchange(SimTime::from_secs(1), 50);
        det.poll(SimTime::from_secs(2), &mut stack);
        assert!(det.is_stalled());
        det.reset();
        assert!(!det.is_stalled());
        assert_eq!(det.detected_at(), None);
    }

    #[test]
    #[should_panic]
    fn zero_interval_rejected() {
        DataStallDetector::new(SimDuration::ZERO);
    }
}
