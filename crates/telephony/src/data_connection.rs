//! The `DataConnection` life-cycle state machine (Fig. 1).
//!
//! Android models a cellular data connection with five states; transitions
//! are driven by setup requests, setup results, retry timers and teardowns.
//! This FSM enforces exactly the legal transitions and records its history —
//! invalid transitions are programming errors (the real
//! `DataConnection.java` logs and drops them; we make them loud, since in a
//! simulation they always indicate a driver bug).

use cellrel_sim::Telemetry;
use cellrel_types::{DataFailCause, SimTime};
use std::fmt;

/// States of a data connection (Fig. 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DcState {
    /// No connection, none being built.
    Inactive,
    /// Setup negotiation in flight.
    Activating,
    /// Setup failed; waiting out the retry delay.
    Retrying,
    /// Connection up; data can flow.
    Active,
    /// Teardown in flight.
    Disconnecting,
}

impl fmt::Display for DcState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            DcState::Inactive => "Inactive",
            DcState::Activating => "Activating",
            DcState::Retrying => "Retrying",
            DcState::Active => "Active",
            DcState::Disconnecting => "Disconnecting",
        })
    }
}

/// A recorded transition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Transition {
    /// When it happened.
    pub at: SimTime,
    /// State before.
    pub from: DcState,
    /// State after.
    pub to: DcState,
    /// Failure cause if the transition was failure-driven.
    pub cause: Option<DataFailCause>,
}

/// The life-cycle FSM with bounded transition history.
#[derive(Debug, Clone)]
pub struct DataConnectionFsm {
    state: DcState,
    history: Vec<Transition>,
    setup_attempts: u32,
    tele: Telemetry,
}

/// The telemetry counter for entering a state.
fn state_counter(to: DcState) -> &'static str {
    match to {
        DcState::Inactive => "dc.state.inactive",
        DcState::Activating => "dc.state.activating",
        DcState::Retrying => "dc.state.retrying",
        DcState::Active => "dc.state.active",
        DcState::Disconnecting => "dc.state.disconnecting",
    }
}

/// History ring size.
const HISTORY_LIMIT: usize = 128;

impl Default for DataConnectionFsm {
    fn default() -> Self {
        Self::new()
    }
}

impl DataConnectionFsm {
    /// A fresh FSM in `Inactive`.
    pub fn new() -> Self {
        DataConnectionFsm {
            state: DcState::Inactive,
            history: Vec::new(),
            setup_attempts: 0,
            tele: Telemetry::disabled(),
        }
    }

    /// Attach a telemetry handle; every transition then bumps a
    /// `dc.state.*` counter (disabled handles cost one branch).
    pub fn set_telemetry(&mut self, tele: Telemetry) {
        self.tele = tele;
    }

    /// Current state.
    pub fn state(&self) -> DcState {
        self.state
    }

    /// Total setup attempts ever issued.
    pub fn setup_attempts(&self) -> u32 {
        self.setup_attempts
    }

    /// Transition history (bounded, most recent last).
    pub fn history(&self) -> &[Transition] {
        &self.history
    }

    fn transition(&mut self, at: SimTime, to: DcState, cause: Option<DataFailCause>) {
        if self.history.len() == HISTORY_LIMIT {
            self.history.remove(0);
        }
        self.history.push(Transition {
            at,
            from: self.state,
            to,
            cause,
        });
        self.tele.inc("dc.transitions");
        self.tele.inc(state_counter(to));
        self.state = to;
    }

    /// Begin a setup (from `Inactive` or from `Retrying` when the retry
    /// timer fires).
    ///
    /// # Panics
    /// Panics on an illegal source state.
    pub fn begin_setup(&mut self, at: SimTime) {
        assert!(
            matches!(self.state, DcState::Inactive | DcState::Retrying),
            "begin_setup from {}",
            self.state
        );
        self.setup_attempts += 1;
        self.transition(at, DcState::Activating, None);
    }

    /// Setup succeeded.
    pub fn setup_succeeded(&mut self, at: SimTime) {
        assert_eq!(
            self.state,
            DcState::Activating,
            "setup_succeeded from {}",
            self.state
        );
        self.transition(at, DcState::Active, None);
    }

    /// Setup failed; will retry.
    pub fn setup_failed_retry(&mut self, at: SimTime, cause: DataFailCause) {
        assert_eq!(
            self.state,
            DcState::Activating,
            "setup_failed from {}",
            self.state
        );
        self.transition(at, DcState::Retrying, Some(cause));
    }

    /// Setup failed permanently; give up to `Inactive`.
    pub fn setup_failed_permanent(&mut self, at: SimTime, cause: DataFailCause) {
        assert!(
            matches!(self.state, DcState::Activating | DcState::Retrying),
            "setup_failed_permanent from {}",
            self.state
        );
        self.transition(at, DcState::Inactive, Some(cause));
    }

    /// Begin a teardown of the active connection.
    pub fn begin_disconnect(&mut self, at: SimTime) {
        assert_eq!(
            self.state,
            DcState::Active,
            "begin_disconnect from {}",
            self.state
        );
        self.transition(at, DcState::Disconnecting, None);
    }

    /// Teardown completed.
    pub fn disconnect_completed(&mut self, at: SimTime) {
        assert_eq!(
            self.state,
            DcState::Disconnecting,
            "disconnect_completed from {}",
            self.state
        );
        self.transition(at, DcState::Inactive, None);
    }

    /// The connection dropped while `Active` (network-initiated loss).
    pub fn connection_lost(&mut self, at: SimTime, cause: DataFailCause) {
        assert_eq!(
            self.state,
            DcState::Active,
            "connection_lost from {}",
            self.state
        );
        self.transition(at, DcState::Inactive, Some(cause));
    }

    /// Abandon a pending retry (user disabled data, policy change).
    pub fn cancel_retry(&mut self, at: SimTime) {
        assert_eq!(
            self.state,
            DcState::Retrying,
            "cancel_retry from {}",
            self.state
        );
        self.transition(at, DcState::Inactive, None);
    }

    /// Hard reset to `Inactive` from any state (modem restart).
    pub fn force_reset(&mut self, at: SimTime) {
        if self.state != DcState::Inactive {
            self.transition(at, DcState::Inactive, None);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn happy_path_matches_figure1() {
        let mut fsm = DataConnectionFsm::new();
        fsm.begin_setup(t(0));
        assert_eq!(fsm.state(), DcState::Activating);
        fsm.setup_succeeded(t(1));
        assert_eq!(fsm.state(), DcState::Active);
        fsm.begin_disconnect(t(100));
        assert_eq!(fsm.state(), DcState::Disconnecting);
        fsm.disconnect_completed(t(101));
        assert_eq!(fsm.state(), DcState::Inactive);
        assert_eq!(fsm.setup_attempts(), 1);
    }

    #[test]
    fn retry_loop() {
        let mut fsm = DataConnectionFsm::new();
        fsm.begin_setup(t(0));
        fsm.setup_failed_retry(t(1), DataFailCause::SignalLost);
        assert_eq!(fsm.state(), DcState::Retrying);
        fsm.begin_setup(t(6));
        fsm.setup_failed_retry(t(7), DataFailCause::SignalLost);
        fsm.begin_setup(t(17));
        fsm.setup_succeeded(t(18));
        assert_eq!(fsm.state(), DcState::Active);
        assert_eq!(fsm.setup_attempts(), 3);
    }

    #[test]
    fn permanent_failure_goes_inactive() {
        let mut fsm = DataConnectionFsm::new();
        fsm.begin_setup(t(0));
        fsm.setup_failed_permanent(t(1), DataFailCause::MissingUnknownApn);
        assert_eq!(fsm.state(), DcState::Inactive);
        let last = fsm.history().last().expect("history");
        assert_eq!(last.cause, Some(DataFailCause::MissingUnknownApn));
    }

    #[test]
    fn connection_loss_from_active() {
        let mut fsm = DataConnectionFsm::new();
        fsm.begin_setup(t(0));
        fsm.setup_succeeded(t(1));
        fsm.connection_lost(t(50), DataFailCause::LostConnection);
        assert_eq!(fsm.state(), DcState::Inactive);
    }

    #[test]
    fn cancel_retry_path() {
        let mut fsm = DataConnectionFsm::new();
        fsm.begin_setup(t(0));
        fsm.setup_failed_retry(t(1), DataFailCause::NetworkFailure);
        fsm.cancel_retry(t(2));
        assert_eq!(fsm.state(), DcState::Inactive);
    }

    #[test]
    fn force_reset_from_any_state() {
        let mut fsm = DataConnectionFsm::new();
        fsm.begin_setup(t(0));
        fsm.force_reset(t(1));
        assert_eq!(fsm.state(), DcState::Inactive);
        // From inactive it's a no-op (no history entry added).
        let len = fsm.history().len();
        fsm.force_reset(t(2));
        assert_eq!(fsm.history().len(), len);
    }

    #[test]
    #[should_panic(expected = "begin_setup from Active")]
    fn illegal_transition_panics() {
        let mut fsm = DataConnectionFsm::new();
        fsm.begin_setup(t(0));
        fsm.setup_succeeded(t(1));
        fsm.begin_setup(t(2));
    }

    #[test]
    fn history_is_bounded() {
        let mut fsm = DataConnectionFsm::new();
        for i in 0..200 {
            fsm.begin_setup(t(2 * i));
            fsm.setup_failed_retry(t(2 * i + 1), DataFailCause::SignalLost);
        }
        assert!(fsm.history().len() <= HISTORY_LIMIT);
        assert_eq!(fsm.setup_attempts(), 200);
    }
}
