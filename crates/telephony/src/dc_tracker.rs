//! `DcTracker` — the component that drives data-call setups, applies the
//! retry schedule, and gives up on permanent causes.
//!
//! Android's `DcTracker` reacts to a `Data_Setup_Error` by scheduling a
//! retry with an APN-profile delay schedule; permanent causes
//! (`MISSING_UNKNOWN_APN`, `OPERATOR_BARRED`, …) stop retrying entirely.

use crate::data_connection::{DataConnectionFsm, DcState};
use cellrel_modem::Modem;
use cellrel_radio::RiskFactors;
use cellrel_sim::SimRng;
use cellrel_types::{Apn, DataFailCause, SimDuration, SimTime};

/// The retry-delay schedule applied after consecutive setup failures.
/// Mirrors the shape of Android's default data-retry configuration:
/// quick first retries, exponential backoff, then a steady-state cap.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    delays: Vec<SimDuration>,
    /// Delay used once the schedule is exhausted.
    steady_state: SimDuration,
    /// Maximum consecutive failures before the tracker goes quiescent
    /// until external prodding (cell change, user action). `None` = retry
    /// forever.
    max_attempts: Option<u32>,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            delays: [5u64, 10, 20, 40, 80, 160]
                .iter()
                .map(|&s| SimDuration::from_secs(s))
                .collect(),
            steady_state: SimDuration::from_secs(600),
            max_attempts: None,
        }
    }
}

impl RetryPolicy {
    /// An aggressive schedule for tests (short delays, bounded attempts).
    pub fn fast_for_tests() -> Self {
        RetryPolicy {
            delays: vec![SimDuration::from_secs(1), SimDuration::from_secs(2)],
            steady_state: SimDuration::from_secs(4),
            max_attempts: Some(10),
        }
    }

    /// Delay before retry number `n` (1-based count of *failures so far*).
    pub fn delay_after(&self, failures: u32) -> SimDuration {
        let idx = (failures as usize).saturating_sub(1);
        self.delays.get(idx).copied().unwrap_or(self.steady_state)
    }

    /// Whether another retry is allowed after `failures` consecutive
    /// failures.
    pub fn allows_retry(&self, failures: u32) -> bool {
        self.max_attempts.map(|m| failures < m).unwrap_or(true)
    }
}

/// What the tracker wants to happen next after a setup attempt.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SetupVerdict {
    /// Connection is up.
    Connected,
    /// Failed; retry after the given delay.
    RetryAfter(SimDuration, DataFailCause),
    /// Failed permanently; no retry.
    GaveUp(DataFailCause),
}

/// The data-connection tracker: FSM + retry accounting.
#[derive(Debug, Clone)]
pub struct DcTracker {
    fsm: DataConnectionFsm,
    retry: RetryPolicy,
    consecutive_failures: u32,
    apn: Apn,
}

impl DcTracker {
    /// Tracker for the given APN with a retry policy.
    pub fn new(apn: Apn, retry: RetryPolicy) -> Self {
        DcTracker {
            fsm: DataConnectionFsm::new(),
            retry,
            consecutive_failures: 0,
            apn,
        }
    }

    /// The connection FSM (read-only).
    pub fn fsm(&self) -> &DataConnectionFsm {
        &self.fsm
    }

    /// Attach a telemetry handle to the FSM (state-transition counters).
    pub fn set_telemetry(&mut self, tele: cellrel_sim::Telemetry) {
        self.fsm.set_telemetry(tele);
    }

    /// Current consecutive-failure streak.
    pub fn consecutive_failures(&self) -> u32 {
        self.consecutive_failures
    }

    /// The APN this tracker manages.
    pub fn apn(&self) -> Apn {
        self.apn
    }

    /// Whether a setup attempt is currently legal.
    pub fn can_attempt(&self) -> bool {
        matches!(self.fsm.state(), DcState::Inactive | DcState::Retrying)
    }

    /// Drive one setup attempt through the modem.
    pub fn attempt_setup(
        &mut self,
        modem: &mut Modem,
        risk: &RiskFactors,
        now: SimTime,
        rng: &mut SimRng,
    ) -> SetupVerdict {
        assert!(self.can_attempt(), "attempt_setup in {}", self.fsm.state());
        self.fsm.begin_setup(now);
        match modem.setup_data_call(self.apn, risk, now, rng) {
            Ok(_) => {
                self.fsm.setup_succeeded(now);
                self.consecutive_failures = 0;
                SetupVerdict::Connected
            }
            Err(cause) => {
                self.consecutive_failures += 1;
                if cause.is_permanent() || !self.retry.allows_retry(self.consecutive_failures) {
                    self.fsm.setup_failed_permanent(now, cause);
                    SetupVerdict::GaveUp(cause)
                } else {
                    self.fsm.setup_failed_retry(now, cause);
                    SetupVerdict::RetryAfter(
                        self.retry.delay_after(self.consecutive_failures),
                        cause,
                    )
                }
            }
        }
    }

    /// Tear down an active connection cleanly.
    pub fn disconnect(&mut self, modem: &mut Modem, now: SimTime) {
        if self.fsm.state() == DcState::Active {
            self.fsm.begin_disconnect(now);
            modem.deactivate();
            self.fsm.disconnect_completed(now);
        }
    }

    /// The network dropped the active connection.
    pub fn connection_lost(&mut self, modem: &mut Modem, now: SimTime, cause: DataFailCause) {
        if self.fsm.state() == DcState::Active {
            modem.deactivate();
            self.fsm.connection_lost(now, cause);
        }
    }

    /// Reset after a modem restart or external recovery: back to `Inactive`,
    /// streak cleared.
    pub fn reset(&mut self, now: SimTime) {
        self.fsm.force_reset(now);
        self.consecutive_failures = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cellrel_modem::FaultProfile;
    use cellrel_radio::{BsIndex, CellView};
    use cellrel_types::{Rat, RssDbm};

    fn quiet_risk() -> RiskFactors {
        RiskFactors {
            signal_risk: 0.022,
            interference: 0.0,
            overload_prob: 0.0,
            emm_pressure: 0.0,
            disrepair: false,
        }
    }

    fn camped_modem() -> Modem {
        let mut m = Modem::new();
        m.camp_on(CellView::new(BsIndex(0), Rat::G4, RssDbm(-95.0)));
        m
    }

    #[test]
    fn successful_setup_connects() {
        let mut tracker = DcTracker::new(Apn::Internet, RetryPolicy::default());
        let mut modem = camped_modem();
        let mut rng = SimRng::new(1);
        // Quiet cell: succeed within a few attempts.
        let mut now = SimTime::ZERO;
        loop {
            match tracker.attempt_setup(&mut modem, &quiet_risk(), now, &mut rng) {
                SetupVerdict::Connected => break,
                SetupVerdict::RetryAfter(d, _) => now += d,
                SetupVerdict::GaveUp(c) => panic!("gave up: {c}"),
            }
        }
        assert_eq!(tracker.fsm().state(), DcState::Active);
        assert_eq!(tracker.consecutive_failures(), 0);
    }

    #[test]
    fn permanent_cause_gives_up() {
        let mut tracker = DcTracker::new(Apn::Internet, RetryPolicy::default());
        let mut modem = camped_modem();
        modem.set_fault(FaultProfile::forcing(DataFailCause::MissingUnknownApn));
        let mut rng = SimRng::new(2);
        let v = tracker.attempt_setup(&mut modem, &quiet_risk(), SimTime::ZERO, &mut rng);
        assert_eq!(v, SetupVerdict::GaveUp(DataFailCause::MissingUnknownApn));
        assert_eq!(tracker.fsm().state(), DcState::Inactive);
        assert!(tracker.can_attempt());
    }

    #[test]
    fn retry_delays_follow_schedule() {
        let policy = RetryPolicy::default();
        assert_eq!(policy.delay_after(1), SimDuration::from_secs(5));
        assert_eq!(policy.delay_after(2), SimDuration::from_secs(10));
        assert_eq!(policy.delay_after(6), SimDuration::from_secs(160));
        assert_eq!(policy.delay_after(7), SimDuration::from_secs(600));
        assert_eq!(policy.delay_after(100), SimDuration::from_secs(600));
    }

    #[test]
    fn transient_failures_schedule_retries() {
        let mut tracker = DcTracker::new(Apn::Internet, RetryPolicy::default());
        let mut modem = camped_modem();
        modem.set_fault(FaultProfile::forcing(DataFailCause::SignalLost));
        let mut rng = SimRng::new(3);
        let v = tracker.attempt_setup(&mut modem, &quiet_risk(), SimTime::ZERO, &mut rng);
        assert_eq!(
            v,
            SetupVerdict::RetryAfter(SimDuration::from_secs(5), DataFailCause::SignalLost)
        );
        assert_eq!(tracker.fsm().state(), DcState::Retrying);
        let v = tracker.attempt_setup(&mut modem, &quiet_risk(), SimTime::from_secs(5), &mut rng);
        assert_eq!(
            v,
            SetupVerdict::RetryAfter(SimDuration::from_secs(10), DataFailCause::SignalLost)
        );
        assert_eq!(tracker.consecutive_failures(), 2);
    }

    #[test]
    fn bounded_policy_gives_up_eventually() {
        let mut tracker = DcTracker::new(Apn::Internet, RetryPolicy::fast_for_tests());
        let mut modem = camped_modem();
        modem.set_fault(FaultProfile::forcing(DataFailCause::SignalLost));
        let mut rng = SimRng::new(4);
        let mut now = SimTime::ZERO;
        let mut gave_up = false;
        for _ in 0..20 {
            match tracker.attempt_setup(&mut modem, &quiet_risk(), now, &mut rng) {
                SetupVerdict::RetryAfter(d, _) => now += d,
                SetupVerdict::GaveUp(_) => {
                    gave_up = true;
                    break;
                }
                SetupVerdict::Connected => unreachable!(),
            }
        }
        assert!(gave_up);
    }

    #[test]
    fn disconnect_and_loss_round_trip() {
        let mut tracker = DcTracker::new(Apn::Internet, RetryPolicy::default());
        let mut modem = camped_modem();
        let mut rng = SimRng::new(5);
        let mut now = SimTime::ZERO;
        while tracker.attempt_setup(&mut modem, &quiet_risk(), now, &mut rng)
            != SetupVerdict::Connected
        {
            now += SimDuration::from_secs(5);
        }
        tracker.disconnect(&mut modem, now + SimDuration::from_secs(1));
        assert_eq!(tracker.fsm().state(), DcState::Inactive);
        assert!(modem.call().is_none());

        // Reconnect then lose the connection.
        while tracker.attempt_setup(&mut modem, &quiet_risk(), now, &mut rng)
            != SetupVerdict::Connected
        {
            now += SimDuration::from_secs(5);
        }
        tracker.connection_lost(
            &mut modem,
            now + SimDuration::from_secs(2),
            DataFailCause::LostConnection,
        );
        assert_eq!(tracker.fsm().state(), DcState::Inactive);
    }

    #[test]
    fn reset_clears_streak() {
        let mut tracker = DcTracker::new(Apn::Internet, RetryPolicy::default());
        let mut modem = camped_modem();
        modem.set_fault(FaultProfile::forcing(DataFailCause::SignalLost));
        let mut rng = SimRng::new(6);
        tracker.attempt_setup(&mut modem, &quiet_risk(), SimTime::ZERO, &mut rng);
        assert_eq!(tracker.consecutive_failures(), 1);
        tracker.reset(SimTime::from_secs(1));
        assert_eq!(tracker.consecutive_failures(), 0);
        assert_eq!(tracker.fsm().state(), DcState::Inactive);
    }
}
