//! The per-device discrete-event agent.
//!
//! [`DeviceSim`] wires the whole stack together — radio environment, modem,
//! network stack, `DcTracker`, stall detector, recovery engine, RAT policy —
//! and runs one device's life as a discrete-event simulation:
//!
//! * periodic cell scans + RAT (re)selection under the configured policy,
//!   with handover hazards on transitions;
//! * app traffic feeding the kernel TCP counters;
//! * world-injected stall conditions (network blackholes plus the
//!   false-positive classes) with natural-heal times;
//! * the vanilla stall detector and the three-stage recovery engine;
//! * user behaviour: manual resets after ~30 s of stall (the §3.2
//!   tolerance), occasional voice-call interruptions;
//! * Out_of_Service episodes.
//!
//! Every observable is emitted through [`TelephonyListener`] — the exact
//! surface Android-MOD instruments.

use crate::dc_tracker::{DcTracker, RetryPolicy, SetupVerdict};
use crate::events::{TelephonyEvent, TelephonyListener};
use crate::rat_policy::{RatPolicyKind, RatSelectionPolicy};
use crate::recovery::{RecoveryAction, RecoveryConfig, RecoveryEngine};
use crate::service_state::ServiceStateTracker;
use crate::stall::DataStallDetector;
use cellrel_modem::Modem;
use cellrel_netstack::{LinkCondition, NetStack};
use cellrel_radio::{CellView, Pos, RadioEnvironment, RiskFactors};
use cellrel_sim::{span, EventHandler, EventToken, Scheduler, SimRng, Telemetry};
use cellrel_types::{
    Apn, DeviceId, InSituInfo, Isp, Rat, RatSet, ServiceState, SimDuration, SimTime,
};

/// How a device moves across the map.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MobilityProfile {
    /// Never moves (the default).
    Stationary,
    /// Commutes between home and a work location on a day/night schedule —
    /// the pattern that stresses mobility management (TAU, handover).
    Commuter {
        /// Daytime location.
        work: Pos,
    },
    /// Random walk within a radius of home.
    Roamer {
        /// Walk radius, km.
        radius_km: f64,
    },
}

/// Events driving one device's simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WorldEvent {
    /// Periodic cell scan + RAT selection.
    ScanAndSelect,
    /// Attempt (or re-attempt) the data-call setup.
    SetupAttempt,
    /// Periodic application traffic burst.
    AppTraffic,
    /// The vanilla stall detector's poll tick.
    StallPoll,
    /// The world injects a stall-like condition on the link.
    StallInject(LinkCondition),
    /// The injected condition heals by itself.
    StallNaturalHeal,
    /// A recovery probation window expired.
    ProbationExpired,
    /// The user loses patience and resets the data connection.
    UserManualReset,
    /// An incoming circuit-switched voice call (CSFB disruption).
    VoiceCall,
    /// The user sends an SMS.
    SmsSend,
    /// The device moves (per its mobility profile).
    Move,
    /// The screen/usage state toggles (active ↔ idle).
    ScreenToggle,
    /// An Out_of_Service episode begins.
    OosInject,
    /// The Out_of_Service episode ends.
    OosHeal,
}

/// Static configuration of one simulated device.
#[derive(Debug, Clone)]
pub struct DeviceConfig {
    /// Device identity.
    pub id: DeviceId,
    /// Subscribed ISP.
    pub isp: Isp,
    /// Home position on the map.
    pub home: Pos,
    /// RATs the hardware supports.
    pub rats: RatSet,
    /// RAT selection policy.
    pub policy: RatPolicyKind,
    /// Recovery trigger configuration.
    pub recovery: RecoveryConfig,
    /// Base Data_Stall hazard (injections per hour on a nominal cell);
    /// scaled by the serving cell's risk multiplier.
    pub stall_rate_per_hour: f64,
    /// Probability an injected condition is one of the false-positive
    /// classes rather than a network blackhole.
    pub fp_condition_prob: f64,
    /// Out_of_Service hazard scale (multiplies the cell's hazard).
    pub oos_scale: f64,
    /// Cell scan cadence.
    pub scan_interval: SimDuration,
    /// App traffic cadence while connected.
    pub traffic_interval: SimDuration,
    /// Median of the user's manual-reset tolerance (~30 s per §3.2).
    pub user_reset_median_secs: f64,
    /// Voice calls per hour (CSFB interruption source on 2G/3G).
    pub voice_calls_per_hour: f64,
    /// SMS sends per hour.
    pub sms_per_hour: f64,
    /// Mobility profile.
    pub mobility: MobilityProfile,
    /// Cadence of mobility updates.
    pub move_interval: SimDuration,
    /// Fraction of time the device is actively used (1.0 = always).
    /// While idle there is no app traffic, so stalls go *undetected* —
    /// Android's Data_Stall rule needs outbound segments to trip.
    pub screen_active_fraction: f64,
}

impl DeviceConfig {
    /// A reasonable default device on ISP-A at the given position.
    pub fn new(id: DeviceId, isp: Isp, home: Pos) -> Self {
        DeviceConfig {
            id,
            isp,
            home,
            rats: RatSet::up_to(Rat::G4),
            policy: RatPolicyKind::Android9,
            recovery: RecoveryConfig::vanilla(),
            stall_rate_per_hour: 0.35,
            fp_condition_prob: 0.12,
            oos_scale: 1.0,
            scan_interval: SimDuration::from_secs(20),
            traffic_interval: SimDuration::from_secs(4),
            user_reset_median_secs: 30.0,
            voice_calls_per_hour: 0.15,
            sms_per_hour: 0.4,
            mobility: MobilityProfile::Stationary,
            move_interval: SimDuration::from_mins(15),
            screen_active_fraction: 1.0,
        }
    }
}

/// Aggregate counters a device keeps about itself (cheap cross-checks for
/// the monitor's view).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeviceStats {
    /// Setup failures reported (raw, unfiltered).
    pub setup_errors: u64,
    /// Successful setups.
    pub setup_successes: u64,
    /// Stall rising edges detected.
    pub stalls_detected: u64,
    /// Stalls cleared.
    pub stalls_cleared: u64,
    /// Recovery operations executed.
    pub recovery_actions: u64,
    /// Manual resets by the user.
    pub manual_resets: u64,
    /// Out_of_Service episodes.
    pub oos_episodes: u64,
    /// RAT transitions.
    pub rat_changes: u64,
    /// Voice-call interruptions.
    pub voice_interruptions: u64,
    /// SMS sends that terminally failed.
    pub sms_failures: u64,
    /// Voice setups that failed.
    pub voice_setup_failures: u64,
    /// Mobility updates performed.
    pub moves: u64,
    /// Tracking-area updates attempted (significant moves).
    pub tau_attempts: u64,
    /// Tracking-area updates that failed.
    pub tau_failures: u64,
}

/// One live stall episode (ground truth + bookkeeping).
#[derive(Debug, Clone, Copy)]
struct StallEpisode {
    onset: SimTime,
    condition: LinkCondition,
    /// When the vanilla detector first saw the stall.
    detected_at: Option<SimTime>,
    /// When the link actually healed (ground truth).
    healed_at: Option<SimTime>,
    heal_token: Option<EventToken>,
    reset_token: Option<EventToken>,
}

/// The device agent. Borrows the shared radio environment; owns everything
/// else.
pub struct DeviceSim<'a, L: TelephonyListener> {
    cfg: DeviceConfig,
    env: &'a RadioEnvironment,
    listener: L,
    rng: SimRng,
    pos: Pos,
    modem: Modem,
    stack: NetStack,
    tracker: DcTracker,
    detector: DataStallDetector,
    recovery: RecoveryEngine,
    sst: ServiceStateTracker,
    policy: Box<dyn RatSelectionPolicy>,
    stats: DeviceStats,
    stall: Option<StallEpisode>,
    probation_token: Option<EventToken>,
    oos_heal_token: Option<EventToken>,
    serving_risk: Option<RiskFactors>,
    setup_pending: bool,
    sms: crate::sms::SmsService,
    voice: crate::sms::VoiceService,
    screen_active: bool,
    tele: Telemetry,
    /// While true (the default) the world keeps injecting faults. Campaign
    /// drivers flip it off via [`DeviceSim::quiesce`] so a scenario can end
    /// in a fault-free grace period.
    injection_enabled: bool,
}

impl<'a, L: TelephonyListener> DeviceSim<'a, L> {
    /// Build the agent and prime the event queue with its recurring events.
    pub fn new<Q: Scheduler<WorldEvent>>(
        cfg: DeviceConfig,
        env: &'a RadioEnvironment,
        listener: L,
        rng: SimRng,
        queue: &mut Q,
    ) -> Self {
        let policy = cfg.policy.build();
        let recovery = RecoveryEngine::new(cfg.recovery);
        let mut sim = DeviceSim {
            pos: cfg.home,
            env,
            listener,
            rng,
            modem: Modem::new(),
            stack: NetStack::new(),
            tracker: DcTracker::new(Apn::Internet, RetryPolicy::default()),
            detector: DataStallDetector::default(),
            recovery,
            sst: ServiceStateTracker::new(),
            policy,
            stats: DeviceStats::default(),
            stall: None,
            probation_token: None,
            oos_heal_token: None,
            serving_risk: None,
            setup_pending: false,
            sms: crate::sms::SmsService::new(),
            voice: crate::sms::VoiceService::new(),
            screen_active: true,
            tele: Telemetry::disabled(),
            injection_enabled: true,
            cfg,
        };
        queue.schedule_at(SimTime::ZERO, WorldEvent::ScanAndSelect);
        queue.schedule_after(sim.cfg.traffic_interval, WorldEvent::AppTraffic);
        queue.schedule_after(sim.detector.poll_interval(), WorldEvent::StallPoll);
        sim.schedule_next_stall_injection(queue);
        sim.schedule_next_oos(queue);
        sim.schedule_next_voice_call(queue);
        sim.schedule_next_sms(queue);
        if sim.cfg.mobility != MobilityProfile::Stationary {
            queue.schedule_after(sim.cfg.move_interval, WorldEvent::Move);
        }
        if sim.cfg.screen_active_fraction < 1.0 {
            sim.schedule_screen_toggle(queue);
        }
        sim
    }

    /// Attach a telemetry handle, shared down the stack: the agent's own
    /// event mirror, the modem's per-stage setup outcomes and the
    /// data-connection FSM's state-transition counters all record into the
    /// same registry. The default handle is disabled, making every
    /// recording call a single no-op branch.
    pub fn set_telemetry(&mut self, tele: Telemetry) {
        self.modem.set_telemetry(tele.clone());
        self.tracker.set_telemetry(tele.clone());
        self.tele = tele;
    }

    /// The device's aggregate counters.
    pub fn stats(&self) -> &DeviceStats {
        &self.stats
    }

    /// The listener (to retrieve recorded events after a run).
    pub fn listener(&self) -> &L {
        &self.listener
    }

    /// Consume the agent, returning its listener.
    pub fn into_listener(self) -> L {
        self.listener
    }

    /// Current position.
    pub fn position(&self) -> Pos {
        self.pos
    }

    /// Move the device (mobility is driven externally by the workload layer).
    pub fn set_position(&mut self, pos: Pos) {
        self.pos = pos;
    }

    /// The modem (tests).
    pub fn modem(&self) -> &Modem {
        &self.modem
    }

    /// The recovery engine (campaign invariants).
    pub fn recovery(&self) -> &RecoveryEngine {
        &self.recovery
    }

    /// The vanilla stall detector (campaign invariants).
    pub fn detector(&self) -> &DataStallDetector {
        &self.detector
    }

    /// The device's network stack (campaign invariants).
    pub fn netstack(&self) -> &NetStack {
        &self.stack
    }

    /// The service-state tracker (campaign invariants).
    pub fn service_state(&self) -> &ServiceStateTracker {
        &self.sst
    }

    /// The device's static configuration.
    pub fn config(&self) -> &DeviceConfig {
        &self.cfg
    }

    /// Stop the world from injecting further faults, and accelerate any
    /// live fault so it heals *now* (through the ordinary heal events, so
    /// listeners observe the regular clear sequence). After this, the
    /// device must drain back to healthy service — [`Self::wedged_reason`]
    /// checks that it did.
    pub fn quiesce<Q: Scheduler<WorldEvent>>(&mut self, queue: &mut Q) {
        self.injection_enabled = false;
        if let Some(ep) = &mut self.stall {
            if let Some(tok) = ep.heal_token.take() {
                queue.cancel(tok);
            }
            queue.schedule_at(queue.now(), WorldEvent::StallNaturalHeal);
        }
        if self.sst.in_outage() {
            if let Some(tok) = self.oos_heal_token.take() {
                queue.cancel(tok);
            }
            queue.schedule_at(queue.now(), WorldEvent::OosHeal);
        }
    }

    /// After faults have cleared and the device has had time to drain, is
    /// anything still wedged? `None` means fully recovered: healthy link,
    /// no open stall episode, detector and recovery engine idle, in
    /// service, and a data call either up or reachable through the retry
    /// machinery. The campaign's "no device permanently wedged" invariant
    /// is exactly this check at scenario end.
    pub fn wedged_reason(&self) -> Option<String> {
        if self.stack.link() != LinkCondition::Healthy {
            return Some(format!("link still {:?}", self.stack.link()));
        }
        if let Some(ep) = &self.stall {
            return Some(format!("stall episode still open (onset {:?})", ep.onset));
        }
        if self.detector.is_stalled() {
            return Some("stall detector still latched".into());
        }
        if self.recovery.active() {
            return Some("recovery engine still mid-episode".into());
        }
        if self.sst.state() != ServiceState::InService {
            return Some(format!("service state {:?}", self.sst.state()));
        }
        if self.modem.call().is_none() && !self.setup_pending && !self.tracker.can_attempt() {
            return Some("no data call and no retry path left".into());
        }
        None
    }

    fn emit(&mut self, at: SimTime, ev: TelephonyEvent) {
        if self.tele.is_enabled() {
            self.record_event(at, &ev);
        }
        self.listener.on_event(at, &ev);
    }

    /// Mirror one emitted telephony event into the metrics registry —
    /// static labels only, so the mirror never allocates. Durations carried
    /// by closing events become sim-time spans: the stall span runs from
    /// *detection* to heal and the outage span from loss to recovery, both
    /// exactly the quantities the paper's Figs. 4 and 10 measure.
    fn record_event(&mut self, at: SimTime, ev: &TelephonyEvent) {
        let tid = self.cfg.id.0 as u64;
        match ev {
            TelephonyEvent::DataSetupError { .. } => {
                self.tele.inc("telephony.setup.error");
                self.tele.instant("telephony.setup.error", at, tid);
            }
            TelephonyEvent::DataSetupSuccess { .. } => self.tele.inc("telephony.setup.success"),
            TelephonyEvent::OutOfServiceBegan { .. } => self.tele.inc("telephony.oos.began"),
            TelephonyEvent::OutOfServiceEnded { duration, .. } => {
                self.tele.inc("telephony.oos.ended");
                let start =
                    SimTime::from_millis(at.as_millis().saturating_sub(duration.as_millis()));
                span!(self.tele, "telephony.oos.outage", start, tid).end(at);
            }
            TelephonyEvent::DataStallSuspected { .. } => {
                self.tele.inc("telephony.stall.suspected");
                self.tele.instant("telephony.stall.suspected", at, tid);
            }
            TelephonyEvent::DataStallCleared { .. } => self.tele.inc("telephony.stall.cleared"),
            TelephonyEvent::RecoveryActionExecuted { stage, fixed } => {
                self.tele.inc(match stage {
                    1 => "telephony.recovery.stage1",
                    2 => "telephony.recovery.stage2",
                    _ => "telephony.recovery.stage3",
                });
                if *fixed {
                    self.tele.inc("telephony.recovery.fixed");
                }
            }
            TelephonyEvent::ManualReset => self.tele.inc("telephony.manual_reset"),
            TelephonyEvent::VoiceCallInterruption => self.tele.inc("telephony.voice.interruption"),
            TelephonyEvent::RatChanged { .. } => self.tele.inc("telephony.rat.changed"),
            TelephonyEvent::SmsSendFailed => self.tele.inc("telephony.sms.send_fail"),
            TelephonyEvent::VoiceSetupFailed => self.tele.inc("telephony.voice.setup_fail"),
        }
    }

    fn in_situ(&self, view: Option<&CellView>) -> InSituInfo {
        match view.or_else(|| self.modem.serving()) {
            Some(v) => InSituInfo {
                rat: v.rat,
                signal: v.level,
                apn: Apn::Internet,
                bs: Some(self.env.bs(v.bs).id),
                isp: self.cfg.isp,
            },
            None => InSituInfo {
                rat: self.cfg.rats.highest().unwrap_or(Rat::G4),
                signal: cellrel_types::SignalLevel::L0,
                apn: Apn::Internet,
                bs: None,
                isp: self.cfg.isp,
            },
        }
    }

    // ---- recurring-event scheduling -------------------------------------

    fn schedule_next_stall_injection<Q: Scheduler<WorldEvent>>(&mut self, queue: &mut Q) {
        let mult = self
            .serving_risk
            .map(|r| r.stall_rate_multiplier())
            .unwrap_or(1.0);
        // Ambient load (and with it the stall hazard) follows the day:
        // rush hours are the worst, deep night the calmest.
        let hour = queue.now().as_secs_f64() / 3600.0;
        let diurnal = cellrel_radio::load::diurnal_factor(hour);
        let rate = (self.cfg.stall_rate_per_hour * mult * diurnal).max(1e-6);
        let wait = SimDuration::from_secs_f64(self.rng.exp(3600.0 / rate).max(1.0));
        let condition = if self.rng.chance(self.cfg.fp_condition_prob) {
            *self.rng.choose(&[
                LinkCondition::FirewallMisconfig,
                LinkCondition::BrokenProxy,
                LinkCondition::ModemDriverFault,
                LinkCondition::DnsOutage,
            ])
        } else {
            LinkCondition::NetworkBlackhole
        };
        queue.schedule_after(wait, WorldEvent::StallInject(condition));
    }

    fn schedule_next_oos<Q: Scheduler<WorldEvent>>(&mut self, queue: &mut Q) {
        let hazard = self
            .serving_risk
            .map(|r| r.out_of_service_hazard())
            .unwrap_or(0.004)
            * self.cfg.oos_scale;
        let wait = SimDuration::from_secs_f64(self.rng.exp(3600.0 / hazard.max(1e-6)).max(5.0));
        queue.schedule_after(wait, WorldEvent::OosInject);
    }

    fn schedule_next_voice_call<Q: Scheduler<WorldEvent>>(&mut self, queue: &mut Q) {
        if self.cfg.voice_calls_per_hour <= 0.0 {
            return;
        }
        let wait = SimDuration::from_secs_f64(
            self.rng
                .exp(3600.0 / self.cfg.voice_calls_per_hour)
                .max(10.0),
        );
        queue.schedule_after(wait, WorldEvent::VoiceCall);
    }

    fn schedule_next_sms<Q: Scheduler<WorldEvent>>(&mut self, queue: &mut Q) {
        if self.cfg.sms_per_hour <= 0.0 {
            return;
        }
        let wait =
            SimDuration::from_secs_f64(self.rng.exp(3600.0 / self.cfg.sms_per_hour).max(10.0));
        queue.schedule_after(wait, WorldEvent::SmsSend);
    }

    /// Natural heal time for an injected stall condition: a log-normal body
    /// (most stalls self-heal within seconds — Fig. 10: 60 % within 10 s)
    /// plus a Pareto tail for the stubborn ones.
    fn draw_heal_delay(&mut self, condition: LinkCondition) -> SimDuration {
        let secs = if condition.is_system_side() {
            // Device-side misconfigurations persist until fixed: long.
            self.rng.lognormal(5.5, 1.0) // median ~245 s
        } else if self.rng.chance(0.9) {
            self.rng.lognormal(1.9, 1.1) // median ~6.7 s body
        } else {
            self.rng.pareto(30.0, 1.1).min(90_000.0) // heavy tail
        };
        SimDuration::from_secs_f64(secs.max(0.5))
    }

    // ---- event handlers ---------------------------------------------------

    fn handle_scan<Q: Scheduler<WorldEvent>>(&mut self, now: SimTime, queue: &mut Q) {
        let views = self.env.scan_salted(
            self.pos,
            self.cfg.isp,
            self.cfg.rats,
            self.cfg.id.0 as u64 + 1,
            &mut self.rng,
        );
        let current = self.modem.serving().map(|v| v.rat);
        let selected = self.policy.select(&views, current).copied();

        match selected {
            None => {
                // No coverage at all.
                if self.modem.call().is_some() {
                    self.tracker.connection_lost(
                        &mut self.modem,
                        now,
                        cellrel_types::DataFailCause::SignalLost,
                    );
                }
                let oos = self.sst.update(now, ServiceState::OutOfService);
                if oos.is_none() && self.sst.in_outage() {
                    // freshly entered handled in update(); nothing more here
                }
            }
            Some(view) => {
                let rat_changed = current != Some(view.rat);
                let risk = self.env.risk(&view);
                if rat_changed {
                    if self.modem.call().is_some() {
                        // Transition with an active call: handover. Under
                        // dual connectivity the target's control plane was
                        // pre-established at an earlier scan (see below), so
                        // the modem treats a standby-matched target as a
                        // cheap reconfiguration.
                        match self.modem.handover(view, &risk, &mut self.rng) {
                            Ok(()) => {}
                            Err(cause) => {
                                self.tracker.reset(now);
                                self.stats.setup_errors += 1;
                                let ctx = self.in_situ(Some(&view));
                                self.emit(now, TelephonyEvent::DataSetupError { cause, ctx });
                                self.request_setup(now, queue);
                            }
                        }
                    } else {
                        self.modem.camp_on(view);
                    }
                    self.stats.rat_changes += 1;
                    self.emit(
                        now,
                        TelephonyEvent::RatChanged {
                            from: current,
                            to: view.rat,
                        },
                    );
                } else if self.modem.call().is_none() {
                    self.modem.camp_on(view);
                }
                // Dual connectivity: hold the other of the 4G/5G pair as a
                // prepared secondary cell group so the *next* transition is
                // cheap (3GPP TS 37.340).
                if self.policy.dual_connectivity() {
                    let other = match view.rat {
                        Rat::G4 => Some(Rat::G5),
                        Rat::G5 => Some(Rat::G4),
                        _ => None,
                    };
                    match other.and_then(|r| views.iter().find(|v| v.rat == r)) {
                        Some(&standby) => self.modem.prepare_standby(standby),
                        None => self.modem.clear_standby(),
                    }
                }
                self.serving_risk = Some(risk);
                // Back in coverage: close any outage.
                if let Some(d) = self.sst.update(now, ServiceState::InService) {
                    let ctx = self.in_situ(Some(&view));
                    self.emit(now, TelephonyEvent::OutOfServiceEnded { duration: d, ctx });
                }
                // Ensure a connection exists / is being built.
                if self.modem.call().is_none() {
                    self.request_setup(now, queue);
                }
            }
        }
        queue.schedule_after(self.cfg.scan_interval, WorldEvent::ScanAndSelect);
    }

    fn request_setup<Q: Scheduler<WorldEvent>>(&mut self, now: SimTime, queue: &mut Q) {
        if self.setup_pending || !self.tracker.can_attempt() {
            return;
        }
        self.setup_pending = true;
        queue.schedule_at(now, WorldEvent::SetupAttempt);
    }

    fn handle_setup_attempt<Q: Scheduler<WorldEvent>>(&mut self, now: SimTime, queue: &mut Q) {
        self.setup_pending = false;
        if self.modem.call().is_some() || !self.tracker.can_attempt() {
            return;
        }
        let Some(view) = self.modem.serving().copied() else {
            return; // not camped; the next scan will retry
        };
        let risk = self.env.risk(&view);
        self.tele.inc("telephony.setup.attempt");
        match self
            .tracker
            .attempt_setup(&mut self.modem, &risk, now, &mut self.rng)
        {
            SetupVerdict::Connected => {
                self.stats.setup_successes += 1;
                let ctx = self.in_situ(Some(&view));
                self.emit(now, TelephonyEvent::DataSetupSuccess { ctx });
            }
            SetupVerdict::RetryAfter(delay, cause) => {
                self.stats.setup_errors += 1;
                self.tele.inc("telephony.setup.retry");
                let ctx = self.in_situ(Some(&view));
                self.emit(now, TelephonyEvent::DataSetupError { cause, ctx });
                self.setup_pending = true;
                queue.schedule_after(delay, WorldEvent::SetupAttempt);
            }
            SetupVerdict::GaveUp(cause) => {
                self.stats.setup_errors += 1;
                self.tele.inc("telephony.setup.gave_up");
                let ctx = self.in_situ(Some(&view));
                self.emit(now, TelephonyEvent::DataSetupError { cause, ctx });
                // Next scan may pick a different cell and retry from scratch.
            }
        }
    }

    fn handle_app_traffic<Q: Scheduler<WorldEvent>>(&mut self, now: SimTime, queue: &mut Q) {
        if self.screen_active && self.modem.call().is_some() && self.sst.state().data_possible() {
            let burst = 8 + self.rng.index(20);
            self.stack.app_exchange(now, burst);
        }
        queue.schedule_after(self.cfg.traffic_interval, WorldEvent::AppTraffic);
    }

    fn handle_stall_poll<Q: Scheduler<WorldEvent>>(&mut self, now: SimTime, queue: &mut Q) {
        match self.detector.poll(now, &mut self.stack) {
            Some(true) => {
                self.stats.stalls_detected += 1;
                if let Some(ep) = &mut self.stall {
                    ep.detected_at = Some(now);
                }
                let condition = self.stack.link();
                let ctx = self.in_situ(None);
                self.emit(now, TelephonyEvent::DataStallSuspected { ctx, condition });
                // Kick off the three-stage recovery engine.
                if !self.recovery.active() {
                    let probation = self.recovery.begin(now);
                    self.probation_token =
                        Some(queue.schedule_after(probation, WorldEvent::ProbationExpired));
                }
            }
            Some(false) => {
                self.finish_stall(now, queue);
            }
            None => {}
        }
        queue.schedule_after(self.detector.poll_interval(), WorldEvent::StallPoll);
    }

    /// Close out the current stall episode (predicate fell). The reported
    /// duration is detection → heal — the span Android (and the monitor's
    /// probing) can observe; pre-detection time is invisible to the device.
    fn finish_stall<Q: Scheduler<WorldEvent>>(&mut self, now: SimTime, queue: &mut Q) {
        if let Some(ep) = self.stall.take() {
            if let Some(detected_at) = ep.detected_at {
                debug_assert!(detected_at >= ep.onset, "detection precedes onset");
                self.stats.stalls_cleared += 1;
                let healed = ep.healed_at.unwrap_or(now).max(detected_at);
                let duration = healed.since(detected_at);
                // The detect→recover span — what TIMP's probation tuning
                // shortens, and what the monitor's probing estimates.
                span!(
                    self.tele,
                    "telephony.stall.recover",
                    detected_at,
                    self.cfg.id.0 as u64
                )
                .end(healed);
                let ctx = self.in_situ(None);
                self.emit(
                    now,
                    TelephonyEvent::DataStallCleared {
                        duration,
                        ctx,
                        condition: ep.condition,
                    },
                );
            }
        }
        if self.recovery.active() {
            self.recovery.stall_cleared();
        }
        self.cancel_probation(queue);
    }

    /// Drop any pending probation timer *and its queued event*. Merely
    /// forgetting the token would leave a stale `ProbationExpired` in the
    /// queue, which could execute a recovery stage early in a later
    /// episode — exactly the regression the campaign's probation invariant
    /// watches for.
    fn cancel_probation<Q: Scheduler<WorldEvent>>(&mut self, queue: &mut Q) {
        if let Some(tok) = self.probation_token.take() {
            queue.cancel(tok);
        }
    }

    fn handle_stall_inject<Q: Scheduler<WorldEvent>>(
        &mut self,
        now: SimTime,
        condition: LinkCondition,
        queue: &mut Q,
    ) {
        if !self.injection_enabled {
            return; // quiesced: no new faults, and stop rescheduling
        }
        // Only one condition at a time; re-injection while stalled just
        // reschedules the next injection.
        if self.stall.is_none() && self.modem.call().is_some() {
            self.stack.set_link(condition);
            let heal = self.draw_heal_delay(condition);
            let heal_token = queue.schedule_after(heal, WorldEvent::StallNaturalHeal);
            // The user notices the stall (if it is user-visible: inbound
            // stops) and resets after their tolerance.
            let reset_token = if condition.delivers_inbound() {
                None
            } else {
                let tolerance = SimDuration::from_secs_f64(
                    self.rng
                        .lognormal(self.cfg.user_reset_median_secs.ln(), 0.5)
                        .max(5.0),
                );
                Some(queue.schedule_after(tolerance, WorldEvent::UserManualReset))
            };
            self.stall = Some(StallEpisode {
                onset: now,
                condition,
                detected_at: None,
                healed_at: None,
                heal_token: Some(heal_token),
                reset_token,
            });
        }
        self.schedule_next_stall_injection(queue);
    }

    fn heal_link<Q: Scheduler<WorldEvent>>(&mut self, now: SimTime, queue: &mut Q) {
        self.stack.set_link(LinkCondition::Healthy);
        if let Some(ep) = &mut self.stall {
            ep.healed_at.get_or_insert(now);
            if let Some(tok) = ep.heal_token.take() {
                queue.cancel(tok);
            }
            if let Some(tok) = ep.reset_token.take() {
                queue.cancel(tok);
            }
        }
        // Refresh counters promptly so the next poll observes the falling
        // edge: exchange a small burst now.
        if self.modem.call().is_some() {
            self.stack.reset_counters();
            self.stack.app_exchange(now, 3);
        }
    }

    fn handle_natural_heal<Q: Scheduler<WorldEvent>>(&mut self, now: SimTime, queue: &mut Q) {
        if self.stall.is_some() {
            self.heal_link(now, queue);
            if self
                .stall
                .as_ref()
                .is_some_and(|ep| ep.detected_at.is_none())
            {
                // Healed before the detector ever fired: silent episode.
                self.stall = None;
                if self.recovery.active() {
                    self.recovery.stall_cleared();
                }
                self.cancel_probation(queue);
            } else {
                self.finish_stall(now, queue);
            }
        }
    }

    fn handle_probation_expired<Q: Scheduler<WorldEvent>>(&mut self, now: SimTime, queue: &mut Q) {
        self.probation_token = None;
        if !self.recovery.active() {
            return;
        }
        // Android re-checks before acting: the stall may have self-healed.
        if !self.stack.stall_detected(now) {
            self.recovery.stall_cleared();
            return;
        }
        // What the next stage *can* fix depends on the underlying
        // condition: bearer-level operations cannot repair device-side
        // misconfigurations, but a radio restart clears a wedged driver.
        let condition = self
            .stall
            .as_ref()
            .map(|ep| ep.condition)
            .unwrap_or(LinkCondition::NetworkBlackhole);
        let action_pending = self
            .recovery
            .next_action()
            .expect("active recovery has a pending action");
        let fixable = action_can_fix(condition, action_pending);
        let (action, fixed, next_probation) =
            self.recovery.probation_expired(fixable, &mut self.rng);
        debug_assert_eq!(action, action_pending);
        self.stats.recovery_actions += 1;
        self.apply_recovery_action(now, action, queue);
        self.emit(
            now,
            TelephonyEvent::RecoveryActionExecuted {
                stage: action.stage(),
                fixed,
            },
        );
        if fixed {
            self.heal_link(now, queue);
            self.finish_stall(now, queue);
        } else if let Some(p) = next_probation {
            self.probation_token = Some(queue.schedule_after(p, WorldEvent::ProbationExpired));
        }
    }

    fn apply_recovery_action<Q: Scheduler<WorldEvent>>(
        &mut self,
        now: SimTime,
        action: RecoveryAction,
        queue: &mut Q,
    ) {
        match action {
            RecoveryAction::CleanupConnections => {
                self.tracker.disconnect(&mut self.modem, now);
                self.stack.reset_counters();
                self.detector.reset();
                self.request_setup(now, queue);
            }
            RecoveryAction::Reregister => {
                if let Some(risk) = self.serving_risk {
                    let _ = self.modem.reregister(&risk, &mut self.rng);
                }
                self.tracker.reset(now);
                self.stack.reset_counters();
                self.detector.reset();
                self.request_setup(now, queue);
            }
            RecoveryAction::RadioRestart => {
                self.modem.restart();
                self.tracker.reset(now);
                self.stack.reset_counters();
                self.detector.reset();
                // Radio restart requires a fresh scan to camp again; the
                // periodic scan will rebuild the connection.
            }
        }
    }

    fn handle_manual_reset<Q: Scheduler<WorldEvent>>(&mut self, now: SimTime, queue: &mut Q) {
        let Some(ep) = &mut self.stall else { return };
        ep.reset_token = None;
        self.stats.manual_resets += 1;
        self.emit(now, TelephonyEvent::ManualReset);
        // Toggling data tears the bearer down and rebuilds it. That fixes
        // most network-side blackholes (fresh bearer) but not device-side
        // misconfigurations.
        let fix_prob = if self
            .stall
            .as_ref()
            .is_some_and(|e| e.condition.is_system_side())
        {
            0.25
        } else {
            0.85
        };
        self.tracker.disconnect(&mut self.modem, now);
        self.tracker.reset(now);
        self.stack.reset_counters();
        self.detector.reset();
        if self.rng.chance(fix_prob) {
            self.heal_link(now, queue);
            self.finish_stall(now, queue);
        }
        self.request_setup(now, queue);
    }

    /// Alternate active/idle periods whose mean lengths realise the
    /// configured active fraction (mean cycle: 30 minutes).
    fn schedule_screen_toggle<Q: Scheduler<WorldEvent>>(&mut self, queue: &mut Q) {
        let cycle_secs = 1800.0;
        let frac = self.cfg.screen_active_fraction.clamp(0.01, 0.99);
        let mean = if self.screen_active {
            cycle_secs * frac
        } else {
            cycle_secs * (1.0 - frac)
        };
        let wait = SimDuration::from_secs_f64(self.rng.exp(mean).max(5.0));
        queue.schedule_after(wait, WorldEvent::ScreenToggle);
    }

    fn handle_screen_toggle<Q: Scheduler<WorldEvent>>(&mut self, queue: &mut Q) {
        self.screen_active = !self.screen_active;
        self.schedule_screen_toggle(queue);
    }

    fn handle_move<Q: Scheduler<WorldEvent>>(&mut self, now: SimTime, queue: &mut Q) {
        let next = match self.cfg.mobility {
            MobilityProfile::Stationary => self.pos,
            MobilityProfile::Commuter { work } => {
                // Day/night schedule with jitter: at work 09–18 local time.
                let hour = (now.as_secs() / 3600) % 24;
                let target = if (9..18).contains(&hour) {
                    work
                } else {
                    self.cfg.home
                };
                target.offset(self.rng.normal(0.0, 0.2), self.rng.normal(0.0, 0.2))
            }
            MobilityProfile::Roamer { radius_km } => self.cfg.home.offset(
                self.rng.normal(0.0, radius_km / 2.0),
                self.rng.normal(0.0, radius_km / 2.0),
            ),
        };
        let moved_km = next.distance_km(self.pos);
        self.pos = next;
        self.stats.moves += 1;
        // A significant move crosses tracking areas: run a TAU. Failures
        // drop the data call (stale EMM state); the retry machinery and the
        // next scan rebuild it.
        if moved_km > 0.5 {
            if let Some(risk) = self.serving_risk {
                self.stats.tau_attempts += 1;
                if self
                    .modem
                    .tracking_area_update(&risk, &mut self.rng)
                    .is_err()
                {
                    self.stats.tau_failures += 1;
                    self.tracker.reset(now);
                    self.request_setup(now, queue);
                }
            }
        }
        queue.schedule_after(self.cfg.move_interval, WorldEvent::Move);
    }

    fn handle_sms_send<Q: Scheduler<WorldEvent>>(&mut self, now: SimTime, queue: &mut Q) {
        if let (Some(view), Some(risk)) = (self.modem.serving().copied(), self.serving_risk) {
            let (result, _attempts) = self.sms.send_with_retries(view.rat, &risk, &mut self.rng);
            if result == crate::sms::SmsResult::Failed {
                self.stats.sms_failures += 1;
                self.emit(now, TelephonyEvent::SmsSendFailed);
            }
        }
        self.schedule_next_sms(queue);
    }

    fn handle_voice_call<Q: Scheduler<WorldEvent>>(&mut self, now: SimTime, queue: &mut Q) {
        // Attempt the call setup itself (CS on 2G/3G, VoLTE on 4G/5G).
        if let (Some(view), Some(risk)) = (self.modem.serving().copied(), self.serving_risk) {
            let ok = self.voice.attempt_call(
                view.rat,
                &risk,
                self.modem.call().is_some(),
                &mut self.rng,
            );
            if !ok {
                self.stats.voice_setup_failures += 1;
                self.emit(now, TelephonyEvent::VoiceSetupFailed);
                self.schedule_next_voice_call(queue);
                return;
            }
        }
        // CS-fallback: on 2G/3G the data bearer is suspended by the call —
        // a classic instrumentation false positive.
        let on_legacy = self
            .modem
            .serving()
            .map(|v| matches!(v.rat, Rat::G2 | Rat::G3))
            .unwrap_or(false);
        if on_legacy && self.modem.call().is_some() {
            self.stats.voice_interruptions += 1;
            self.emit(now, TelephonyEvent::VoiceCallInterruption);
            self.tracker.connection_lost(
                &mut self.modem,
                now,
                cellrel_types::DataFailCause::TetheredCallActive,
            );
            self.request_setup(now, queue);
        }
        self.schedule_next_voice_call(queue);
    }

    fn handle_oos_inject<Q: Scheduler<WorldEvent>>(&mut self, now: SimTime, queue: &mut Q) {
        if !self.injection_enabled {
            return; // quiesced: no new outages, and stop rescheduling
        }
        if self.sst.state() == ServiceState::InService {
            self.stats.oos_episodes += 1;
            self.sst.update(now, ServiceState::OutOfService);
            let ctx = self.in_situ(None);
            self.emit(now, TelephonyEvent::OutOfServiceBegan { ctx });
            // Outage duration: minutes-scale log-normal; disrepair sites
            // produce the multi-hour tail.
            let disrepair = self.serving_risk.map(|r| r.disrepair).unwrap_or(false);
            let secs = if disrepair {
                self.rng.lognormal(8.0, 1.2).min(92_000.0) // median ~50 min
            } else {
                self.rng.lognormal(4.2, 1.0) // median ~67 s
            };
            self.oos_heal_token = Some(queue.schedule_after(
                SimDuration::from_secs_f64(secs.max(2.0)),
                WorldEvent::OosHeal,
            ));
        }
        self.schedule_next_oos(queue);
    }

    fn handle_oos_heal(&mut self, now: SimTime) {
        self.oos_heal_token = None;
        if let Some(d) = self.sst.update(now, ServiceState::InService) {
            let ctx = self.in_situ(None);
            self.emit(now, TelephonyEvent::OutOfServiceEnded { duration: d, ctx });
        }
    }
}

/// Whether a recovery operation can fix the given link condition at all.
/// Network-side blackholes yield to any bearer-level intervention; a wedged
/// modem driver only yields to a radio restart; local misconfigurations
/// (firewall, proxy) and upstream DNS outages yield to none of them.
fn action_can_fix(condition: LinkCondition, action: RecoveryAction) -> bool {
    match condition {
        LinkCondition::Healthy | LinkCondition::NetworkBlackhole => true,
        LinkCondition::ModemDriverFault => action == RecoveryAction::RadioRestart,
        LinkCondition::FirewallMisconfig
        | LinkCondition::BrokenProxy
        | LinkCondition::DnsOutage => false,
    }
}

impl<'a, L: TelephonyListener, Q: Scheduler<WorldEvent>> EventHandler<WorldEvent, Q>
    for DeviceSim<'a, L>
{
    fn handle(&mut self, at: SimTime, event: WorldEvent, queue: &mut Q) {
        match event {
            WorldEvent::ScanAndSelect => self.handle_scan(at, queue),
            WorldEvent::SetupAttempt => self.handle_setup_attempt(at, queue),
            WorldEvent::AppTraffic => self.handle_app_traffic(at, queue),
            WorldEvent::StallPoll => self.handle_stall_poll(at, queue),
            WorldEvent::StallInject(c) => self.handle_stall_inject(at, c, queue),
            WorldEvent::StallNaturalHeal => self.handle_natural_heal(at, queue),
            WorldEvent::ProbationExpired => self.handle_probation_expired(at, queue),
            WorldEvent::UserManualReset => self.handle_manual_reset(at, queue),
            WorldEvent::VoiceCall => self.handle_voice_call(at, queue),
            WorldEvent::SmsSend => self.handle_sms_send(at, queue),
            WorldEvent::Move => self.handle_move(at, queue),
            WorldEvent::ScreenToggle => self.handle_screen_toggle(queue),
            WorldEvent::OosInject => self.handle_oos_inject(at, queue),
            WorldEvent::OosHeal => self.handle_oos_heal(at),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::RecordingListener;
    use cellrel_radio::DeploymentConfig;
    use cellrel_sim::EventQueue;

    fn run_device(
        mut cfg: DeviceConfig,
        hours: u64,
        seed: u64,
    ) -> (DeviceStats, Vec<(SimTime, TelephonyEvent)>) {
        let mut world_rng = SimRng::new(seed);
        let env = RadioEnvironment::generate(DeploymentConfig::small(), &mut world_rng);
        cfg.home = env.city_centers()[0];
        let mut queue = EventQueue::new();
        let mut dev = DeviceSim::new(
            cfg,
            &env,
            RecordingListener::default(),
            world_rng.fork(1),
            &mut queue,
        );
        queue.run_until(&mut dev, SimTime::from_secs(hours * 3600));
        let stats = *dev.stats();
        (stats, dev.into_listener().log)
    }

    fn base_cfg() -> DeviceConfig {
        DeviceConfig::new(DeviceId(1), Isp::A, Pos::new(0.0, 0.0))
    }

    /// The scheduler-backend drop-in proof: the full device stack — every
    /// periodic source (scans, traffic, stall polls, probations, mobility,
    /// OOS) plus all the cancel-heavy stall bookkeeping — produces a
    /// bit-identical event log and stats on the timer wheel and on the
    /// binary-heap queue.
    #[test]
    fn wheel_backend_is_bit_identical_to_queue() {
        use cellrel_sim::TimerWheel;

        let mut cfg = base_cfg();
        cfg.stall_rate_per_hour = 4.0;
        cfg.mobility = MobilityProfile::Roamer { radius_km: 3.0 };
        let horizon = SimTime::from_secs(24 * 3600);

        let mut world_rng = SimRng::new(77);
        let env = RadioEnvironment::generate(DeploymentConfig::small(), &mut world_rng);
        cfg.home = env.city_centers()[0];

        let mut queue = EventQueue::new();
        let mut on_queue = DeviceSim::new(
            cfg.clone(),
            &env,
            RecordingListener::default(),
            SimRng::for_substream(77, 1),
            &mut queue,
        );
        let n_queue = queue.run_until(&mut on_queue, horizon);

        let mut wheel = TimerWheel::new();
        let mut on_wheel = DeviceSim::new(
            cfg,
            &env,
            RecordingListener::default(),
            SimRng::for_substream(77, 1),
            &mut wheel,
        );
        let n_wheel = wheel.run_until(&mut on_wheel, horizon);

        assert_eq!(n_queue, n_wheel, "dispatch counts diverged");
        assert_eq!(on_queue.stats(), on_wheel.stats(), "stats diverged");
        let log_q = on_queue.into_listener().log;
        let log_w = on_wheel.into_listener().log;
        assert_eq!(log_q.len(), log_w.len(), "log lengths diverged");
        for (i, (a, b)) in log_q.iter().zip(log_w.iter()).enumerate() {
            assert_eq!(a, b, "log diverged at entry {i}");
        }
    }

    #[test]
    fn device_connects_and_exchanges_traffic() {
        let (stats, log) = run_device(base_cfg(), 2, 42);
        assert!(
            stats.setup_successes > 0,
            "device never connected: {stats:?}"
        );
        assert!(log
            .iter()
            .any(|(_, e)| matches!(e, TelephonyEvent::DataSetupSuccess { .. })));
    }

    #[test]
    fn stalls_are_detected_and_cleared() {
        let mut cfg = base_cfg();
        cfg.stall_rate_per_hour = 6.0; // force plenty of stalls
        let (stats, log) = run_device(cfg, 12, 43);
        assert!(stats.stalls_detected > 3, "{stats:?}");
        assert!(stats.stalls_cleared > 0, "{stats:?}");
        // Every cleared stall carries a positive duration.
        for (_, e) in &log {
            if let TelephonyEvent::DataStallCleared { duration, .. } = e {
                assert!(!duration.is_zero());
            }
        }
    }

    #[test]
    fn cleared_never_exceeds_detected() {
        let mut cfg = base_cfg();
        cfg.stall_rate_per_hour = 6.0;
        let (stats, _) = run_device(cfg, 8, 44);
        assert!(stats.stalls_cleared <= stats.stalls_detected);
    }

    #[test]
    fn recovery_actions_fire_under_vanilla_probations() {
        let mut cfg = base_cfg();
        cfg.stall_rate_per_hour = 8.0;
        // Suppress the user so recovery gets a chance.
        cfg.user_reset_median_secs = 100_000.0;
        let (stats, log) = run_device(cfg, 24, 45);
        assert!(stats.recovery_actions > 0, "{stats:?}");
        assert!(log
            .iter()
            .any(|(_, e)| matches!(e, TelephonyEvent::RecoveryActionExecuted { .. })));
    }

    #[test]
    fn users_reset_before_vanilla_recovery_usually() {
        // §3.2: with one-minute probations, the ~30 s user tolerance fires
        // first for most stalls.
        let mut cfg = base_cfg();
        cfg.stall_rate_per_hour = 6.0;
        let (stats, _) = run_device(cfg, 24, 46);
        assert!(
            stats.manual_resets > stats.recovery_actions,
            "manual {} vs recovery {}",
            stats.manual_resets,
            stats.recovery_actions
        );
    }

    #[test]
    fn timp_recovery_cuts_stall_durations() {
        let mut vanilla = base_cfg();
        vanilla.stall_rate_per_hour = 6.0;
        vanilla.user_reset_median_secs = 100_000.0;
        let mut timp = vanilla.clone();
        timp.recovery = RecoveryConfig::timp_optimized();

        let mean_duration = |log: &[(SimTime, TelephonyEvent)]| {
            let durs: Vec<f64> = log
                .iter()
                .filter_map(|(_, e)| match e {
                    TelephonyEvent::DataStallCleared {
                        duration,
                        condition,
                        ..
                    } if !condition.is_system_side() => Some(duration.as_secs_f64()),
                    _ => None,
                })
                .collect();
            assert!(durs.len() > 5, "not enough stalls: {}", durs.len());
            durs.iter().sum::<f64>() / durs.len() as f64
        };

        let (_, log_v) = run_device(vanilla, 48, 47);
        let (_, log_t) = run_device(timp, 48, 47);
        let mv = mean_duration(&log_v);
        let mt = mean_duration(&log_t);
        assert!(
            mt < mv,
            "TIMP probations must shorten stalls: vanilla {mv:.1}s vs timp {mt:.1}s"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let (s1, l1) = run_device(base_cfg(), 6, 99);
        let (s2, l2) = run_device(base_cfg(), 6, 99);
        assert_eq!(s1, s2);
        assert_eq!(l1.len(), l2.len());
    }

    #[test]
    fn fp_conditions_surface_in_stall_events() {
        let mut cfg = base_cfg();
        cfg.stall_rate_per_hour = 8.0;
        cfg.fp_condition_prob = 0.9;
        let (_, log) = run_device(cfg, 24, 48);
        let fp_stalls = log
            .iter()
            .filter(|(_, e)| {
                matches!(
                    e,
                    TelephonyEvent::DataStallSuspected { condition, .. }
                    if *condition != LinkCondition::NetworkBlackhole
                )
            })
            .count();
        assert!(fp_stalls > 0, "expected some FP-condition stalls");
    }

    #[test]
    fn commuters_move_and_exercise_mobility_management() {
        let mut world_rng = SimRng::new(77);
        let env =
            RadioEnvironment::generate(cellrel_radio::DeploymentConfig::small(), &mut world_rng);
        let mut cfg = base_cfg();
        cfg.home = env.city_centers()[0];
        let work = env.city_centers()[1 % env.city_centers().len()].offset(1.0, 0.5);
        cfg.mobility = MobilityProfile::Commuter { work };
        let mut queue = EventQueue::new();
        let mut dev = DeviceSim::new(
            cfg,
            &env,
            RecordingListener::default(),
            world_rng.fork(1),
            &mut queue,
        );
        queue.run_until(&mut dev, SimTime::from_secs(48 * 3600));
        let stats = *dev.stats();
        assert!(stats.moves > 50, "commuter never moved: {stats:?}");
        // Crossing the map twice a day runs tracking-area updates; whether
        // any *fails* is stochastic, so assert on attempts.
        assert!(stats.tau_attempts > 2, "no TAUs attempted: {stats:?}");
    }

    #[test]
    fn roamers_wander_but_stationary_devices_do_not() {
        let mut world_rng = SimRng::new(78);
        let env =
            RadioEnvironment::generate(cellrel_radio::DeploymentConfig::small(), &mut world_rng);
        let mut cfg = base_cfg();
        cfg.home = env.city_centers()[0];
        cfg.mobility = MobilityProfile::Roamer { radius_km: 3.0 };
        let mut queue = EventQueue::new();
        let mut dev = DeviceSim::new(
            cfg,
            &env,
            RecordingListener::default(),
            world_rng.fork(1),
            &mut queue,
        );
        queue.run_until(&mut dev, SimTime::from_secs(6 * 3600));
        assert!(dev.stats().moves > 10);

        let mut cfg2 = base_cfg();
        cfg2.home = env.city_centers()[0];
        let mut queue2 = EventQueue::new();
        let mut still = DeviceSim::new(
            cfg2,
            &env,
            RecordingListener::default(),
            world_rng.fork(2),
            &mut queue2,
        );
        queue2.run_until(&mut still, SimTime::from_secs(6 * 3600));
        assert_eq!(still.stats().moves, 0);
    }

    #[test]
    fn idle_screens_hide_stalls_from_the_detector() {
        // With the screen mostly off there is little traffic, so the kernel
        // predicate rarely trips even though the link stalls just as often.
        let mut active = base_cfg();
        active.stall_rate_per_hour = 6.0;
        let mut idle = active.clone();
        idle.screen_active_fraction = 0.15;

        let (a_stats, _) = run_device(active, 24, 91);
        let (i_stats, _) = run_device(idle, 24, 91);
        assert!(
            i_stats.stalls_detected * 2 < a_stats.stalls_detected,
            "idle {} vs active {} detections",
            i_stats.stalls_detected,
            a_stats.stalls_detected
        );
    }

    #[test]
    fn oos_episodes_have_durations() {
        let mut cfg = base_cfg();
        cfg.oos_scale = 40.0;
        let (stats, log) = run_device(cfg, 24, 49);
        assert!(stats.oos_episodes > 0, "{stats:?}");
        let ends = log
            .iter()
            .filter(|(_, e)| matches!(e, TelephonyEvent::OutOfServiceEnded { .. }))
            .count();
        assert!(ends > 0);
    }
}
