//! RAT selection policies.
//!
//! This is where the paper's headline software defect lives and where its
//! first deployed fix goes:
//!
//! * [`VanillaAndroid9`] — no 5G support; prefers the highest available
//!   legacy generation.
//! * [`VanillaAndroid10`] — "5G is blindly preferred to the other RATs"
//!   (§3.2): a level-0 5G cell beats a level-4 4G cell. This is the defect
//!   that inflates failures on 5G phones.
//! * [`StabilityCompatible`] — the paper's §4.2 fix: avoid transitions whose
//!   target signal level is 0 when any usable alternative exists (the four
//!   disastrous 4G→5G cases of Fig. 17f, generalised to all RATs per the
//!   "failures tend to occur when there is level-0 RSS after transition"
//!   pattern), with mild stickiness to the serving RAT to avoid churn.
//! * [`DualConnectivity`] — 3GPP TS 37.340 4G/5G dual connectivity: keeps a
//!   master + slave control-plane pair so transitions between 4G and 5G are
//!   faster and less disruptive; a wrapper over any inner policy.

use cellrel_radio::CellView;
use cellrel_types::{Rat, SignalLevel};
use std::fmt;

/// A RAT selection policy: given the scan's best-cell-per-RAT views and the
/// currently serving RAT, pick the cell to camp on.
pub trait RatSelectionPolicy {
    /// Human-readable policy name (used in experiment tables).
    fn name(&self) -> &'static str;

    /// Choose a view. `None` means no usable candidate.
    fn select<'a>(&self, views: &'a [CellView], current: Option<Rat>) -> Option<&'a CellView>;

    /// Whether the policy maintains 4G/5G dual connectivity (shortens
    /// transition disruption).
    fn dual_connectivity(&self) -> bool {
        false
    }
}

/// Identifies a policy in configs and result tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RatPolicyKind {
    /// Android 9 baseline.
    Android9,
    /// Android 10 with blind 5G preference.
    Android10,
    /// Android 11 — §6: examined by the authors after the study window;
    /// "the majority of cellular reliability problems we have revealed …
    /// remain in Android 11, especially the aggressive RAT transition
    /// policy and the lagging Data_Stall recovery mechanism".
    Android11,
    /// The paper's stability-compatible policy (with dual connectivity).
    StabilityCompatible,
    /// Ablation: the stability-compatible policy *without* 4G/5G dual
    /// connectivity (transitions pay the full disruption cost).
    StabilityNoDualConnectivity,
    /// Ablation: stability-compatible with a custom minimum-usable level
    /// threshold (the paper's rule is "avoid level-0 targets" = L1).
    StabilityThreshold(SignalLevel),
}

impl RatPolicyKind {
    /// Instantiate the policy.
    pub fn build(self) -> Box<dyn RatSelectionPolicy> {
        match self {
            RatPolicyKind::Android9 => Box::new(VanillaAndroid9),
            RatPolicyKind::Android10 => Box::new(VanillaAndroid10),
            RatPolicyKind::Android11 => Box::new(VanillaAndroid11),
            RatPolicyKind::StabilityCompatible => {
                Box::new(DualConnectivity::new(StabilityCompatible::default()))
            }
            RatPolicyKind::StabilityNoDualConnectivity => Box::new(StabilityCompatible::default()),
            RatPolicyKind::StabilityThreshold(level) => {
                Box::new(DualConnectivity::new(StabilityCompatible {
                    min_upgrade_level: level,
                }))
            }
        }
    }
}

impl fmt::Display for RatPolicyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            RatPolicyKind::Android9 => "vanilla-android-9",
            RatPolicyKind::Android10 => "vanilla-android-10",
            RatPolicyKind::Android11 => "vanilla-android-11",
            RatPolicyKind::StabilityCompatible => "stability-compatible",
            RatPolicyKind::StabilityNoDualConnectivity => "stability-no-dc",
            RatPolicyKind::StabilityThreshold(_) => "stability-threshold",
        })
    }
}

/// Android 9: no 5G stack; prefer the highest of 4G/3G/2G that is present
/// at all (vanilla Android pays no attention to the signal level here).
#[derive(Debug, Clone, Copy, Default)]
pub struct VanillaAndroid9;

impl RatSelectionPolicy for VanillaAndroid9 {
    fn name(&self) -> &'static str {
        "vanilla-android-9"
    }

    fn select<'a>(&self, views: &'a [CellView], _current: Option<Rat>) -> Option<&'a CellView> {
        views
            .iter()
            .filter(|v| v.rat != Rat::G5)
            .max_by_key(|v| v.rat)
    }
}

/// Android 10: blind 5G preference — any detectable 5G cell wins over
/// everything, regardless of signal level (§3.2).
#[derive(Debug, Clone, Copy, Default)]
pub struct VanillaAndroid10;

impl RatSelectionPolicy for VanillaAndroid10 {
    fn name(&self) -> &'static str {
        "vanilla-android-10"
    }

    fn select<'a>(&self, views: &'a [CellView], _current: Option<Rat>) -> Option<&'a CellView> {
        views.iter().max_by_key(|v| v.rat)
    }
}

/// Android 11 (§6): the blind 5G preference survives, with one cosmetic
/// refinement — among equal-generation candidates it at least picks the
/// stronger cell. The defining defect (a level-0 5G cell beating a healthy
/// 4G cell) is unchanged, which is the paper's point.
#[derive(Debug, Clone, Copy, Default)]
pub struct VanillaAndroid11;

impl RatSelectionPolicy for VanillaAndroid11 {
    fn name(&self) -> &'static str {
        "vanilla-android-11"
    }

    fn select<'a>(&self, views: &'a [CellView], _current: Option<Rat>) -> Option<&'a CellView> {
        views
            .iter()
            .max_by(|a, b| (a.rat, a.level).cmp(&(b.rat, b.level)))
    }
}

/// The stability-compatible policy of §4.2.
#[derive(Debug, Clone, Copy)]
pub struct StabilityCompatible {
    /// Minimum target level for an *upgrade* transition to be taken when a
    /// usable alternative exists. The paper's rule is "avoid level-0
    /// targets"; expressed as a threshold to let ablations sweep it.
    pub min_upgrade_level: SignalLevel,
}

impl Default for StabilityCompatible {
    fn default() -> Self {
        StabilityCompatible {
            min_upgrade_level: SignalLevel::L1,
        }
    }
}

impl RatSelectionPolicy for StabilityCompatible {
    fn name(&self) -> &'static str {
        "stability-compatible"
    }

    fn select<'a>(&self, views: &'a [CellView], current: Option<Rat>) -> Option<&'a CellView> {
        if views.is_empty() {
            return None;
        }
        // Usable candidates: signal level at or above the threshold.
        let usable: Vec<&CellView> = views
            .iter()
            .filter(|v| v.level >= self.min_upgrade_level)
            .collect();

        if usable.is_empty() {
            // Nothing usable anywhere: fall back to the strongest *level*
            // (not the highest generation) — a weak 4G beats a dead 5G.
            return views
                .iter()
                .max_by(|a, b| (a.level, a.rat).cmp(&(b.level, b.rat)));
        }

        // Among usable candidates prefer the highest generation, then level.
        let best = usable
            .iter()
            .copied()
            .max_by_key(|v| (v.rat, v.level))
            .expect("usable is non-empty");

        // Hysteresis: a transition away from a still-usable serving RAT is
        // only taken for a *comfortable* upgrade (generation up AND at
        // least moderate signal). This is the dual-connectivity-era
        // smoothness requirement of §4.2 — without it the policy churns at
        // the coverage edge, which is its own failure source.
        if let Some(cur_rat) = current {
            if best.rat != cur_rat {
                if let Some(cur_view) = usable.iter().copied().find(|v| v.rat == cur_rat) {
                    let comfortable_upgrade = best.rat > cur_rat && best.level >= SignalLevel::L2;
                    if !comfortable_upgrade {
                        return Some(cur_view);
                    }
                }
            }
        }
        Some(best)
    }

    fn dual_connectivity(&self) -> bool {
        false
    }
}

/// 4G/5G dual-connectivity wrapper (3GPP TS 37.340): selection is delegated
/// to the inner policy, but the device keeps a standby control-plane link on
/// the other of {4G, 5G}, making transitions between them cheaper. The
/// device agent queries [`RatSelectionPolicy::dual_connectivity`] to decide
/// whether transitions pay the full disruption cost.
#[derive(Debug, Clone, Copy)]
pub struct DualConnectivity<P> {
    inner: P,
}

impl<P: RatSelectionPolicy> DualConnectivity<P> {
    /// Wrap a policy with dual connectivity.
    pub fn new(inner: P) -> Self {
        DualConnectivity { inner }
    }

    /// Given the selection, the standby RAT to hold (the other of 4G/5G),
    /// if the views offer it.
    pub fn standby_rat(selected: Rat, views: &[CellView]) -> Option<Rat> {
        let other = match selected {
            Rat::G4 => Rat::G5,
            Rat::G5 => Rat::G4,
            _ => return None,
        };
        views.iter().find(|v| v.rat == other).map(|v| v.rat)
    }
}

impl<P: RatSelectionPolicy> RatSelectionPolicy for DualConnectivity<P> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn select<'a>(&self, views: &'a [CellView], current: Option<Rat>) -> Option<&'a CellView> {
        self.inner.select(views, current)
    }

    fn dual_connectivity(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cellrel_radio::BsIndex;

    fn view(bs: u32, rat: Rat, level: SignalLevel) -> CellView {
        CellView::new(BsIndex(bs), rat, level.representative_rss(rat))
    }

    #[test]
    fn android9_ignores_5g() {
        let views = [
            view(0, Rat::G4, SignalLevel::L2),
            view(1, Rat::G5, SignalLevel::L5),
        ];
        let sel = VanillaAndroid9.select(&views, None).expect("candidate");
        assert_eq!(sel.rat, Rat::G4);
    }

    #[test]
    fn android9_prefers_highest_legacy_generation() {
        let views = [
            view(0, Rat::G2, SignalLevel::L5),
            view(1, Rat::G3, SignalLevel::L4),
            view(2, Rat::G4, SignalLevel::L1),
        ];
        let sel = VanillaAndroid9.select(&views, None).expect("candidate");
        assert_eq!(sel.rat, Rat::G4, "generation beats level in vanilla");
    }

    #[test]
    fn android10_blindly_prefers_5g() {
        // The defect: level-0 5G over level-4 4G.
        let views = [
            view(0, Rat::G4, SignalLevel::L4),
            view(1, Rat::G5, SignalLevel::L0),
        ];
        let sel = VanillaAndroid10.select(&views, None).expect("candidate");
        assert_eq!(sel.rat, Rat::G5);
        assert_eq!(sel.level, SignalLevel::L0);
    }

    #[test]
    fn stability_avoids_level0_5g_when_4g_usable() {
        // The four Fig. 17f cases: 4G level 1..=4 → 5G level 0 are avoided.
        for l in [
            SignalLevel::L1,
            SignalLevel::L2,
            SignalLevel::L3,
            SignalLevel::L4,
        ] {
            let views = [view(0, Rat::G4, l), view(1, Rat::G5, SignalLevel::L0)];
            let sel = StabilityCompatible::default()
                .select(&views, Some(Rat::G4))
                .expect("candidate");
            assert_eq!(sel.rat, Rat::G4, "4G {l} must beat 5G level-0");
        }
    }

    #[test]
    fn stability_still_takes_healthy_5g() {
        let views = [
            view(0, Rat::G4, SignalLevel::L4),
            view(1, Rat::G5, SignalLevel::L3),
        ];
        let sel = StabilityCompatible::default()
            .select(&views, Some(Rat::G4))
            .expect("candidate");
        assert_eq!(
            sel.rat,
            Rat::G5,
            "usable 5G is preferred — no rate sacrifice"
        );
    }

    #[test]
    fn stability_falls_back_to_strongest_when_all_level0() {
        let views = [
            view(0, Rat::G4, SignalLevel::L0),
            view(1, Rat::G5, SignalLevel::L0),
        ];
        let sel = StabilityCompatible::default()
            .select(&views, None)
            .expect("candidate");
        // Both level 0: tie broken by generation.
        assert_eq!(sel.rat, Rat::G5);
    }

    #[test]
    fn stability_generalises_to_legacy_transitions() {
        // 3G level-3 must beat 4G level-0 (Fig. 17d's dark column).
        let views = [
            view(0, Rat::G3, SignalLevel::L3),
            view(1, Rat::G4, SignalLevel::L0),
        ];
        let sel = StabilityCompatible::default()
            .select(&views, Some(Rat::G3))
            .expect("candidate");
        assert_eq!(sel.rat, Rat::G3);
    }

    #[test]
    fn empty_views_select_none() {
        assert!(VanillaAndroid9.select(&[], None).is_none());
        assert!(VanillaAndroid10.select(&[], None).is_none());
        assert!(StabilityCompatible::default().select(&[], None).is_none());
    }

    #[test]
    fn dual_connectivity_wrapper_delegates() {
        let dc = DualConnectivity::new(StabilityCompatible::default());
        assert!(dc.dual_connectivity());
        assert_eq!(dc.name(), "stability-compatible");
        let views = [
            view(0, Rat::G4, SignalLevel::L4),
            view(1, Rat::G5, SignalLevel::L3),
        ];
        let sel = dc.select(&views, None).expect("candidate");
        assert_eq!(sel.rat, Rat::G5);
        assert_eq!(
            DualConnectivity::<StabilityCompatible>::standby_rat(sel.rat, &views),
            Some(Rat::G4)
        );
    }

    #[test]
    fn standby_rat_only_for_4g_5g() {
        let views = [
            view(0, Rat::G3, SignalLevel::L4),
            view(1, Rat::G4, SignalLevel::L3),
        ];
        assert_eq!(
            DualConnectivity::<VanillaAndroid10>::standby_rat(Rat::G3, &views),
            None
        );
    }

    #[test]
    fn policy_kind_builds() {
        for kind in [
            RatPolicyKind::Android9,
            RatPolicyKind::Android10,
            RatPolicyKind::Android11,
            RatPolicyKind::StabilityCompatible,
        ] {
            let p = kind.build();
            assert!(!p.name().is_empty());
        }
        assert!(RatPolicyKind::StabilityCompatible
            .build()
            .dual_connectivity());
        assert!(!RatPolicyKind::Android10.build().dual_connectivity());
    }

    #[test]
    fn android11_keeps_the_blind_5g_defect() {
        // §6: the aggressive RAT transition policy remains in Android 11.
        let views = [
            view(0, Rat::G4, SignalLevel::L4),
            view(1, Rat::G5, SignalLevel::L0),
        ];
        let sel = VanillaAndroid11
            .select(&views, Some(Rat::G4))
            .expect("candidate");
        assert_eq!(sel.rat, Rat::G5);
        assert_eq!(sel.level, SignalLevel::L0);
    }

    #[test]
    fn android11_refines_equal_generation_ties() {
        // Unlike Android 10's arbitrary pick, 11 takes the stronger cell
        // when generations tie.
        let views = [
            view(0, Rat::G5, SignalLevel::L1),
            view(1, Rat::G5, SignalLevel::L4),
        ];
        let sel = VanillaAndroid11.select(&views, None).expect("candidate");
        assert_eq!(sel.level, SignalLevel::L4);
    }
}
