//! Legacy circuit-switched services: SMS and voice call setup.
//!
//! §3.1: the <1 % of failures that are not data-connection failures "are
//! mainly related to the traditional short message and voice call services
//! that are less frequently used today", e.g. `RIL_SMS_SEND_FAIL_RETRY`.
//! The enabling techniques "have been stable for nearly 20 years" — so the
//! model is deliberately simple and *reliable*: low per-attempt failure
//! probabilities, a bounded retry loop, and sensitivity only to the
//! signal level.

use cellrel_radio::RiskFactors;
use cellrel_sim::SimRng;
use cellrel_types::{Rat, SimDuration};

/// Result of an SMS submission attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SmsResult {
    /// Delivered to the SMSC.
    Sent,
    /// Transient failure; Android schedules a retry
    /// (`RIL_SMS_SEND_FAIL_RETRY`).
    RetryLater,
    /// Gave up after the retry budget.
    Failed,
}

/// The SMS service: a small retry state machine per message.
#[derive(Debug, Clone)]
pub struct SmsService {
    /// Maximum send attempts per message (Android retries a few times).
    pub max_attempts: u32,
    /// Delay between retries.
    pub retry_delay: SimDuration,
    sent: u64,
    retries: u64,
    failures: u64,
}

impl Default for SmsService {
    fn default() -> Self {
        SmsService {
            max_attempts: 3,
            retry_delay: SimDuration::from_secs(5),
            sent: 0,
            retries: 0,
            failures: 0,
        }
    }
}

/// Per-attempt SMS failure probability: low, signal-driven, and slightly
/// worse over packet-switched IMS paths when signal is marginal.
fn sms_attempt_failure_prob(risk: &RiskFactors, rat: Rat) -> f64 {
    let base = 0.004 + 0.05 * risk.signal_risk;
    let rat_factor = match rat {
        Rat::G2 | Rat::G3 => 1.0, // native CS SMS: battle-tested
        Rat::G4 | Rat::G5 => 1.2, // SMS-over-IMS adds moving parts
    };
    (base * rat_factor).min(0.9)
}

impl SmsService {
    /// A fresh service.
    pub fn new() -> Self {
        Self::default()
    }

    /// Messages delivered.
    pub fn sent(&self) -> u64 {
        self.sent
    }

    /// Retry events (each maps to one `RIL_SMS_SEND_FAIL_RETRY`).
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Messages abandoned after the retry budget.
    pub fn failures(&self) -> u64 {
        self.failures
    }

    /// One send attempt for a message that has already used
    /// `attempts_so_far` attempts.
    pub fn attempt_send(
        &mut self,
        attempts_so_far: u32,
        rat: Rat,
        risk: &RiskFactors,
        rng: &mut SimRng,
    ) -> SmsResult {
        if rng.chance(sms_attempt_failure_prob(risk, rat)) {
            if attempts_so_far + 1 >= self.max_attempts {
                self.failures += 1;
                SmsResult::Failed
            } else {
                self.retries += 1;
                SmsResult::RetryLater
            }
        } else {
            self.sent += 1;
            SmsResult::Sent
        }
    }

    /// Send with the full internal retry loop collapsed (macro-style use):
    /// returns the terminal result and the number of attempts consumed.
    pub fn send_with_retries(
        &mut self,
        rat: Rat,
        risk: &RiskFactors,
        rng: &mut SimRng,
    ) -> (SmsResult, u32) {
        for attempt in 0..self.max_attempts {
            match self.attempt_send(attempt, rat, risk, rng) {
                SmsResult::RetryLater => continue,
                terminal => return (terminal, attempt + 1),
            }
        }
        (SmsResult::Failed, self.max_attempts)
    }
}

/// Voice call setup over the circuit-switched (or VoLTE) path.
#[derive(Debug, Clone, Default)]
pub struct VoiceService {
    setups: u64,
    failures: u64,
}

impl VoiceService {
    /// A fresh service.
    pub fn new() -> Self {
        Self::default()
    }

    /// Successful call setups.
    pub fn setups(&self) -> u64 {
        self.setups
    }

    /// Failed call setups.
    pub fn failures(&self) -> u64 {
        self.failures
    }

    /// Attempt a call setup. Legacy CS voice is extremely reliable; VoLTE
    /// (4G/5G) couples to the data bearer health.
    pub fn attempt_call(
        &mut self,
        rat: Rat,
        risk: &RiskFactors,
        data_bearer_up: bool,
        rng: &mut SimRng,
    ) -> bool {
        let p_fail = match rat {
            Rat::G2 | Rat::G3 => 0.002 + 0.03 * risk.signal_risk,
            Rat::G4 | Rat::G5 => {
                let volte_penalty = if data_bearer_up { 0.0 } else { 0.05 };
                0.004 + 0.05 * risk.signal_risk + volte_penalty
            }
        };
        if rng.chance(p_fail.min(0.9)) {
            self.failures += 1;
            false
        } else {
            self.setups += 1;
            true
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet() -> RiskFactors {
        RiskFactors {
            signal_risk: 0.022,
            interference: 0.0,
            overload_prob: 0.0,
            emm_pressure: 0.0,
            disrepair: false,
        }
    }

    fn dead_zone() -> RiskFactors {
        RiskFactors {
            signal_risk: 0.32,
            interference: 0.6,
            overload_prob: 0.0,
            emm_pressure: 0.4,
            disrepair: false,
        }
    }

    #[test]
    fn sms_is_overwhelmingly_reliable_on_good_signal() {
        let mut svc = SmsService::new();
        let mut rng = SimRng::new(1);
        let mut delivered = 0;
        for _ in 0..10_000 {
            let (r, _) = svc.send_with_retries(Rat::G2, &quiet(), &mut rng);
            if r == SmsResult::Sent {
                delivered += 1;
            }
        }
        assert!(delivered > 9_950, "delivered {delivered}/10000");
        assert_eq!(svc.sent(), delivered);
    }

    #[test]
    fn sms_failures_are_under_one_percent_of_cellular_failures() {
        // The <1 % bucket: even at poor signal, terminal SMS failures are
        // rare relative to data-connection failures at the same risk.
        let mut svc = SmsService::new();
        let mut rng = SimRng::new(2);
        for _ in 0..10_000 {
            let _ = svc.send_with_retries(Rat::G4, &dead_zone(), &mut rng);
        }
        let terminal_rate = svc.failures() as f64 / 10_000.0;
        assert!(
            terminal_rate < 0.01,
            "terminal SMS failure rate {terminal_rate}"
        );
        assert!(svc.retries() > 0, "retries should occur at poor signal");
    }

    #[test]
    fn retry_budget_is_respected() {
        let mut svc = SmsService::new();
        let mut rng = SimRng::new(3);
        // Force failures with a hostile risk to exercise the budget.
        let hostile = RiskFactors {
            signal_risk: 10.0, // clamps the per-attempt probability to 0.9
            ..dead_zone()
        };
        let (result, attempts) = svc.send_with_retries(Rat::G4, &hostile, &mut rng);
        assert!(attempts <= svc.max_attempts);
        if result == SmsResult::Failed {
            assert_eq!(attempts, svc.max_attempts);
        }
    }

    #[test]
    fn attempt_send_reports_retry_before_budget() {
        // Failure outcomes are stochastic; sample until both failure
        // positions are observed and assert their classification.
        let mut svc = SmsService::new();
        let mut rng = SimRng::new(4);
        let hostile = RiskFactors {
            signal_risk: 100.0, // clamps the per-attempt probability at 0.9
            ..dead_zone()
        };
        let mut saw_retry = false;
        let mut saw_failed = false;
        for _ in 0..200 {
            // First attempt of three: a failure must be RetryLater.
            match svc.attempt_send(0, Rat::G4, &hostile, &mut rng) {
                SmsResult::RetryLater => saw_retry = true,
                SmsResult::Failed => panic!("first attempt may not be terminal"),
                SmsResult::Sent => {}
            }
            // Last attempt: a failure is terminal.
            match svc.attempt_send(2, Rat::G4, &hostile, &mut rng) {
                SmsResult::Failed => saw_failed = true,
                SmsResult::RetryLater => panic!("last attempt may not retry"),
                SmsResult::Sent => {}
            }
        }
        assert!(saw_retry && saw_failed);
    }

    #[test]
    fn legacy_cs_voice_more_reliable_than_volte_without_bearer() {
        let mut rng = SimRng::new(5);
        let risk = dead_zone();
        let mut cs = VoiceService::new();
        let mut volte = VoiceService::new();
        for _ in 0..20_000 {
            cs.attempt_call(Rat::G2, &risk, false, &mut rng);
            volte.attempt_call(Rat::G4, &risk, false, &mut rng);
        }
        assert!(
            volte.failures() > cs.failures(),
            "volte {} vs cs {}",
            volte.failures(),
            cs.failures()
        );
    }

    #[test]
    fn healthy_bearer_helps_volte() {
        let mut rng = SimRng::new(6);
        let risk = quiet();
        let mut up = VoiceService::new();
        let mut down = VoiceService::new();
        for _ in 0..20_000 {
            up.attempt_call(Rat::G4, &risk, true, &mut rng);
            down.attempt_call(Rat::G4, &risk, false, &mut rng);
        }
        assert!(down.failures() > up.failures());
    }
}
