//! Golden metrics snapshot: the fleet metrics tables for a seed-2021
//! 10k-device macro study, pinned byte-for-byte.
//!
//! The rendered report covers every counter (per failure kind, RAT, fault
//! layer), every duration histogram and the registry digest, so any change
//! to the samplers, the metric names, the sketch bucketing or the renderer
//! surfaces here as a readable diff. When a change is *intentional*,
//! regenerate and review:
//!
//! ```sh
//! CELLREL_BLESS=1 cargo test -q --test golden_metrics
//! git diff tests/golden/fleet_metrics_seed2021.txt
//! ```

use std::path::PathBuf;

use cellrel::analysis::render_metrics;
use cellrel::workload::{run_fleet_metrics, PopulationConfig, StudyConfig};

fn config() -> StudyConfig {
    StudyConfig {
        seed: 2021,
        population: PopulationConfig {
            devices: 10_000,
            ..Default::default()
        },
        bs_count: 4_000,
        ..Default::default()
    }
}

fn golden_path() -> PathBuf {
    // CARGO_MANIFEST_DIR is crates/core (the facade owns the root tests/).
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden/fleet_metrics_seed2021.txt")
}

#[test]
fn fleet_metrics_match_golden_snapshot() {
    let (snap, devices) = run_fleet_metrics(&config(), 0, false);
    assert_eq!(devices, 10_000);
    let actual = render_metrics(&snap);
    let path = golden_path();

    if std::env::var_os("CELLREL_BLESS").is_some() {
        std::fs::write(&path, &actual).expect("write golden snapshot");
        eprintln!("blessed {}", path.display());
        return;
    }

    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {} ({e}); generate it with \
             CELLREL_BLESS=1 cargo test -q --test golden_metrics",
            path.display()
        )
    });
    if actual != expected {
        let mismatch = actual
            .lines()
            .zip(expected.lines())
            .enumerate()
            .find(|(_, (a, e))| a != e);
        match mismatch {
            Some((i, (a, e))) => panic!(
                "golden metrics mismatch at line {}:\n  expected: {e}\n  actual:   {a}\n\
                 if the change is intentional: CELLREL_BLESS=1 cargo test -q --test golden_metrics",
                i + 1
            ),
            None => panic!(
                "golden metrics length mismatch ({} vs {} lines); \
                 if intentional: CELLREL_BLESS=1 cargo test -q --test golden_metrics",
                actual.lines().count(),
                expected.lines().count()
            ),
        }
    }
}

/// The acceptance-criterion witness: the fleet registry digest is
/// bit-identical at 1, 2 and 8 threads.
#[test]
fn fleet_registry_digest_thread_invariant() {
    let (base, _) = run_fleet_metrics(&config(), 1, false);
    for threads in [2usize, 8] {
        let (snap, _) = run_fleet_metrics(&config(), threads, false);
        assert_eq!(
            snap.digest(),
            base.digest(),
            "fleet registry digest diverged at {threads} threads"
        );
        assert_eq!(snap, base, "fleet snapshot diverged at {threads} threads");
    }
}
