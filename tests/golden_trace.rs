//! Golden-trace snapshot: the `device_trace` example's output at seed 2021,
//! pinned byte-for-byte.
//!
//! Any change to event ordering, RNG stream consumption, timer scheduling,
//! or report formatting anywhere in the stack surfaces here as a readable
//! diff instead of a silent behaviour shift. When a change is *intentional*,
//! regenerate the snapshot and review the diff like any other code change:
//!
//! ```sh
//! CELLREL_BLESS=1 cargo test -q --test golden_trace
//! git diff tests/golden/device_trace_seed2021.txt
//! ```

use std::path::PathBuf;

const SEED: u64 = 2021;

fn golden_path() -> PathBuf {
    // CARGO_MANIFEST_DIR is crates/core (the facade owns the root tests/).
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden/device_trace_seed2021.txt")
}

#[test]
fn device_trace_matches_golden_snapshot() {
    let actual = cellrel::report::device_trace_report(SEED);
    let path = golden_path();

    if std::env::var_os("CELLREL_BLESS").is_some() {
        std::fs::write(&path, &actual).expect("write golden snapshot");
        eprintln!("blessed {}", path.display());
        return;
    }

    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {} ({e}); generate it with \
             CELLREL_BLESS=1 cargo test -q --test golden_trace",
            path.display()
        )
    });
    if actual != expected {
        // Locate the first differing line so the failure is readable without
        // dumping two multi-kilobyte strings.
        let mismatch = actual
            .lines()
            .zip(expected.lines())
            .enumerate()
            .find(|(_, (a, e))| a != e);
        match mismatch {
            Some((i, (a, e))) => panic!(
                "golden trace mismatch at line {}:\n  expected: {e}\n  actual:   {a}\n\
                 if the change is intentional: CELLREL_BLESS=1 cargo test -q --test golden_trace",
                i + 1
            ),
            None => panic!(
                "golden trace length mismatch ({} vs {} lines); \
                 if intentional: CELLREL_BLESS=1 cargo test -q --test golden_trace",
                actual.lines().count(),
                expected.lines().count()
            ),
        }
    }
}
