//! Equivalence and golden tests for the event-driven fleet scheduler.
//!
//! The tentpole claim of the fleet engine is that three very different
//! execution strategies produce **bit-identical** output:
//!
//! * the per-tick scanner, at *any* tick size (the per-second baseline the
//!   event-driven driver replaces);
//! * the timer-wheel event-driven driver;
//! * any shard layout of either (1, 2 or 8 threads).
//!
//! The golden snapshot pins the seed-2021 fleet digest byte-for-byte so a
//! behaviour change in any layer under it — wheel ordering, RNG
//! substreams, the thinning sampler, the RAT jump process, the duration
//! samplers — surfaces as a readable diff. When a change is intentional:
//!
//! ```sh
//! CELLREL_BLESS=1 cargo test -q --test fleet_equivalence
//! git diff tests/golden/fleet_sim_seed2021.txt
//! ```

use std::path::PathBuf;

use cellrel::types::SimDuration;
use cellrel::workload::{
    run_fleet_event_driven, run_fleet_per_tick, FleetConfig, FleetReport, PopulationConfig,
};

/// The golden configuration: seed-2021, 4 000 devices, 14 days — small
/// enough for debug-profile CI, large enough to exercise every source.
fn golden_config() -> FleetConfig {
    FleetConfig {
        population: PopulationConfig {
            devices: 4_000,
            ..Default::default()
        },
        days: 14,
        bs_count: 2_000,
        seed: 2021,
        ..FleetConfig::default()
    }
}

fn small_config() -> FleetConfig {
    FleetConfig {
        population: PopulationConfig {
            devices: 1_200,
            ..Default::default()
        },
        days: 5,
        bs_count: 800,
        seed: 2021,
        ..FleetConfig::default()
    }
}

fn golden_path() -> PathBuf {
    // CARGO_MANIFEST_DIR is crates/core (the facade owns the root tests/).
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden/fleet_sim_seed2021.txt")
}

fn render_report(cfg: &FleetConfig, r: &FleetReport) -> String {
    format!(
        "fleet seed-{} {} devices x {} days (dwell {} ms)\n\
         digest: {:016x}\n\
         events: {}\n\
         candidates: {}\n\
         failures: {}\n\
         radio_events: {}\n\
         rat_changes: {}\n\
         metrics_digest: {:016x}\n",
        cfg.seed,
        r.devices,
        r.days,
        cfg.mean_rat_dwell_ms,
        r.digest,
        r.events(),
        r.candidates,
        r.failures,
        r.radio_events,
        r.rat_changes,
        r.metrics.digest(),
    )
}

#[test]
fn fleet_digest_matches_golden_snapshot() {
    let cfg = golden_config();
    let r = run_fleet_event_driven(&cfg, 0);
    let actual = render_report(&cfg, &r);
    let path = golden_path();

    if std::env::var_os("CELLREL_BLESS").is_some() {
        std::fs::write(&path, &actual).expect("write golden snapshot");
        eprintln!("blessed {}", path.display());
        return;
    }

    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {} ({e}); generate it with \
             CELLREL_BLESS=1 cargo test -q --test fleet_equivalence",
            path.display()
        )
    });
    assert_eq!(
        actual, expected,
        "fleet golden snapshot diverged; if intentional: \
         CELLREL_BLESS=1 cargo test -q --test fleet_equivalence"
    );
}

/// The per-second baseline and the event-driven driver are the same
/// simulation: identical digests, counts and metrics — at several tick
/// sizes, including one that doesn't divide the horizon.
#[test]
fn event_driven_equals_per_tick_baseline() {
    let cfg = small_config();
    let base = run_fleet_event_driven(&cfg, 1);
    assert!(base.failures > 0, "small fleet produced no failures");
    for tick in [
        SimDuration::from_secs(40),
        SimDuration::from_mins(17),
        SimDuration::from_hours(6),
    ] {
        let scan = run_fleet_per_tick(&cfg, tick, 1);
        assert_eq!(scan.digest, base.digest, "digest diverged at tick {tick}");
        assert_eq!(scan.candidates, base.candidates, "tick {tick}");
        assert_eq!(scan.failures, base.failures, "tick {tick}");
        assert_eq!(scan.radio_events, base.radio_events, "tick {tick}");
        assert_eq!(
            scan.metrics.digest(),
            base.metrics.digest(),
            "metrics diverged at tick {tick}"
        );
        assert_eq!(scan.metrics, base.metrics, "tick {tick}");
    }
}

/// The acceptance-criterion witness: the fleet digest is bit-identical at
/// 1, 2 and 8 threads, for both drivers.
#[test]
fn fleet_digest_thread_invariant() {
    let cfg = small_config();
    let base = run_fleet_event_driven(&cfg, 1);
    let tick = SimDuration::from_mins(30);
    let base_scan = run_fleet_per_tick(&cfg, tick, 1);
    assert_eq!(base.digest, base_scan.digest);
    for threads in [2usize, 8] {
        let ev = run_fleet_event_driven(&cfg, threads);
        assert_eq!(ev.digest, base.digest, "event-driven at {threads} threads");
        assert_eq!(
            ev.metrics, base.metrics,
            "event-driven at {threads} threads"
        );
        let scan = run_fleet_per_tick(&cfg, tick, threads);
        assert_eq!(scan.digest, base.digest, "per-tick at {threads} threads");
        assert_eq!(scan.metrics, base.metrics, "per-tick at {threads} threads");
    }
}
