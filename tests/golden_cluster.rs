//! Golden wire-format snapshot for the cluster's `CR` replication and
//! federation protocol: a canonical replication session — segment ships,
//! a checkpoint, acks, a catch-up exchange, a federated query with its
//! partial-aggregate reply — plus the rejection frames for malformed,
//! wrong-version, unknown-kind, sequence-gap and corrupt-segment input,
//! all driven by the seed-2021 fleet and pinned byte-for-byte as hex
//! dumps.
//!
//! The frame encodings (magic, version byte, kind bytes, varint field
//! order, the embedded queryd query grammar, the store's partial wire
//! form, error codes, CRC trailer) are frozen wire contract: any
//! accidental change to `cellrel-cluster`'s proto module — or to the
//! segment codec and partial-aggregate encodings it embeds — surfaces
//! here as a readable diff. When a change is *intentional*, bump
//! `proto::VERSION`, regenerate and review:
//!
//! ```sh
//! CELLREL_BLESS=1 cargo test -q --test golden_cluster
//! git diff tests/golden/cluster_frames_seed2021.txt
//! ```

use std::fmt::Write as _;
use std::path::PathBuf;

use cellrel::analysis::store_tables::table2_query;
use cellrel::cluster::proto;
use cellrel::cluster::{
    decode_frame, encode_frame, shard_directories, Follower, Message, ShardLeader,
};
use cellrel::ingest::codec::crc32;
use cellrel::store::DeviceDirectory;
use cellrel::stream::{batches_from_events, StreamConfig};
use cellrel::workload::{run_macro_study, PopulationConfig, StudyConfig};

fn golden_path() -> PathBuf {
    // CARGO_MANIFEST_DIR is crates/core (the facade owns the root tests/).
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden/cluster_frames_seed2021.txt")
}

fn hex_dump(out: &mut String, bytes: &[u8]) {
    let _ = writeln!(out, "len: {}", bytes.len());
    for chunk in bytes.chunks(32) {
        for b in chunk {
            let _ = write!(out, "{b:02x}");
        }
        out.push('\n');
    }
}

/// A frame of the given kind with an arbitrary payload and a valid CRC —
/// framing is fine, so decoding proceeds into the payload grammar (or the
/// kind check) and fails there, deterministically.
fn sealed_frame(version: u8, kind: u8, payload: &[u8]) -> Vec<u8> {
    let mut f = vec![proto::MAGIC[0], proto::MAGIC[1], version, kind];
    f.extend_from_slice(payload);
    let crc = crc32(&f);
    f.extend_from_slice(&crc.to_le_bytes());
    f
}

/// Drive a one-shard leader/follower pair through a short seed-2021
/// session and dump every frame that crosses the wire.
fn canonical_frames() -> String {
    let data = run_macro_study(&StudyConfig {
        seed: 2021,
        population: PopulationConfig {
            devices: 120,
            ..Default::default()
        },
        days: 3,
        bs_count: 60,
    });
    let dir = DeviceDirectory::from_population(&data.population);
    let batches = batches_from_events(&data.events, 24);
    let scfg = StreamConfig {
        window_ms: 86_400_000,
        lateness_ms: 2 * 3_600_000,
        hot_windows: 2,
        late_flush: 256,
        ..Default::default()
    };
    let dirs = shard_directories(&dir, 1);

    let mut out = String::new();
    let _ = writeln!(
        out,
        "# cluster CR wire frames (seed 2021, protocol v{})",
        proto::VERSION
    );

    let mut leader = ShardLeader::new(&scfg, &dirs[0], 0, 3).expect("leader");
    let mut follower = Follower::new(&scfg, &dirs[0], 0);
    let mut shipped = 0usize;
    for b in &batches {
        for frame in leader.offer(b).expect("offer") {
            shipped += 1;
            // Dump the first few replication frames and their acks; the
            // tail of the session would only repeat the same shapes.
            let dump = shipped <= 3;
            if dump {
                let kind = match decode_frame(&frame).expect("leader frames decode") {
                    Message::ShipSegment { seq, .. } => format!("segment seq {seq}"),
                    Message::ShipCheckpoint { seq, .. } => format!("checkpoint seq {seq}"),
                    other => panic!("unexpected replication frame {other:?}"),
                };
                let _ = writeln!(out, "\n## replication: {kind}");
                hex_dump(&mut out, &frame);
            }
            let reply = follower.apply(&frame);
            if dump {
                let _ = writeln!(out, "\n## ack");
                hex_dump(&mut out, &reply);
            }
        }
    }
    for frame in leader.flush().expect("flush") {
        let reply = follower.apply(&frame);
        decode_frame(&reply).expect("acks decode");
    }
    let _ = writeln!(out, "\nleader digest: {:016x}", leader.digest());
    let _ = writeln!(
        out,
        "follower sealed digest: {:016x}",
        follower.sealed_store().digest()
    );

    // Catch-up exchange: a brand-new replica asks for everything.
    let fresh = Follower::new(&scfg, &dirs[0], 0);
    let request = fresh.catchup_request();
    let _ = writeln!(out, "\n## catch-up request (from empty replica)");
    hex_dump(&mut out, &request);
    let reply = leader.handle(&request);
    match decode_frame(&reply).expect("catch-up reply decodes") {
        Message::Segments { from_seq, frames } => {
            let _ = writeln!(
                out,
                "\n## catch-up reply: {} segments from seq {from_seq} (dump elided, {} bytes)",
                frames.len(),
                reply.len()
            );
        }
        other => panic!("unexpected catch-up reply {other:?}"),
    }

    // Federation exchange: the Table 2 query and its partial aggregate.
    leader.publish();
    let query_frame = encode_frame(&Message::Query(table2_query()));
    let _ = writeln!(out, "\n## federated query: table2 setup-error causes");
    hex_dump(&mut out, &query_frame);
    let partial = leader.handle(&query_frame);
    decode_frame(&partial).expect("partial decodes");
    let _ = writeln!(out, "\n## partial-aggregate reply");
    hex_dump(&mut out, &partial);

    // Rejection frames: every hostile shape a peer can answer.
    let mut follower = follower;
    let hostile: Vec<(&str, Vec<u8>)> = vec![
        ("garbage (bad magic)", vec![0x5a; 16]),
        (
            "version mismatch (v9 catch-up)",
            sealed_frame(9, proto::KIND_CATCHUP, &[0]),
        ),
        (
            "unknown kind (0x44)",
            sealed_frame(proto::VERSION, 0x44, &[]),
        ),
        ("bad crc (flipped trailer bit)", {
            let mut f = encode_frame(&Message::Catchup { from_seq: 0 });
            let n = f.len();
            f[n - 1] ^= 0x01;
            f
        }),
        (
            "sequence gap (segment seq 99)",
            encode_frame(&Message::ShipSegment {
                seq: 99,
                frame: vec![0x53, 0x47],
            }),
        ),
        (
            "corrupt segment at the right seq",
            encode_frame(&Message::ShipSegment {
                seq: follower.applied() + 1,
                frame: vec![0xde, 0xad, 0xbe, 0xef],
            }),
        ),
    ];
    for (name, bytes) in &hostile {
        let _ = writeln!(out, "\n## hostile input: {name}");
        hex_dump(&mut out, bytes);
        let reply = follower.apply(bytes);
        match decode_frame(&reply).expect("rejection frames decode") {
            Message::Rejection { .. } => {}
            other => panic!("hostile input must be rejected, got {other:?}"),
        }
        let _ = writeln!(out, "\n## rejection: {name}");
        hex_dump(&mut out, &reply);
    }

    out
}

#[test]
fn cluster_frames_match_golden_snapshot() {
    let actual = canonical_frames();
    let path = golden_path();

    if std::env::var_os("CELLREL_BLESS").is_some() {
        std::fs::write(&path, &actual).expect("write golden snapshot");
        eprintln!("blessed {}", path.display());
        return;
    }

    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {} ({e}); generate it with \
             CELLREL_BLESS=1 cargo test -q --test golden_cluster",
            path.display()
        )
    });
    if actual != expected {
        let mismatch = actual
            .lines()
            .zip(expected.lines())
            .enumerate()
            .find(|(_, (a, e))| a != e);
        match mismatch {
            Some((i, (a, e))) => panic!(
                "golden cluster frame mismatch at line {}:\n  expected: {e}\n  actual:   {a}\n\
                 the frame encoding is wire contract — if the change is intentional, bump \
                 proto::VERSION and regenerate: CELLREL_BLESS=1 cargo test -q --test golden_cluster",
                i + 1
            ),
            None => panic!(
                "golden cluster frame length mismatch ({} vs {} lines); \
                 if intentional: CELLREL_BLESS=1 cargo test -q --test golden_cluster",
                actual.lines().count(),
                expected.lines().count()
            ),
        }
    }
}
