//! End-to-end ingestion pipeline: fleet traces → wire batches → sharded
//! collector → aggregate, checked for thread-count-invariant digests,
//! checkpoint/restore transparency, and conservation of every record.

use cellrel::ingest::codec::encode_batch;
use cellrel::ingest::{
    restore_checkpoint, run_ingest, save_checkpoint, Collector, CollectorConfig,
};
use cellrel::types::{DeviceId, FailureEvent};
use cellrel::workload::{run_macro_study_streaming, PopulationConfig, StudyConfig};

fn fleet_cfg() -> StudyConfig {
    StudyConfig {
        population: PopulationConfig {
            devices: 1_500,
            ..Default::default()
        },
        days: 14,
        bs_count: 500,
        seed: 2021,
    }
}

/// Encode the fleet's traces exactly as device uploaders would: per-device
/// batches of at most `cap` records with increasing sequence numbers.
fn encode_fleet(cfg: &StudyConfig, cap: usize) -> (Vec<Vec<u8>>, u64, u64) {
    let mut batches = Vec::new();
    let mut records = 0u64;
    let mut noise = 0u64;
    let mut cur: Option<DeviceId> = None;
    let mut seq = 0u64;
    let mut buf: Vec<FailureEvent> = Vec::new();
    run_macro_study_streaming(cfg, |e| {
        if cur != Some(e.device) {
            if let Some(d) = cur {
                if !buf.is_empty() {
                    batches.push(encode_batch(d, seq, &buf));
                    buf.clear();
                }
            }
            cur = Some(e.device);
            seq = 0;
        }
        buf.push(*e);
        records += 1;
        if e.cause_is_false_positive() {
            noise += 1;
        }
        if buf.len() >= cap {
            batches.push(encode_batch(e.device, seq, &buf));
            seq += 1;
            buf.clear();
        }
    });
    if let (Some(d), false) = (cur, buf.is_empty()) {
        batches.push(encode_batch(d, seq, &buf));
    }
    (batches, records, noise)
}

#[test]
fn digests_are_identical_at_1_2_and_8_workers() {
    let (batches, records, _) = encode_fleet(&fleet_cfg(), 48);
    assert!(records > 10_000, "fleet produced only {records} records");

    let run = |workers: usize| {
        let cfg = CollectorConfig {
            workers,
            ..CollectorConfig::default()
        };
        run_ingest(&cfg, |emit| {
            for b in &batches {
                emit(b.clone());
            }
        })
    };

    let base = run(1);
    let base_report = base.report();
    assert_eq!(base_report.counters.records, records);
    assert_eq!(base_report.counters.decode_errors, 0);
    assert_eq!(base_report.unroutable, 0);
    for workers in [2usize, 8] {
        let c = run(workers);
        assert_eq!(c.digest(), base.digest(), "workers={workers}");
        // Not just the digest: the complete collector state matches.
        assert_eq!(c, base, "workers={workers}");
    }
}

#[test]
fn checkpoint_midway_is_transparent() {
    let (batches, _, _) = encode_fleet(&fleet_cfg(), 48);
    let ccfg = CollectorConfig::default();

    let mut full = Collector::new(&ccfg);
    for b in &batches {
        full.ingest(b);
    }

    // Ingest half, checkpoint, restore in a "new process", finish.
    let half = batches.len() / 2;
    let mut first = Collector::new(&ccfg);
    for b in &batches[..half] {
        first.ingest(b);
    }
    let snapshot = save_checkpoint(&first);
    drop(first);
    let mut resumed = restore_checkpoint(&snapshot).expect("own checkpoint restores");
    for b in &batches[half..] {
        resumed.ingest(b);
    }

    assert_eq!(resumed.digest(), full.digest());
    assert_eq!(resumed, full);
}

#[test]
fn aggregate_conserves_every_record() {
    let (batches, records, noise) = encode_fleet(&fleet_cfg(), 48);
    let collector = run_ingest(&CollectorConfig::default(), |emit| {
        for b in &batches {
            emit(b.clone());
        }
    });
    let report = collector.report();

    // Every wire record is accounted for: aggregated or filtered as noise.
    assert_eq!(report.counters.records, records);
    assert_eq!(report.counters.filtered_noise, noise);
    assert_eq!(report.aggregate.records, records - noise);
    assert_eq!(report.counters.batches, batches.len() as u64);
    assert_eq!(report.counters.duplicate_batches, 0);

    // The sketch and the by-kind partition both saw every kept record.
    assert_eq!(report.aggregate.sketch_all.count(), records - noise);
    let by_kind: u64 = report.aggregate.by_kind.iter().sum();
    assert_eq!(by_kind, records - noise);

    // Replaying the same batches is pure duplication: nothing new lands.
    let mut twice = Collector::new(&CollectorConfig::default());
    for b in batches.iter().chain(batches.iter()) {
        twice.ingest(b);
    }
    let twice_report = twice.report();
    assert_eq!(
        twice_report.counters.duplicate_batches,
        batches.len() as u64
    );
    assert_eq!(twice_report.aggregate.records, records - noise);
}
