//! Golden wire-format snapshot for the query daemon: a canonical set of
//! request/response frames — pings, stats, the Table 1/Table 2 queries, a
//! top-k query, and the wire-error responses for malformed, wrong-version,
//! unknown-kind and oversized input — served from the seed-2021 fleet and
//! pinned byte-for-byte as hex dumps.
//!
//! The frame encodings (magic, version byte, kind bytes, varint field
//! order, dimension/filter/metric tags, error codes, CRC trailer) are
//! frozen wire contract: any accidental change to `cellrel-queryd`'s proto
//! module, to `Dim::index`, or to the store's result ordering surfaces
//! here as a readable diff. When a change is *intentional*, bump
//! `proto::VERSION`, regenerate and review:
//!
//! ```sh
//! CELLREL_BLESS=1 cargo test -q --test golden_queryd
//! git diff tests/golden/queryd_frames_seed2021.txt
//! ```

use std::fmt::Write as _;
use std::path::PathBuf;

use cellrel::analysis::store_tables::{table1_queries, table2_query};
use cellrel::ingest::codec::crc32;
use cellrel::queryd::proto::{self, decode_response, encode_request, Request};
use cellrel::queryd::QuerydCore;
use cellrel::store::{build_sharded, DeviceDirectory, Dim, Filter, Metric, Query, StoreConfig};
use cellrel::types::FailureKind;
use cellrel::workload::{run_macro_study, PopulationConfig, StudyConfig};

fn golden_path() -> PathBuf {
    // CARGO_MANIFEST_DIR is crates/core (the facade owns the root tests/).
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden/queryd_frames_seed2021.txt")
}

fn hex_dump(out: &mut String, bytes: &[u8]) {
    let _ = writeln!(out, "len: {}", bytes.len());
    for chunk in bytes.chunks(32) {
        for b in chunk {
            let _ = write!(out, "{b:02x}");
        }
        out.push('\n');
    }
}

/// A frame of the given kind with an arbitrary payload and a valid CRC —
/// framing is fine, so decoding proceeds into the payload grammar (or the
/// kind check) and fails there, deterministically.
fn sealed_frame(version: u8, kind: u8, payload: &[u8]) -> Vec<u8> {
    let mut f = vec![proto::MAGIC[0], proto::MAGIC[1], version, kind];
    f.extend_from_slice(payload);
    let crc = crc32(&f);
    f.extend_from_slice(&crc.to_le_bytes());
    f
}

/// Render the canonical exchange into one snapshot document. The serving
/// order is fixed, so the `requests_served` counter inside the stats reply
/// is deterministic too.
fn canonical_frames() -> String {
    let data = run_macro_study(&StudyConfig {
        seed: 2021,
        population: PopulationConfig {
            devices: 1_000,
            ..Default::default()
        },
        days: 7,
        bs_count: 500,
    });
    let dir = DeviceDirectory::from_population(&data.population);
    let store = build_sharded(&StoreConfig::default(), &dir, &data.events, 1);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# queryd wire frames (seed 2021, protocol v{})",
        proto::VERSION
    );
    let _ = writeln!(out, "store digest: {:016x}", store.digest());
    let core = QuerydCore::new(store);

    let [t1_devices, t1_failing, t1_counts] = table1_queries();
    let requests: Vec<(&str, Request)> = vec![
        ("ping", Request::Ping),
        ("table1 devices by model", Request::Query(t1_devices)),
        (
            "table1 failing devices by model",
            Request::Query(t1_failing),
        ),
        ("table1 failure counts by model", Request::Query(t1_counts)),
        ("table2 setup-error causes", Request::Query(table2_query())),
        (
            "top-3 stall causes (filters + top_k)",
            Request::Query(Query {
                filters: vec![Filter::Kind(FailureKind::DataStall), Filter::HasCause],
                group_by: vec![Dim::Cause],
                window_ms: 0,
                metric: Metric::Count,
                top_k: 3,
            }),
        ),
        ("stats", Request::Stats),
    ];
    for (name, req) in &requests {
        let frame = encode_request(req);
        let _ = writeln!(out, "\n## request: {name}");
        hex_dump(&mut out, &frame);
        let resp = core.handle_frame(&frame);
        decode_response(&resp).expect("served frame always decodes");
        let _ = writeln!(out, "\n## response: {name}");
        hex_dump(&mut out, &resp);
    }

    let hostile: Vec<(&str, Vec<u8>)> = vec![
        ("garbage (bad magic)", vec![0x5a; 16]),
        (
            "version mismatch (v9 ping)",
            sealed_frame(9, proto::KIND_PING, &[]),
        ),
        (
            "unknown kind (0x44)",
            sealed_frame(proto::VERSION, 0x44, &[]),
        ),
        ("bad crc (flipped trailer bit)", {
            let mut f = encode_request(&Request::Ping);
            let n = f.len();
            f[n - 1] ^= 0x01;
            f
        }),
    ];
    for (name, bytes) in &hostile {
        let _ = writeln!(out, "\n## hostile input: {name}");
        hex_dump(&mut out, bytes);
        let resp = core.handle_frame(bytes);
        decode_response(&resp).expect("error frame always decodes");
        let _ = writeln!(out, "\n## error response: {name}");
        hex_dump(&mut out, &resp);
    }

    // The one error the transport answers without materialising a frame.
    let _ = writeln!(
        out,
        "\n## error response: oversized length prefix (u32::MAX)"
    );
    let resp = core.oversize_response(u64::from(u32::MAX));
    decode_response(&resp).expect("error frame always decodes");
    hex_dump(&mut out, &resp);

    out
}

#[test]
fn queryd_frames_match_golden_snapshot() {
    let actual = canonical_frames();
    let path = golden_path();

    if std::env::var_os("CELLREL_BLESS").is_some() {
        std::fs::write(&path, &actual).expect("write golden snapshot");
        eprintln!("blessed {}", path.display());
        return;
    }

    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {} ({e}); generate it with \
             CELLREL_BLESS=1 cargo test -q --test golden_queryd",
            path.display()
        )
    });
    if actual != expected {
        let mismatch = actual
            .lines()
            .zip(expected.lines())
            .enumerate()
            .find(|(_, (a, e))| a != e);
        match mismatch {
            Some((i, (a, e))) => panic!(
                "golden queryd frame mismatch at line {}:\n  expected: {e}\n  actual:   {a}\n\
                 the frame encoding is wire contract — if the change is intentional, bump \
                 proto::VERSION and regenerate: CELLREL_BLESS=1 cargo test -q --test golden_queryd",
                i + 1
            ),
            None => panic!(
                "golden queryd frame length mismatch ({} vs {} lines); \
                 if intentional: CELLREL_BLESS=1 cargo test -q --test golden_queryd",
                actual.lines().count(),
                expected.lines().count()
            ),
        }
    }
}
