//! Concurrency determinism for the query daemon: the same query set issued
//! from 1, 4 and 16 concurrent TCP clients against a **live-ingesting**
//! server yields byte-identical `ResultSet`s to running the in-process
//! engine on the exact snapshot each answer was served from — and once the
//! feed finishes, the served Table 1 / Table 2 are byte-identical to the
//! batch analysis of the raw dataset.
//!
//! The feed retains every snapshot it publishes (via `feed_events`'
//! `on_publish` hook), so each recorded `(epoch, answer)` pair can be
//! replayed offline against the very store state that produced it. Any
//! torn read, lost publish, or cross-thread nondeterminism shows up as a
//! byte diff.

use cellrel::analysis::store_tables::{
    table1_from_results, table1_queries, table2_from_result, table2_query,
};
use cellrel::analysis::{table1, table2};
use cellrel::queryd::proto::{encode_response, Response};
use cellrel::queryd::{feed_events, serve, QuerydCore, Snapshot, TcpClient};
use cellrel::store::{DeviceDirectory, Dim, Filter, Metric, Query, Store, StoreConfig};
use cellrel::types::FailureKind;
use cellrel::workload::{run_macro_study, PopulationConfig, StudyConfig, StudyDataset};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

fn fixture() -> &'static (StudyDataset, DeviceDirectory) {
    static FIX: OnceLock<(StudyDataset, DeviceDirectory)> = OnceLock::new();
    FIX.get_or_init(|| {
        let data = run_macro_study(&StudyConfig {
            seed: 2021,
            population: PopulationConfig {
                devices: 2_000,
                ..Default::default()
            },
            days: 7,
            bs_count: 800,
        });
        let dir = DeviceDirectory::from_population(&data.population);
        (data, dir)
    })
}

/// The workload every client runs: the table queries plus a spread of
/// grouping/metric shapes (time windows, quantiles, top-k, filters).
fn workload(week_ms: u64) -> Vec<Query> {
    let [t1_devices, t1_failing, t1_counts] = table1_queries();
    vec![
        t1_devices,
        t1_failing,
        t1_counts,
        table2_query(),
        Query::count_by(vec![Dim::Kind, Dim::Isp]),
        Query {
            filters: vec![Filter::Kind(FailureKind::DataSetupError)],
            group_by: vec![Dim::Time],
            window_ms: week_ms,
            metric: Metric::Count,
            top_k: 0,
        },
        Query {
            filters: vec![],
            group_by: vec![Dim::Isp],
            window_ms: 0,
            metric: Metric::QuantileMs(0.95),
            top_k: 0,
        },
        Query {
            filters: vec![Filter::HasCause],
            group_by: vec![Dim::Cause],
            window_ms: 0,
            metric: Metric::Count,
            top_k: 5,
        },
        Query {
            filters: vec![],
            group_by: vec![Dim::Region],
            window_ms: 0,
            metric: Metric::Under30sShare,
            top_k: 0,
        },
    ]
}

/// One recorded exchange: which query, the epoch the server answered from,
/// and the answer as decoded by the client.
type Record = (usize, u64, cellrel::store::ResultSet);

/// Drive `clients` concurrent TCP clients against a server whose store is
/// being fed live, then replay every recorded answer against the retained
/// snapshot it came from.
fn run_live_session(clients: usize) {
    let (data, dir) = fixture();
    let store_cfg = StoreConfig::default();
    let week_ms = u64::from(store_cfg.rollup_buckets) * store_cfg.bucket_ms;
    let queries = workload(week_ms);
    let chunk = (data.events.len() / 8).max(1);

    let core = QuerydCore::new(Store::new(&store_cfg));
    let server = serve(core.clone(), "127.0.0.1:0").expect("bind queryd");
    let addr = server.addr();

    // Every store state any client could have observed: the initial epoch-0
    // snapshot plus each published one.
    let retained: Mutex<Vec<Arc<Snapshot>>> = Mutex::new(vec![core.snapshot()]);
    let feeding = AtomicBool::new(true);

    let mut records: Vec<Record> = Vec::new();
    let mut final_epoch = 0u64;
    std::thread::scope(|s| {
        let feed = s.spawn(|| {
            let epoch = feed_events(&core, &store_cfg, dir, &data.events, chunk, |snap| {
                retained.lock().expect("retain lock").push(snap.clone());
            });
            feeding.store(false, Ordering::Release);
            epoch
        });
        let workers: Vec<_> = (0..clients)
            .map(|_| {
                let (queries, feeding) = (&queries, &feeding);
                s.spawn(move || {
                    let mut client = TcpClient::connect(addr).expect("connect");
                    let mut recs: Vec<Record> = Vec::new();
                    let mut passes = 0usize;
                    // Keep racing the feed while it runs (bounded), then one
                    // guaranteed pass over the final state.
                    while (feeding.load(Ordering::Acquire) && passes < 64) || passes == 0 {
                        for (i, q) in queries.iter().enumerate() {
                            let (epoch, result) = client.query(q).expect("query");
                            recs.push((i, epoch, result));
                        }
                        passes += 1;
                    }
                    recs
                })
            })
            .collect();
        for w in workers {
            records.extend(w.join().expect("client thread"));
        }
        final_epoch = feed.join().expect("feed thread");
    });

    // Replay: every answer must be byte-identical to the in-process engine
    // on the snapshot that served it.
    let by_epoch: HashMap<u64, Arc<Snapshot>> = retained
        .into_inner()
        .expect("retain lock")
        .into_iter()
        .map(|s| (s.epoch, s))
        .collect();
    assert!(
        records.len() >= clients * queries.len(),
        "every client completes at least one pass"
    );
    for (i, epoch, served) in &records {
        let snap = by_epoch
            .get(epoch)
            .unwrap_or_else(|| panic!("answer from unretained epoch {epoch}"));
        let expected = snap.store.query(&queries[*i]).expect("legal query");
        let served_frame = encode_response(&Response::Rows {
            epoch: *epoch,
            result: served.clone(),
        });
        let expected_frame = encode_response(&Response::Rows {
            epoch: *epoch,
            result: expected,
        });
        assert_eq!(
            served_frame, expected_frame,
            "query {i} at epoch {epoch} diverged ({clients} clients)"
        );
    }

    // After the final publish the served tables are byte-identical to the
    // batch analysis of the raw dataset.
    let mut client = TcpClient::connect(addr).expect("connect");
    let [qd, qf, qc] = table1_queries();
    let (e1, rd) = client.query(&qd).expect("devices");
    let (e2, rf) = client.query(&qf).expect("failing");
    let (e3, rc) = client.query(&qc).expect("counts");
    let (e4, causes) = client.query(&table2_query()).expect("causes");
    assert_eq!([e1, e2, e3], [final_epoch; 3]);
    assert_eq!(e4, final_epoch);
    assert_eq!(
        table1_from_results(&[rd, rf, rc]).render(),
        table1::compute(data).render(),
        "served Table 1 != batch ({clients} clients)"
    );
    assert_eq!(
        table2_from_result(&causes, 10).render(),
        table2::compute(data, 10).render(),
        "served Table 2 != batch ({clients} clients)"
    );
    drop(client);
    server.shutdown();
}

#[test]
fn one_client_matches_the_in_process_engine_exactly() {
    run_live_session(1);
}

#[test]
fn four_clients_match_the_in_process_engine_exactly() {
    run_live_session(4);
}

#[test]
fn sixteen_clients_match_the_in_process_engine_exactly() {
    run_live_session(16);
}
