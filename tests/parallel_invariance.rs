//! Thread-count invariance of the parallel fleet drivers.
//!
//! The headline guarantee of the `par` + substream design: the sharded
//! macro study and the micro A/B arms produce **byte-identical** output at
//! any thread count, because every device draws from a substream derived
//! from `(root_seed, device_id)` alone and shard partials merge in shard
//! order.

use cellrel::analysis::streaming::FleetAccumulator;
use cellrel::telephony::RatPolicyKind;
use cellrel::types::FailureEvent;
use cellrel::workload::{
    ab, run_macro_study_parallel, run_macro_study_streaming, AbConfig, PopulationConfig,
    StudyConfig,
};

fn small_cfg() -> StudyConfig {
    StudyConfig {
        population: PopulationConfig {
            devices: 2_000,
            ..Default::default()
        },
        bs_count: 1_500,
        seed: 424_242,
        ..Default::default()
    }
}

#[test]
fn macro_study_events_are_identical_across_thread_counts() {
    let cfg = small_cfg();
    let (_, base_counts, _, base_events) =
        run_macro_study_parallel::<Vec<FailureEvent>, _>(&cfg, 1, Vec::new);
    assert!(!base_events.is_empty());
    for threads in [2usize, 8] {
        let (_, counts, _, events) = run_macro_study_parallel(&cfg, threads, Vec::new);
        assert_eq!(counts, base_counts, "per-device counts, threads={threads}");
        assert_eq!(events, base_events, "event stream, threads={threads}");
    }
}

#[test]
fn macro_study_parallel_matches_sequential_streaming() {
    let cfg = small_cfg();
    let mut seq_events = Vec::new();
    let (_, seq_counts, _) = run_macro_study_streaming(&cfg, |e| seq_events.push(*e));
    let (_, par_counts, _, par_events) = run_macro_study_parallel(&cfg, 8, Vec::new);
    assert_eq!(par_counts, seq_counts);
    assert_eq!(par_events, seq_events);
}

#[test]
fn fleet_accumulator_sums_are_identical_across_thread_counts() {
    let cfg = small_cfg();
    let (_, _, _, base) = run_macro_study_parallel(&cfg, 1, FleetAccumulator::new);
    assert!(base.total > 0);
    for threads in [2usize, 8] {
        let (_, _, _, acc) = run_macro_study_parallel(&cfg, threads, FleetAccumulator::new);
        assert_eq!(acc.total, base.total, "threads={threads}");
        assert_eq!(acc.by_kind, base.by_kind, "threads={threads}");
        assert_eq!(acc.by_isp, base.by_isp, "threads={threads}");
        assert_eq!(acc.by_rat, base.by_rat, "threads={threads}");
        assert_eq!(
            acc.duration_ms_total, base.duration_ms_total,
            "duration sum, threads={threads}"
        );
        assert_eq!(acc.oos_devices, base.oos_devices, "threads={threads}");
    }
}

#[test]
fn ab_arm_is_identical_across_thread_counts() {
    let base_cfg = AbConfig {
        devices: 6,
        days: 1,
        seed: 31,
        stall_rate_per_hour: 3.0,
        suppress_user_reset: false,
        threads: 1,
    };
    let base = ab::run_custom_arm(RatPolicyKind::Android10, &base_cfg);
    assert!(base.frequency > 0.0);
    for threads in [2usize, 8] {
        let cfg = AbConfig {
            threads,
            ..base_cfg
        };
        let o = ab::run_custom_arm(RatPolicyKind::Android10, &cfg);
        assert_eq!(o.by_kind, base.by_kind, "threads={threads}");
        assert_eq!(o.stall_durations, base.stall_durations, "threads={threads}");
        assert_eq!(
            o.total_duration_secs, base.total_duration_secs,
            "threads={threads}"
        );
        assert_eq!(o.prevalence, base.prevalence, "threads={threads}");
        assert_eq!(o.frequency, base.frequency, "threads={threads}");
    }
}
