//! Thread-count invariance of the parallel fleet drivers.
//!
//! The headline guarantee of the `par` + substream design: the sharded
//! macro study and the micro A/B arms produce **byte-identical** output at
//! any thread count, because every device draws from a substream derived
//! from `(root_seed, device_id)` alone and shard partials merge in shard
//! order.

use cellrel::analysis::streaming::FleetAccumulator;
use cellrel::sim::{Merge, MetricsRegistry, MetricsSnapshot};
use cellrel::telephony::RatPolicyKind;
use cellrel::types::{FailureEvent, SimDuration, SimTime};
use cellrel::workload::{
    ab, run_fleet_metrics, run_macro_study_parallel, run_macro_study_streaming, AbConfig,
    PopulationConfig, StudyConfig,
};
use proptest::prelude::*;

fn small_cfg() -> StudyConfig {
    StudyConfig {
        population: PopulationConfig {
            devices: 2_000,
            ..Default::default()
        },
        bs_count: 1_500,
        seed: 424_242,
        ..Default::default()
    }
}

#[test]
fn macro_study_events_are_identical_across_thread_counts() {
    let cfg = small_cfg();
    let (_, base_counts, _, base_events) =
        run_macro_study_parallel::<Vec<FailureEvent>, _>(&cfg, 1, Vec::new);
    assert!(!base_events.is_empty());
    for threads in [2usize, 8] {
        let (_, counts, _, events) = run_macro_study_parallel(&cfg, threads, Vec::new);
        assert_eq!(counts, base_counts, "per-device counts, threads={threads}");
        assert_eq!(events, base_events, "event stream, threads={threads}");
    }
}

#[test]
fn macro_study_parallel_matches_sequential_streaming() {
    let cfg = small_cfg();
    let mut seq_events = Vec::new();
    let (_, seq_counts, _) = run_macro_study_streaming(&cfg, |e| seq_events.push(*e));
    let (_, par_counts, _, par_events) = run_macro_study_parallel(&cfg, 8, Vec::new);
    assert_eq!(par_counts, seq_counts);
    assert_eq!(par_events, seq_events);
}

#[test]
fn fleet_accumulator_sums_are_identical_across_thread_counts() {
    let cfg = small_cfg();
    let (_, _, _, base) = run_macro_study_parallel(&cfg, 1, FleetAccumulator::new);
    assert!(base.total > 0);
    for threads in [2usize, 8] {
        let (_, _, _, acc) = run_macro_study_parallel(&cfg, threads, FleetAccumulator::new);
        assert_eq!(acc.total, base.total, "threads={threads}");
        assert_eq!(acc.by_kind, base.by_kind, "threads={threads}");
        assert_eq!(acc.by_isp, base.by_isp, "threads={threads}");
        assert_eq!(acc.by_rat, base.by_rat, "threads={threads}");
        assert_eq!(
            acc.duration_ms_total, base.duration_ms_total,
            "duration sum, threads={threads}"
        );
        assert_eq!(acc.oos_devices, base.oos_devices, "threads={threads}");
    }
}

// ---- observability-layer invariance --------------------------------------

/// Metric-name pool for the merge-algebra properties (metric labels are
/// `&'static str` by design).
const NAMES: [&str; 5] = ["alpha", "beta", "gamma", "delta", "epsilon"];

/// Build a registry (with tracing on) from an arbitrary op list: counter
/// adds, gauge deltas, histogram observations and trace spans/instants.
fn registry_from_ops(ops: &[(u8, u8, u64)]) -> MetricsRegistry {
    let mut r = MetricsRegistry::new();
    r.enable_trace();
    for &(kind, name, v) in ops {
        let name = NAMES[name as usize % NAMES.len()];
        match kind % 5 {
            0 => r.add(name, v % 10_000),
            1 => r.gauge_add(name, (v % 2_001) as i64 - 1_000),
            2 => r.observe(name, v),
            3 => {
                let start = SimTime::from_millis(v % 1_000_000);
                let trace = r.trace_mut().expect("tracing enabled");
                trace.record_complete(
                    name,
                    start,
                    start + SimDuration::from_millis(v % 5_000),
                    v % 7,
                );
            }
            _ => {
                let trace = r.trace_mut().expect("tracing enabled");
                trace.record_instant(name, SimTime::from_millis(v % 1_000_000), v % 7);
            }
        }
    }
    r
}

fn ops_strategy() -> impl Strategy<Value = Vec<(u8, u8, u64)>> {
    prop::collection::vec((any::<u8>(), any::<u8>(), any::<u64>()), 0..60)
}

fn merged(a: &MetricsSnapshot, b: &MetricsSnapshot) -> MetricsSnapshot {
    let mut m = a.clone();
    m.merge(b.clone());
    m
}

proptest! {
    /// `MetricsSnapshot::merge` is commutative and associative on arbitrary
    /// registries — the property that makes fleet metrics independent of
    /// shard layout and merge-tree shape.
    #[test]
    fn metrics_snapshot_merge_is_commutative_and_associative(
        a_ops in ops_strategy(),
        b_ops in ops_strategy(),
        c_ops in ops_strategy(),
    ) {
        let a = registry_from_ops(&a_ops).snapshot();
        let b = registry_from_ops(&b_ops).snapshot();
        let c = registry_from_ops(&c_ops).snapshot();
        let ab = merged(&a, &b);
        let ba = merged(&b, &a);
        prop_assert_eq!(&ab, &ba);
        prop_assert_eq!(ab.digest(), ba.digest());
        let ab_c = merged(&ab, &c);
        let a_bc = merged(&a, &merged(&b, &c));
        prop_assert_eq!(&ab_c, &a_bc);
        prop_assert_eq!(ab_c.digest(), a_bc.digest());
    }

    /// Registry-level merge agrees with recording everything into a single
    /// registry when the merge order matches emission order (the parallel
    /// drivers fold shards in shard order).
    #[test]
    fn split_registries_merge_to_the_whole(
        ops in ops_strategy(),
        split in 0usize..60,
    ) {
        let whole = registry_from_ops(&ops).snapshot();
        let cut = split.min(ops.len());
        let mut left = registry_from_ops(&ops[..cut]);
        left.merge(registry_from_ops(&ops[cut..]));
        prop_assert_eq!(&left.snapshot(), &whole);
        prop_assert_eq!(left.snapshot().digest(), whole.digest());
    }

    /// On random fleets, per-shard fleet-metrics registries folded across
    /// any thread count equal the single-thread registry bit-for-bit.
    #[test]
    fn fleet_metrics_shards_equal_single_thread(
        devices in 60usize..300,
        seed in 0u64..1_000,
        threads in 2usize..9,
    ) {
        let cfg = StudyConfig {
            seed,
            population: PopulationConfig {
                devices,
                ..Default::default()
            },
            bs_count: 300,
            ..Default::default()
        };
        let (base, _) = run_fleet_metrics(&cfg, 1, true);
        let (sharded, _) = run_fleet_metrics(&cfg, threads, true);
        prop_assert_eq!(&sharded, &base);
        prop_assert_eq!(sharded.digest(), base.digest());
    }
}

#[test]
fn ab_arm_is_identical_across_thread_counts() {
    let base_cfg = AbConfig {
        devices: 6,
        days: 1,
        seed: 31,
        stall_rate_per_hour: 3.0,
        suppress_user_reset: false,
        threads: 1,
    };
    let base = ab::run_custom_arm(RatPolicyKind::Android10, &base_cfg);
    assert!(base.frequency > 0.0);
    for threads in [2usize, 8] {
        let cfg = AbConfig {
            threads,
            ..base_cfg
        };
        let o = ab::run_custom_arm(RatPolicyKind::Android10, &cfg);
        assert_eq!(o.by_kind, base.by_kind, "threads={threads}");
        assert_eq!(o.stall_durations, base.stall_durations, "threads={threads}");
        assert_eq!(
            o.total_duration_secs, base.total_duration_secs,
            "threads={threads}"
        );
        assert_eq!(o.prevalence, base.prevalence, "threads={threads}");
        assert_eq!(o.frequency, base.frequency, "threads={threads}");
    }
}
