//! Property-based tests over the core data structures and invariants,
//! spanning crates.

use cellrel::netstack::{
    run_probe, LinkCondition, ProbeVerdict, TcpAccounting, STALL_MIN_SENT, STALL_WINDOW,
};
use cellrel::sim::{percentile, Ecdf, EventQueue, SimRng, Summary};
use cellrel::telephony::{RecoveryConfig, RecoveryEngine};
use cellrel::timp::TimpModel;
use cellrel::types::{Rat, RssDbm, SignalLevel, SimDuration, SimTime};
use proptest::prelude::*;

proptest! {
    #[test]
    fn event_queue_pops_in_nondecreasing_time_order(
        times in prop::collection::vec(0u64..1_000_000, 1..200)
    ) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule_at(SimTime::from_millis(t), i);
        }
        let mut last = SimTime::ZERO;
        let mut popped = 0;
        while let Some((at, _)) = q.pop() {
            prop_assert!(at >= last);
            last = at;
            popped += 1;
        }
        prop_assert_eq!(popped, times.len());
    }

    #[test]
    fn event_queue_cancellation_preserves_the_rest(
        times in prop::collection::vec(0u64..100_000, 2..100),
        cancel_mask in prop::collection::vec(any::<bool>(), 2..100)
    ) {
        let mut q = EventQueue::new();
        let tokens: Vec<_> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| q.schedule_at(SimTime::from_millis(t), i))
            .collect();
        let mut expected: Vec<usize> = Vec::new();
        for (i, tok) in tokens.iter().enumerate() {
            if cancel_mask.get(i).copied().unwrap_or(false) {
                prop_assert!(q.cancel(*tok));
            } else {
                expected.push(i);
            }
        }
        let mut popped: Vec<usize> = Vec::new();
        while let Some((_, e)) = q.pop() {
            popped.push(e);
        }
        popped.sort_unstable();
        expected.sort_unstable();
        prop_assert_eq!(popped, expected);
    }

    #[test]
    fn signal_level_is_monotone_in_rss(
        a in -150.0f64..-40.0,
        b in -150.0f64..-40.0,
    ) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        for rat in Rat::ALL {
            let l_lo = SignalLevel::from_rss(RssDbm(lo), rat);
            let l_hi = SignalLevel::from_rss(RssDbm(hi), rat);
            prop_assert!(l_lo <= l_hi);
        }
    }

    #[test]
    fn percentile_is_monotone_and_bounded(
        mut xs in prop::collection::vec(-1e6f64..1e6, 1..200),
        q1 in 0.0f64..1.0,
        q2 in 0.0f64..1.0,
    ) {
        xs.sort_by(|x, y| x.partial_cmp(y).expect("finite"));
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let p_lo = percentile(&xs, lo);
        let p_hi = percentile(&xs, hi);
        prop_assert!(p_lo <= p_hi + 1e-9);
        prop_assert!(p_lo >= xs[0] - 1e-9);
        prop_assert!(p_hi <= xs[xs.len() - 1] + 1e-9);
    }

    #[test]
    fn ecdf_is_a_distribution_function(
        xs in prop::collection::vec(-1e3f64..1e3, 1..100),
        probe in -2e3f64..2e3,
    ) {
        let e = Ecdf::new(xs.clone());
        let f = e.at(probe);
        prop_assert!((0.0..=1.0).contains(&f));
        prop_assert!(e.at(e.max()) == 1.0);
        prop_assert!(e.at(e.min() - 1.0) == 0.0);
    }

    #[test]
    fn summary_merge_is_order_independent(
        xs in prop::collection::vec(-1e3f64..1e3, 1..60),
        ys in prop::collection::vec(-1e3f64..1e3, 1..60),
    ) {
        let mut a = Summary::new();
        xs.iter().for_each(|&x| a.push(x));
        let mut b = Summary::new();
        ys.iter().for_each(|&y| b.push(y));
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(ab.count(), ba.count());
        prop_assert!((ab.mean() - ba.mean()).abs() < 1e-9);
        prop_assert!((ab.variance() - ba.variance()).abs() < 1e-6);
    }

    #[test]
    fn tcp_stall_predicate_requires_silence(
        sent in 0usize..40,
        received in 0usize..5,
    ) {
        let mut tcp = TcpAccounting::new();
        let t = SimTime::from_secs(100);
        tcp.record_sent(t, sent);
        tcp.record_received(t, received);
        let stalled = tcp.stall_detected(t);
        prop_assert_eq!(stalled, sent > 10 && received == 0);
    }

    #[test]
    fn probe_verdict_matches_condition_class(seed in 0u64..1000) {
        let mut rng = SimRng::new(seed);
        for cond in LinkCondition::ALL {
            let o = run_probe(
                cond,
                SimDuration::from_secs(1),
                SimDuration::from_secs(5),
                &mut rng,
            );
            match cond {
                LinkCondition::Healthy => prop_assert_eq!(o.verdict, ProbeVerdict::Healthy),
                LinkCondition::NetworkBlackhole => {
                    prop_assert_eq!(o.verdict, ProbeVerdict::NetworkStall)
                }
                LinkCondition::DnsOutage => {
                    prop_assert_eq!(o.verdict, ProbeVerdict::DnsServiceDown)
                }
                _ => prop_assert_eq!(o.verdict, ProbeVerdict::SystemSide),
            }
            prop_assert!(o.elapsed <= SimDuration::from_secs(5));
        }
    }

    #[test]
    fn recovery_engine_executes_at_most_three_stages(
        success in prop::collection::vec(0.0f64..1.0, 3),
        seed in 0u64..500,
    ) {
        let mut cfg = RecoveryConfig::vanilla();
        cfg.op_success = [success[0], success[1], success[2]];
        let mut eng = RecoveryEngine::new(cfg);
        let mut rng = SimRng::new(seed);
        eng.begin(SimTime::ZERO);
        let mut stages = 0;
        loop {
            let (_, fixed, next) = eng.probation_expired(true, &mut rng);
            stages += 1;
            if fixed || next.is_none() {
                break;
            }
        }
        prop_assert!(stages <= 3);
        prop_assert_eq!(eng.actions_executed(), stages);
    }

    #[test]
    fn timp_expected_time_is_finite_and_positive(
        p0 in 1.0f64..120.0,
        p1 in 1.0f64..120.0,
        p2 in 1.0f64..120.0,
        seed in 0u64..50,
    ) {
        let mut rng = SimRng::new(seed);
        let samples: Vec<f64> = (0..500).map(|_| rng.lognormal(2.0, 1.0)).collect();
        let model = TimpModel::from_durations(&samples, [0.75, 0.9, 0.97], [12.0, 30.0, 60.0]);
        let t = model.expected_recovery_time([p0, p1, p2]);
        prop_assert!(t.is_finite());
        prop_assert!(t > 0.0);
        // Bounded by the horizon plus all op costs.
        prop_assert!(t <= model.t_max() + 102.0 + 1e-6);
    }

    #[test]
    fn stall_threshold_is_strictly_more_than_ten(
        base_ms in 0u64..10_000_000,
    ) {
        // "More than 10 outbound segments": exactly STALL_MIN_SENT is never
        // enough, one more always trips it (with zero inbound), regardless
        // of where in simulated time the burst lands.
        let t = SimTime::from_millis(base_ms);
        let mut tcp = TcpAccounting::new();
        tcp.record_sent(t, STALL_MIN_SENT);
        prop_assert!(!tcp.stall_detected(t));
        tcp.record_sent(t, 1);
        prop_assert!(tcp.stall_detected(t));
    }

    #[test]
    fn inbound_at_the_window_edge_still_masks_the_stall(
        base_s in 61u64..100_000,
        sent in 11usize..40,
    ) {
        // The window is [now - 60 s, now]: pruning discards strictly-older
        // timestamps, so an inbound segment exactly 60 s old still counts —
        // and 1 ms older does not.
        let now = SimTime::from_secs(base_s);
        let edge = SimTime::from_millis(now.as_millis() - STALL_WINDOW.as_millis());

        let mut tcp = TcpAccounting::new();
        tcp.record_received(edge, 1);
        tcp.record_sent(now, sent);
        prop_assert!(!tcp.stall_detected(now), "rx at the edge is in-window");

        let mut tcp = TcpAccounting::new();
        tcp.record_received(SimTime::from_millis(edge.as_millis() - 1), 1);
        tcp.record_sent(now, sent);
        prop_assert!(tcp.stall_detected(now), "rx 1 ms past the edge expired");
    }

    #[test]
    fn window_saturates_at_simulation_start(
        now_ms in 0u64..60_000,
        rx_ms in 0u64..60_000,
        sent in 11usize..40,
    ) {
        // Before one full window has elapsed the cutoff saturates to t = 0:
        // nothing is ever pruned, so any inbound segment masks the stall.
        let now = SimTime::from_millis(now_ms.max(rx_ms));
        let mut tcp = TcpAccounting::new();
        tcp.record_received(SimTime::from_millis(rx_ms.min(now_ms)), 1);
        tcp.record_sent(now, sent);
        prop_assert!(!tcp.stall_detected(now));
    }

    #[test]
    fn extreme_timestamps_never_wrap(
        back_ms in 0u64..120_000,
        sent in 11usize..40,
    ) {
        // Timestamps near the top of the u64 range: the cutoff arithmetic
        // must saturate rather than wrap, and the predicate must behave
        // exactly as it does mid-range.
        let now = SimTime::MAX;
        let t = SimTime::from_millis(u64::MAX - back_ms);
        let mut tcp = TcpAccounting::new();
        tcp.record_sent(t, sent);
        let in_window = back_ms <= STALL_WINDOW.as_millis();
        prop_assert_eq!(tcp.stall_detected(now), in_window);
        let (s, r) = tcp.counts_in_window(now);
        prop_assert_eq!(s, if in_window { sent } else { 0 });
        prop_assert_eq!(r, 0);
    }

    #[test]
    fn counts_in_window_agrees_with_the_predicate(
        events in prop::collection::vec(
            (0u64..200_000, any::<bool>(), 1usize..15),
            1..60,
        ),
        probe_ms in 0u64..260_000,
    ) {
        // The read-only view the campaign invariants audit through must
        // agree with the kernel's own mutating predicate at every instant.
        let mut sorted = events;
        sorted.sort_unstable_by_key(|&(t, _, _)| t);
        let last = sorted.last().map(|&(t, _, _)| t).unwrap_or(0);
        let now = SimTime::from_millis(last.max(probe_ms));
        let mut tcp = TcpAccounting::new();
        for &(t, inbound, n) in &sorted {
            if inbound {
                tcp.record_received(SimTime::from_millis(t), n);
            } else {
                tcp.record_sent(SimTime::from_millis(t), n);
            }
        }
        let (s, r) = tcp.counts_in_window(now);
        prop_assert_eq!(tcp.stall_detected(now), s > STALL_MIN_SENT && r == 0);
    }

    #[test]
    fn rat_set_roundtrip(bits in prop::collection::vec(any::<bool>(), 4)) {
        use cellrel::types::RatSet;
        let mut set = RatSet::EMPTY;
        for (i, &b) in bits.iter().enumerate() {
            if b {
                set.insert(Rat::from_index(i).expect("index < 4"));
            }
        }
        let collected: RatSet = set.iter().collect();
        prop_assert_eq!(collected, set);
        prop_assert_eq!(set.len(), bits.iter().filter(|&&b| b).count());
    }
}
