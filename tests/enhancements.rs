//! Integration: the paper's two deployed enhancements (§4.2–4.3), end to
//! end — micro A/B fleets for the RAT policy and the recovery trigger, and
//! the TIMP optimisation chain from duration samples to probation triples.

use cellrel::analysis::ab::{compare_rat_policy, compare_recovery};
use cellrel::sim::SimRng;
use cellrel::telephony::RecoveryConfig;
use cellrel::timp::{anneal_probations, AnnealConfig, TimpModel};
use cellrel::workload::durations::sample_auto_heal_secs;
use cellrel::workload::{run_rat_policy_ab, run_recovery_ab, AbConfig};

#[test]
fn stability_compatible_policy_reduces_failures_on_5g_phones() {
    let cfg = AbConfig {
        devices: 14,
        days: 2,
        seed: 31,
        stall_rate_per_hour: 2.0,
        suppress_user_reset: false,
        threads: 0,
    };
    let (vanilla, patched) = run_rat_policy_ab(&cfg);
    let cmp = compare_rat_policy(vanilla, patched);
    // Fig. 20's direction: fewer failures per device.
    assert!(
        cmp.frequency_change < -0.05,
        "expected a frequency reduction, got {:+.1}%",
        cmp.frequency_change * 100.0
    );
}

#[test]
fn timp_recovery_reduces_stall_durations() {
    let cfg = AbConfig {
        devices: 12,
        days: 3,
        seed: 32,
        stall_rate_per_hour: 4.0,
        suppress_user_reset: true,
        threads: 0,
    };
    let (vanilla, timp) = run_recovery_ab(&cfg);
    let cmp = compare_recovery(vanilla, timp);
    assert!(
        cmp.stall_duration_change < 0.0,
        "expected shorter stalls, got {:+.1}%",
        cmp.stall_duration_change * 100.0
    );
    assert!(!cmp.vanilla.stall_durations.is_empty());
    assert!(!cmp.timp.stall_durations.is_empty());
}

#[test]
fn timp_chain_produces_sub_minute_probations() {
    // duration samples → model fit → annealing → probation triple.
    let mut rng = SimRng::new(33);
    let samples: Vec<f64> = (0..20_000)
        .map(|_| sample_auto_heal_secs(&mut rng))
        .collect();
    let recovery = RecoveryConfig::vanilla();
    let model = TimpModel::from_durations(
        &samples,
        recovery.op_success,
        recovery.op_cost.map(|c| c.as_secs_f64()),
    );
    let result = anneal_probations(&model, &AnnealConfig::default());
    assert!(result.probations.iter().all(|&p| p < 60));
    assert!(result.expected_time < result.vanilla_time);
    // The optimised probations drop into a valid RecoveryConfig.
    let cfg = RecoveryConfig::with_probations(result.probations);
    assert!(cfg.validate().is_ok());
}

#[test]
fn paired_arms_share_world_conditions() {
    // The A/B harness is paired: same seeds, same deployment. Re-running an
    // arm must reproduce it exactly.
    let cfg = AbConfig {
        devices: 6,
        days: 1,
        seed: 34,
        stall_rate_per_hour: 2.0,
        suppress_user_reset: false,
        threads: 0,
    };
    let (v1, _) = run_rat_policy_ab(&cfg);
    let (v2, _) = run_rat_policy_ab(&cfg);
    assert_eq!(v1.frequency, v2.frequency);
    assert_eq!(v1.by_kind, v2.by_kind);
}
