//! Integration: a fully simulated fleet, bottom-up — devices run the whole
//! micro stack with Android-MOD attached, upload their traces to the
//! central [`Backend`], and the backend's fleet summary must show the same
//! qualitative structure the macro study encodes top-down.

use cellrel::monitor::{Backend, MonitoringService};
use cellrel::radio::{DeploymentConfig, RadioEnvironment};
use cellrel::sim::{EventQueue, SimRng};
use cellrel::telephony::{DeviceConfig, DeviceSim, RatPolicyKind};
use cellrel::types::{DeviceId, FailureKind, Isp, Rat, RatSet, SimTime};

fn run_fleet(devices: u32, hours: u64, seed: u64) -> Backend {
    let mut rng = SimRng::new(seed);
    let env = RadioEnvironment::generate(DeploymentConfig::small(), &mut rng);
    let mut backend = Backend::new();

    for i in 0..devices {
        backend.enroll(DeviceId(i));
        let mut dev_rng = rng.fork(i as u64 + 1);
        let city = env.city_centers()[i as usize % env.city_centers().len()];
        let home = city.offset(dev_rng.normal(0.0, 3.0), dev_rng.normal(0.0, 3.0));
        let mut cfg = DeviceConfig::new(DeviceId(i), Isp::A, home);
        cfg.rats = RatSet::up_to(Rat::G5);
        cfg.policy = RatPolicyKind::Android10;
        // Heterogeneous hazards so some devices never fail (prevalence < 1).
        cfg.stall_rate_per_hour = if i % 3 == 0 { 2.0 } else { 0.05 };

        let monitor = MonitoringService::new(DeviceId(i), dev_rng.fork(1));
        let mut queue = EventQueue::new();
        let mut sim = DeviceSim::new(cfg, &env, monitor, dev_rng.fork(2), &mut queue);
        queue.run_until(&mut sim, SimTime::from_secs(hours * 3600));
        // Ship the traces the way real devices do: an end-of-run WiFi
        // flush encodes a wire batch the backend decodes.
        let mut monitor = sim.into_listener();
        if let Some(up) = monitor.upload_opportunity(SimTime::from_secs(hours * 3600), true) {
            backend
                .ingest_encoded(&up.payload)
                .expect("uploader ships decodable batches");
        }
    }
    backend
}

#[test]
fn fleet_summary_has_macro_structure() {
    let backend = run_fleet(18, 24, 51);
    let s = backend.summary();

    assert_eq!(s.devices, 18);
    assert!(s.failures > 0, "fleet produced no failures");
    assert!(
        s.prevalence > 0.0 && s.prevalence < 1.0,
        "prevalence {} should be strictly between 0 and 1 with mixed hazards",
        s.prevalence
    );
    // Data-connection kinds dominate (the >99 % property).
    let major: u64 = FailureKind::MAJOR
        .iter()
        .map(|k| s.by_kind[k.index()])
        .sum();
    assert!(
        major as f64 / s.failures as f64 > 0.9,
        "major kinds {major}/{} failures",
        s.failures
    );
    // Stalls carry a disproportionate share of duration.
    let stall_count_share = s.by_kind[FailureKind::DataStall.index()] as f64 / s.failures as f64;
    assert!(
        s.stall_duration_share > stall_count_share,
        "stall duration share {} vs count share {}",
        s.stall_duration_share,
        stall_count_share
    );
}

#[test]
fn backend_events_feed_the_analysis_layer() {
    let backend = run_fleet(10, 24, 52);
    let events = backend.failure_events();
    assert_eq!(events.len(), backend.records().len());

    // The stall-duration series drives the Fig. 10 estimator directly.
    let stalls = backend.stall_durations_secs();
    if stalls.len() >= 5 {
        let fig10 = cellrel::analysis::stall_recovery::from_durations(stalls);
        assert!(fig10.within_1200s >= fig10.within_300s);
    }

    // And the CSV exporter accepts the bottom-up events unchanged.
    let csv = cellrel::analysis::export::events_csv(&events);
    assert_eq!(csv.lines().count(), events.len() + 1);
}

#[test]
fn fleet_run_is_deterministic() {
    let a = run_fleet(6, 12, 53).summary();
    let b = run_fleet(6, 12, 53).summary();
    assert_eq!(a, b);
}
