//! Integration: a fully simulated device with the Android-MOD monitor
//! attached — the complete §2 measurement pipeline, from telephony events
//! through false-positive filtering and stall probing to trace records.

use cellrel::monitor::MonitoringService;
use cellrel::radio::{DeploymentConfig, RadioEnvironment};
use cellrel::sim::{EventQueue, SimRng};
use cellrel::telephony::{DeviceConfig, DeviceSim, RatPolicyKind, RecordingBoth};
use cellrel::types::{DeviceId, FailureKind, Isp, Rat, RatSet, SimTime};

struct Run {
    raw_events: usize,
    records: Vec<cellrel::monitor::TraceRecord>,
    fp_total: u64,
    monitor: MonitoringService,
}

fn run_monitored_device(seed: u64, hours: u64, fp_prob: f64) -> Run {
    let mut rng = SimRng::new(seed);
    let env = RadioEnvironment::generate(DeploymentConfig::small(), &mut rng);
    let mut cfg = DeviceConfig::new(DeviceId(1), Isp::A, env.city_centers()[0]);
    cfg.rats = RatSet::up_to(Rat::G5);
    cfg.policy = RatPolicyKind::Android10;
    cfg.stall_rate_per_hour = 5.0;
    cfg.fp_condition_prob = fp_prob;

    let listener = RecordingBoth::new(MonitoringService::new(DeviceId(1), rng.fork(1)));
    let mut queue = EventQueue::new();
    let mut dev = DeviceSim::new(cfg, &env, listener, rng.fork(2), &mut queue);
    queue.run_until(&mut dev, SimTime::from_secs(hours * 3600));
    let listener = dev.into_listener();
    Run {
        raw_events: listener.log.len(),
        records: listener.inner.records().to_vec(),
        fp_total: listener.inner.fp_counters().total(),
        monitor: listener.inner,
    }
}

#[test]
fn monitor_records_fewer_than_raw_events() {
    let run = run_monitored_device(1, 24, 0.2);
    assert!(run.raw_events > 0);
    assert!(
        run.records.len() < run.raw_events,
        "monitor must filter: {} records vs {} raw",
        run.records.len(),
        run.raw_events
    );
    assert!(run.fp_total > 0, "a noisy day must produce false positives");
}

#[test]
fn recorded_stalls_have_probed_durations() {
    let run = run_monitored_device(2, 48, 0.1);
    let stalls: Vec<_> = run
        .records
        .iter()
        .filter(|r| r.kind == FailureKind::DataStall)
        .collect();
    assert!(!stalls.is_empty(), "expected recorded stalls");
    for s in &stalls {
        // Probing quantises in ≤5 s rounds; measured durations are positive
        // and bounded by the paper's observed maximum.
        assert!(s.duration.as_secs_f64() > 0.0);
        assert!(s.duration.as_secs_f64() <= 92_000.0);
    }
}

#[test]
fn fp_heavy_world_is_mostly_filtered() {
    // With 90 % of stall conditions being device-side/DNS false positives,
    // the monitor's stall record count must be far below the suspicion count.
    let run = run_monitored_device(3, 48, 0.9);
    let recorded_stalls = run
        .records
        .iter()
        .filter(|r| r.kind == FailureKind::DataStall)
        .count() as u64;
    assert!(
        run.fp_total > recorded_stalls,
        "fp {} vs recorded stalls {}",
        run.fp_total,
        recorded_stalls
    );
}

#[test]
fn setup_error_records_carry_codes_and_context() {
    let run = run_monitored_device(4, 24, 0.1);
    let setups: Vec<_> = run
        .records
        .iter()
        .filter(|r| r.kind == FailureKind::DataSetupError)
        .collect();
    assert!(!setups.is_empty(), "expected setup-error records");
    for r in &setups {
        let cause = r.cause.expect("setup errors carry a cause");
        assert!(cause.is_true_failure(), "{cause} leaked through the filter");
        assert!(r.ctx.bs.is_some(), "in-situ BS identity missing");
    }
}

#[test]
fn monitor_overhead_stays_reasonable() {
    let run = run_monitored_device(5, 72, 0.1);
    let o = run.monitor.overhead();
    // Not the paper's strict typical budget (we inject far more failures
    // than a typical device sees), but the worst-case envelope must hold.
    assert!(o.cpu_utilization() < 0.08, "cpu {}", o.cpu_utilization());
    assert!(o.peak_memory_bytes() < 2 * 1024 * 1024);
    assert!(o.storage_bytes() < 20 * 1024 * 1024);
}

#[test]
fn uploads_drain_the_queue() {
    let mut run = run_monitored_device(6, 24, 0.1);
    let pending_before = run.monitor.uploader().pending_records();
    run.monitor
        .upload_opportunity(SimTime::from_secs(90_000), true);
    if pending_before > 0 {
        assert_eq!(run.monitor.uploader().pending_records(), 0);
        assert!(run.monitor.uploader().uploaded_records() >= pending_before);
    }
}
