//! Golden store-query snapshot: a canonical query set — the store-served
//! Table 1 and Table 2, a representative `ResultSet` rendering and its CSV
//! export, and the store digest — on the seed-2021 10k-device fleet, pinned
//! byte-for-byte.
//!
//! Any change to event generation, cube routing, merge, compaction, query
//! grouping, metric math, rendering or CSV formatting surfaces here as a
//! readable diff. When a change is *intentional*, regenerate and review:
//!
//! ```sh
//! CELLREL_BLESS=1 cargo test -q --test golden_store
//! git diff tests/golden/store_queries_seed2021.txt
//! ```

use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::OnceLock;

use cellrel::analysis::export::result_set_csv;
use cellrel::analysis::store_tables::{table1_from_store, table2_from_store};
use cellrel::analysis::{table1, table2};
use cellrel::store::{
    build_sharded, DeviceDirectory, Dim, Filter, Metric, Query, Store, StoreConfig,
};
use cellrel::types::FailureKind;
use cellrel::workload::{run_macro_study, PopulationConfig, StudyConfig, StudyDataset};

fn config() -> StudyConfig {
    StudyConfig {
        seed: 2021,
        population: PopulationConfig {
            devices: 10_000,
            ..Default::default()
        },
        bs_count: 4_000,
        ..Default::default()
    }
}

/// The seed-2021 fleet and its store, built once for the whole test binary.
fn fixture() -> &'static (StudyDataset, Store) {
    static FIX: OnceLock<(StudyDataset, Store)> = OnceLock::new();
    FIX.get_or_init(|| {
        let data = run_macro_study(&config());
        let dir = DeviceDirectory::from_population(&data.population);
        let store = build_sharded(&StoreConfig::default(), &dir, &data.events, 0);
        (data, store)
    })
}

fn golden_path() -> PathBuf {
    // CARGO_MANIFEST_DIR is crates/core (the facade owns the root tests/).
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden/store_queries_seed2021.txt")
}

/// Render the canonical query set into one snapshot document.
fn canonical_queries(store: &Store) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# store-served canonical queries (seed 2021)");
    let _ = writeln!(out, "digest: {:016x}", store.digest());
    let _ = writeln!(out, "inserted: {}", store.inserted());
    let _ = writeln!(out, "devices: {}", store.devices());

    let t1 = table1_from_store(store).expect("table1 queries are legal");
    let _ = writeln!(out, "\n## table 1 via store\n");
    out.push_str(&t1.render());

    let t2 = table2_from_store(store, 10).expect("table2 queries are legal");
    let _ = writeln!(out, "\n## table 2 via store\n");
    out.push_str(&t2.render());

    let weekly = store
        .query(&Query {
            filters: vec![Filter::Kind(FailureKind::DataSetupError)],
            group_by: vec![Dim::Time, Dim::Isp],
            window_ms: 0,
            metric: Metric::Count,
            top_k: 0,
        })
        .expect("legal query");
    let _ = writeln!(out, "\n## weekly Data_Setup_Error count by ISP\n");
    out.push_str(&weekly.render());

    let p95 = store
        .query(&Query {
            filters: vec![],
            group_by: vec![Dim::Rat],
            window_ms: 0,
            metric: Metric::QuantileMs(0.95),
            top_k: 0,
        })
        .expect("legal query");
    let _ = writeln!(out, "\n## p95 duration by RAT\n");
    out.push_str(&p95.render());
    let _ = writeln!(out, "\n## p95 duration by RAT (CSV)\n");
    out.push_str(&result_set_csv(&p95));

    out
}

#[test]
fn store_queries_match_golden_snapshot() {
    let (_, store) = fixture();
    let actual = canonical_queries(store);
    let path = golden_path();

    if std::env::var_os("CELLREL_BLESS").is_some() {
        std::fs::write(&path, &actual).expect("write golden snapshot");
        eprintln!("blessed {}", path.display());
        return;
    }

    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {} ({e}); generate it with \
             CELLREL_BLESS=1 cargo test -q --test golden_store",
            path.display()
        )
    });
    if actual != expected {
        let mismatch = actual
            .lines()
            .zip(expected.lines())
            .enumerate()
            .find(|(_, (a, e))| a != e);
        match mismatch {
            Some((i, (a, e))) => panic!(
                "golden store-query mismatch at line {}:\n  expected: {e}\n  actual:   {a}\n\
                 if the change is intentional: CELLREL_BLESS=1 cargo test -q --test golden_store",
                i + 1
            ),
            None => panic!(
                "golden store-query length mismatch ({} vs {} lines); \
                 if intentional: CELLREL_BLESS=1 cargo test -q --test golden_store",
                actual.lines().count(),
                expected.lines().count()
            ),
        }
    }
}

/// The acceptance-criterion witness: store-served Table 1 and Table 2 are
/// byte-identical to the batch analysis on the seed-2021 fleet.
#[test]
fn store_tables_match_batch_on_seed_2021() {
    let (data, store) = fixture();
    assert_eq!(
        table1_from_store(store).expect("legal").render(),
        table1::compute(data).render()
    );
    assert_eq!(
        table2_from_store(store, 10).expect("legal").render(),
        table2::compute(data, 10).render()
    );
}

/// The second acceptance-criterion witness: the store digest is
/// bit-identical across 1/2/8 build threads and across compaction on/off.
#[test]
fn store_digest_thread_and_compaction_invariant() {
    let (data, store) = fixture();
    let dir = DeviceDirectory::from_population(&data.population);
    let base = store.digest();
    for threads in [1usize, 2, 8] {
        let mut s = build_sharded(&StoreConfig::default(), &dir, &data.events, threads);
        assert_eq!(s.digest(), base, "digest diverged at {threads} threads");
        s.compact();
        assert_eq!(s.digest(), base, "digest diverged after compaction");
    }
    let auto = build_sharded(
        &StoreConfig {
            auto_compact_every: 4_096,
            ..StoreConfig::default()
        },
        &dir,
        &data.events,
        2,
    );
    assert!(auto.compactions() > 0, "auto-compaction must trigger");
    assert_eq!(auto.digest(), base, "digest diverged under auto-compaction");
}
