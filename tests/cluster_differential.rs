//! Cluster scatter-gather differential suite: a federated query through
//! the sharded, replicated tier versus the same query on one single-node
//! store holding every record, compared for **byte-identical** answers on
//! the seed-2021 fleet.
//!
//! Layouts under test: 1, 2, and 4 shards (each with one follower
//! replica), queried through the leader routers *and* the follower
//! routers. Coverage is the canonical 11-query bench workload plus
//! proptest-generated random queries — legal and illegal alike, so
//! validation errors must agree too. At one shard the entire `ResultSet`
//! (scan accounting included) must match; at higher shard counts rows,
//! labels, and values must match while `cells_scanned`/`cells_matched`
//! are additive across shards (the same cell key can exist on several
//! shards for different devices — the precedent is the store layouts'
//! scan-counter caveat in `store_differential.rs`).

use std::sync::OnceLock;

use cellrel::cluster::{shard_directories, Cluster, ClusterConfig, ClusterError, ClusterRouter};
use cellrel::store::{
    workload, DeviceDirectory, Dim, Filter, Metric, Query, Region, Store, StoreConfig,
};
use cellrel::stream::{batches_from_events, MemSegments, StreamConfig, StreamPipeline};
use cellrel::types::{DataFailCause, FailureKind, FailureLayer, Isp, PhoneModelId, Rat};
use cellrel::workload::{run_macro_study, PopulationConfig, StudyConfig};
use proptest::prelude::*;

/// Rollup granularity of the default store config (one week).
const WEEK_MS: u64 = 7 * 86_400_000;

/// The shard counts every query must answer identically at.
const SHARD_COUNTS: [usize; 3] = [1, 2, 4];

struct Fixture {
    /// The single-node reference: one sealed store over every record.
    reference: Store,
    /// Leader-tier routers at 1, 2, and 4 shards.
    routers: Vec<ClusterRouter>,
    /// Follower-tier routers at 1, 2, and 4 shards.
    follower_routers: Vec<ClusterRouter>,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let data = run_macro_study(&StudyConfig {
            seed: 2021,
            population: PopulationConfig {
                devices: 1_000,
                ..Default::default()
            },
            days: 14,
            bs_count: 500,
        });
        let dir = DeviceDirectory::from_population(&data.population);
        let batches = batches_from_events(&data.events, 48);
        let scfg = StreamConfig {
            window_ms: 86_400_000,
            lateness_ms: 2 * 3_600_000,
            hot_windows: 3,
            late_flush: 512,
            ..Default::default()
        };

        // Reference: one pipeline over the whole fleet, sealed the same
        // way serving snapshots are.
        let mut single = StreamPipeline::new(&scfg, &dir).expect("single pipeline");
        let mut segs = MemSegments::new();
        for b in &batches {
            single.offer(b, &mut segs).expect("offer");
        }
        single.flush(&mut segs).expect("flush");
        let reference_digest = single.digest();
        let mut reference = single.store();
        reference.seal_columnar();

        let mut routers = Vec::new();
        let mut follower_routers = Vec::new();
        for shards in SHARD_COUNTS {
            let dirs: &'static [DeviceDirectory] =
                Box::leak(shard_directories(&dir, shards).into_boxed_slice());
            let ccfg = ClusterConfig {
                shards,
                replicas: 1,
                checkpoint_every: 4,
            };
            let mut cluster = Cluster::new(&scfg, &ccfg, dirs).expect("cluster");
            for b in &batches {
                cluster.offer(b).expect("offer");
            }
            cluster.flush().expect("flush");
            cluster.publish();
            // Identity of the merged content, before any query runs.
            assert_eq!(
                cluster.digest(),
                reference_digest,
                "{shards}-shard merged store must be digest-identical to single-node"
            );
            let router = cluster.router();
            assert_eq!(router.fan_out(), shards);
            follower_routers.push(cluster.follower_router().expect("replicas exist"));
            routers.push(router);
            // The cluster is dropped here; routers stay live on the
            // published Arc snapshots — snapshot isolation outliving the
            // writer is part of the serving contract.
        }
        Fixture {
            reference,
            routers,
            follower_routers,
        }
    })
}

/// Rows, labels, and values must be byte-identical at every shard count;
/// the full result set (accounting included) must match at one shard, and
/// accounting must stay additive (≥ reference never holds: identical or
/// larger-by-collision is wrong to assume — we pin exact row equality and
/// check the 1-shard accounting exactly).
fn assert_cluster_agrees(q: &Query) {
    let fx = fixture();
    let reference = fx.reference.query(q);
    for (i, shards) in SHARD_COUNTS.iter().enumerate() {
        for (tier, router) in [
            ("leader", &fx.routers[i]),
            ("follower", &fx.follower_routers[i]),
        ] {
            let routed = router.query(q);
            match (&reference, routed) {
                (Ok(want), Ok(got)) => {
                    assert_eq!(
                        got.result.rows, want.rows,
                        "{shards}-shard {tier} rows: {q:?}"
                    );
                    assert_eq!(got.result.group_by, want.group_by);
                    assert_eq!(got.result.metric, want.metric);
                    if *shards == 1 && tier == "leader" {
                        // Full identity, accounting included: one shard's
                        // leader serves the pipeline's own merged store.
                        // Follower stores replay raw segment deltas and so
                        // carry an uncompacted physical layout — rows are
                        // identical but scan counters legitimately differ,
                        // exactly as across layouts in store_differential.
                        assert_eq!(
                            got.result, *want,
                            "1-shard {tier} answers must be fully identical: {q:?}"
                        );
                    }
                    assert_eq!(got.epochs.len(), *shards);
                }
                (Err(want), Err(ClusterError::Query(detail))) => {
                    assert_eq!(
                        detail,
                        want.to_string(),
                        "{shards}-shard {tier} error: {q:?}"
                    );
                }
                (want, got) => {
                    panic!("{shards}-shard {tier} disagree on {q:?}: {want:?} vs {got:?}")
                }
            }
        }
    }
}

#[test]
fn workload_queries_are_cluster_identical_on_the_fleet() {
    for (name, q) in workload::canonical(WEEK_MS) {
        assert_cluster_agrees(&q);
        let fx = fixture();
        assert!(
            fx.reference.query(&q).is_ok(),
            "canonical workload query {name} must be legal"
        );
    }
}

/// One filter's raw material (see `store_differential.rs` for the idiom;
/// tuple arity ≤ 5 because of the vendored proptest).
type FilterParts = (usize, u64, u64);

fn build_filter((tag, a, b): &FilterParts) -> Filter {
    let (a, b) = (*a, *b);
    match tag % 9 {
        0 => Filter::Kind(FailureKind::from_index(a as usize % 5).expect("kind < 5")),
        1 => Filter::Isp(Isp::from_index(a as usize % 3).expect("isp < 3")),
        2 => Filter::Rat(Rat::from_index(a as usize % 4).expect("rat < 4")),
        3 => Filter::Model(PhoneModelId((a % 24) as u8)),
        4 => Filter::Region(Region::from_index(a as usize % 3).expect("region < 3")),
        5 => Filter::CauseClass(FailureLayer::from_index(a as usize % 5).expect("layer < 5")),
        6 => Filter::Cause(DataFailCause::from_code((a % 64) as i32 - 8)),
        7 => Filter::HasCause,
        _ => {
            let lo = (a % 28) * 86_400_000;
            let hi = (b % 28) * 86_400_000;
            Filter::TimeRange {
                start_ms: lo.min(hi),
                end_ms: lo.max(hi) + WEEK_MS,
            }
        }
    }
}

/// Query material: filters, group-by dims, window selector, metric
/// selector + quantile, top_k. Deliberately includes illegal queries
/// (duplicate dims, misaligned windows) — federated validation errors
/// must match single-node ones.
type QueryParts = (Vec<FilterParts>, Vec<usize>, u64, (usize, u64), usize);

fn parts_strategy() -> impl Strategy<Value = QueryParts> {
    (
        prop::collection::vec((0usize..9, 0u64..4_096, 0u64..4_096), 0..4),
        prop::collection::vec(0usize..8, 0..4),
        0u64..5,
        (0usize..8, 0u64..1_000),
        0usize..12,
    )
}

fn build_query(p: &QueryParts) -> Query {
    let (filters, dims, window_sel, (metric_tag, quant), top_k) = p;
    let metric = match metric_tag % 8 {
        0 => Metric::Count,
        1 => Metric::DurationTotalMs,
        2 => Metric::MeanDurationMs,
        3 => Metric::MaxDurationMs,
        4 => Metric::Under30sShare,
        5 => Metric::QuantileMs(*quant as f64 / 1_000.0),
        6 => Metric::Devices,
        _ => Metric::FailingDevices,
    };
    Query {
        filters: filters.iter().map(build_filter).collect(),
        group_by: dims
            .iter()
            .map(|i| Dim::from_index(i % 8).expect("dim < 8"))
            .collect(),
        // 0 = whole study; the rest are rollup-aligned or deliberately not.
        window_ms: [0, WEEK_MS, 2 * WEEK_MS, 86_400_000, 12 * 3_600_000]
            [(*window_sel % 5) as usize],
        metric,
        top_k: *top_k,
    }
}

proptest! {
    /// Random queries — legal or not — answer identically through every
    /// router tier and shard count. 128 cases × a batch of 3–5 queries
    /// ≥ 384 federated queries per run, on top of the canonical 11.
    #[test]
    fn random_queries_are_cluster_identical(batch in prop::collection::vec(parts_strategy(), 3..6)) {
        for p in &batch {
            assert_cluster_agrees(&build_query(p));
        }
    }
}

/// The store config the reference fixture uses must stay the default the
/// shard pipelines use, or the differential comparison would be vacuous.
#[test]
fn fixture_configs_agree() {
    assert_eq!(StreamConfig::default().store, StoreConfig::default());
}
