//! Chrome trace-event JSON validity: the `--trace-out` output must load in
//! `chrome://tracing` / Perfetto, so this test parses it with a small
//! self-contained JSON parser and checks the trace-event contract:
//!
//! * the document is a JSON object with a `traceEvents` array;
//! * every event has `name`, `ph`, `ts` and `dur` fields;
//! * timestamps are non-negative and monotone non-decreasing in emission
//!   order (the sink renders canonically sorted);
//! * phases are all complete (`X`) or instant (`i`) events — the sink
//!   never emits unbalanced `B`/`E` pairs.

use std::collections::BTreeMap;

use cellrel::sim::{span, Telemetry};
use cellrel::types::{SimDuration, SimTime};
use cellrel::workload::{
    run_fleet_metrics, run_scenario_telemetry, ChaosConfig, PopulationConfig, StudyConfig,
};

// ---- a minimal JSON parser (objects, arrays, strings, numbers) -----------

#[derive(Debug, Clone, PartialEq)]
enum Json {
    Object(BTreeMap<String, Json>),
    Array(Vec<Json>),
    String(String),
    Number(f64),
    Bool(bool),
    Null,
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(m) => m.get(key),
            _ => None,
        }
    }

    fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(v) => Some(v),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn parse(text: &'a str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing bytes at offset {}", p.pos));
        }
        Ok(v)
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at offset {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {other:?} at offset {}", self.pos)),
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("bad literal at offset {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(map));
                }
                other => return Err(format!("bad object separator {other:?}")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                other => return Err(format!("bad array separator {other:?}")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so
                    // byte boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || c == b'.' || c == b'e' || c == b'E' || c == b'+' || c == b'-')
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|e| e.to_string())?
            .parse::<f64>()
            .map(Json::Number)
            .map_err(|e| format!("bad number at {start}: {e}"))
    }
}

// ---- the trace-event contract --------------------------------------------

fn assert_valid_chrome_trace(json_text: &str) -> usize {
    let doc = Parser::parse(json_text).expect("trace output must parse as JSON");
    let events = doc
        .get("traceEvents")
        .expect("document must have a traceEvents field")
        .as_array()
        .expect("traceEvents must be an array");
    let mut prev_ts = 0.0f64;
    for (i, e) in events.iter().enumerate() {
        let name = e
            .get("name")
            .and_then(Json::as_str)
            .unwrap_or_else(|| panic!("event {i} missing name"));
        assert!(!name.is_empty(), "event {i} has an empty name");
        let ph = e
            .get("ph")
            .and_then(Json::as_str)
            .unwrap_or_else(|| panic!("event {i} missing ph"));
        assert!(
            ph == "X" || ph == "i",
            "event {i} has phase {ph:?}; the sink only emits complete (X) \
             and instant (i) events, so B/E imbalance is impossible"
        );
        let ts = e
            .get("ts")
            .and_then(Json::as_f64)
            .unwrap_or_else(|| panic!("event {i} missing ts"));
        assert!(ts >= 0.0, "event {i} has negative ts {ts}");
        assert!(
            ts >= prev_ts,
            "event {i} ts {ts} < previous {prev_ts}: output must be canonically sorted"
        );
        prev_ts = ts;
        let dur = e
            .get("dur")
            .and_then(Json::as_f64)
            .unwrap_or_else(|| panic!("event {i} missing dur"));
        assert!(dur >= 0.0, "event {i} has negative dur {dur}");
        if ph == "i" {
            assert_eq!(dur, 0.0, "instant event {i} must have zero dur");
        }
    }
    events.len()
}

#[test]
fn hand_built_trace_is_valid_and_escapes_names() {
    let tele = Telemetry::with_trace();
    span!(tele, "needs \"escaping\"", SimTime::from_millis(5), 3)
        .end(SimTime::from_millis(5) + SimDuration::from_millis(10));
    tele.instant("tick", SimTime::ZERO, 1);
    let json = tele.snapshot().trace_sink().to_chrome_json();
    let n = assert_valid_chrome_trace(&json);
    assert_eq!(n, 2);
    // Round trip: the escaped name parses back to the original.
    let doc = Parser::parse(&json).unwrap();
    let names: Vec<_> = doc
        .get("traceEvents")
        .unwrap()
        .as_array()
        .unwrap()
        .iter()
        .map(|e| e.get("name").unwrap().as_str().unwrap().to_string())
        .collect();
    assert!(names.contains(&"needs \"escaping\"".to_string()));
}

#[test]
fn empty_trace_is_valid() {
    let json = Telemetry::with_trace()
        .snapshot()
        .trace_sink()
        .to_chrome_json();
    assert_eq!(assert_valid_chrome_trace(&json), 0);
}

#[test]
fn chaos_scenario_trace_is_valid() {
    // Scenario 6 decodes to a storm schedule: guaranteed span activity.
    let cfg = ChaosConfig {
        scenarios: 1,
        horizon: SimDuration::from_hours(2),
        grace: SimDuration::from_mins(45),
        ..ChaosConfig::default()
    };
    let (_, snap) = run_scenario_telemetry(&cfg, 6, true);
    let json = snap.trace_sink().to_chrome_json();
    let n = assert_valid_chrome_trace(&json);
    assert_eq!(n, snap.trace().len());
    assert!(n > 0, "storm scenario produced no trace events");
}

#[test]
fn fleet_metrics_trace_is_valid() {
    let cfg = StudyConfig {
        seed: 2021,
        population: PopulationConfig {
            devices: 500,
            ..Default::default()
        },
        bs_count: 400,
        ..Default::default()
    };
    let (snap, _) = run_fleet_metrics(&cfg, 0, true);
    let json = snap.trace_sink().to_chrome_json();
    let n = assert_valid_chrome_trace(&json);
    assert_eq!(n as u64, snap.counter("fleet.failures"));
    assert!(n > 0, "fleet produced no failures");
}
