//! Integration tests for the deterministic fault-campaign engine: the whole
//! micro-DES stack under enumerated fault scenarios, with the cross-stack
//! invariant registry checking every event step.
//!
//! The three pillars the `chaos` CLI and CI smoke job rely on:
//!
//! 1. a campaign is *clean* — the default invariant registry finds no
//!    violations in the shipped stack;
//! 2. a campaign is *thread-invariant* — the same report (and digest) at
//!    1, 2, and 8 threads;
//! 3. any violation is *replayable* — re-running its scenario id reproduces
//!    the same violation at the same event index, byte-identically.

use cellrel::sim::{Invariant, InvariantRegistry};
use cellrel::telephony::TelephonyEvent;
use cellrel::types::SimDuration;
use cellrel::workload::{
    replay_scenario, run_chaos_campaign, run_scenario_with, ChaosConfig, ChaosScenario, StepView,
};

fn test_cfg() -> ChaosConfig {
    ChaosConfig {
        scenarios: 12,
        horizon: SimDuration::from_hours(3),
        grace: SimDuration::from_mins(45),
        ..ChaosConfig::default()
    }
}

#[test]
fn campaign_is_clean_and_invariant_across_thread_counts() {
    let base = run_chaos_campaign(&test_cfg());
    assert_eq!(base.scenarios, 12);
    assert!(base.events > 0);
    assert_eq!(
        base.violations,
        Vec::new(),
        "default invariant registry must pass on the shipped stack"
    );
    // Coverage counts one label per axis per scenario.
    let total: u64 = base.coverage.values().sum();
    assert_eq!(total, 12 * 6);

    for threads in [2, 8] {
        let other = run_chaos_campaign(&ChaosConfig {
            threads,
            ..test_cfg()
        });
        assert_eq!(base, other, "report differs at {threads} threads");
        assert_eq!(base.digest(), other.digest());
    }
}

#[test]
fn scenario_replay_is_byte_identical() {
    let cfg = test_cfg();
    for id in [0, 5, 11] {
        let a = replay_scenario(&cfg, id);
        let b = replay_scenario(&cfg, id);
        assert_eq!(a, b, "scenario {id} must replay identically");
        assert_eq!(a.scenario, id);
        assert_eq!(a.coverage, ChaosScenario::decode(id).coverage_labels());
    }
}

#[test]
fn different_root_seeds_give_different_campaigns() {
    let a = run_chaos_campaign(&test_cfg());
    let b = run_chaos_campaign(&ChaosConfig {
        root_seed: 99,
        ..test_cfg()
    });
    assert_ne!(a.digest(), b.digest(), "root seed must drive the campaign");
}

#[test]
fn forced_violation_replays_at_the_same_event_index() {
    // A canary invariant that trips on the first recovery execution gives us
    // a guaranteed violation to exercise the repro path end to end.
    struct Canary;
    impl Invariant<StepView> for Canary {
        fn name(&self) -> &'static str {
            "canary-recovery"
        }
        fn check(&mut self, view: &StepView) -> Result<(), String> {
            for (_, ev) in &view.new_events {
                if let TelephonyEvent::RecoveryActionExecuted { stage, .. } = ev {
                    return Err(format!("recovery stage {stage} ran"));
                }
            }
            Ok(())
        }
    }
    let with_canary = || {
        let mut reg = InvariantRegistry::new();
        reg.register(Canary);
        reg
    };

    let cfg = ChaosConfig {
        scenarios: 4,
        ..test_cfg()
    };
    // Find a scenario where recovery actually runs (storm schedules make
    // this near-certain within the horizon).
    let mut hit = None;
    for id in 0..24 {
        let outcome = run_scenario_with(&cfg, id, with_canary);
        if !outcome.violations.is_empty() {
            hit = Some((id, outcome));
            break;
        }
    }
    let (id, first) = hit.expect("some scenario must execute a recovery stage");

    let replay = run_scenario_with(&cfg, id, with_canary);
    assert_eq!(first.violations, replay.violations);
    let v = &first.violations[0];
    assert_eq!(v.scenario, id);
    assert_eq!(v.invariant, "canary-recovery");
    assert_eq!(
        v.event_index, replay.violations[0].event_index,
        "the violation must land on the same event index on replay"
    );
}
