//! Integration: fault injection drives the rare paths end to end —
//! forced causes, recovery stage 3 (radio restart), barring storms at dense
//! hubs, and the monitor's long-stall backoff.

use cellrel::modem::{FaultProfile, Modem};
use cellrel::monitor::MonitoringService;
use cellrel::radio::{DeploymentConfig, EmmStateMachine, RadioEnvironment, RiskFactors};
use cellrel::sim::{EventQueue, SimRng};
use cellrel::telephony::{
    DcTracker, DeviceConfig, DeviceSim, RatPolicyKind, RecordingBoth, RecoveryConfig, RetryPolicy,
    TelephonyEvent,
};
use cellrel::types::{Apn, DataFailCause, DeviceId, Isp, Rat, RatSet, SimTime};

#[test]
fn forced_cause_flows_from_modem_to_monitor_records() {
    // A forced permanent cause must surface in the monitor's records with
    // exactly that cause attached.
    let mut rng = SimRng::new(1);
    let env = RadioEnvironment::generate(DeploymentConfig::small(), &mut rng);
    let city = env.city_centers()[0];
    let views = env.scan_salted(city, Isp::A, RatSet::up_to(Rat::G4), 3, &mut rng);
    let view = views[0];
    let risk = env.risk(&view);

    let mut modem = Modem::new();
    modem.camp_on(view);
    modem.set_fault(FaultProfile::forcing(DataFailCause::ForbiddenPlmn));
    let mut tracker = DcTracker::new(Apn::Internet, RetryPolicy::default());
    let mut monitor = MonitoringService::new(DeviceId(9), rng.fork(1));

    use cellrel::telephony::TelephonyListener;
    let verdict = tracker.attempt_setup(&mut modem, &risk, SimTime::ZERO, &mut rng);
    if let cellrel::telephony::dc_tracker::SetupVerdict::GaveUp(cause) = verdict {
        monitor.on_event(
            SimTime::ZERO,
            &TelephonyEvent::DataSetupError {
                cause,
                ctx: cellrel::types::InSituInfo {
                    rat: view.rat,
                    signal: view.level,
                    apn: Apn::Internet,
                    bs: Some(env.bs(view.bs).id),
                    isp: Isp::A,
                },
            },
        );
    } else {
        panic!("forced permanent cause must give up, got {verdict:?}");
    }
    assert_eq!(monitor.records().len(), 1);
    assert_eq!(
        monitor.records()[0].cause,
        Some(DataFailCause::ForbiddenPlmn)
    );
}

#[test]
fn ineffective_early_stages_reach_radio_restart() {
    // Cripple stages 1 and 2 so the engine escalates to stage 3, which
    // must actually restart the radio.
    let mut rng = SimRng::new(2);
    let env = RadioEnvironment::generate(DeploymentConfig::small(), &mut rng);
    let mut cfg = DeviceConfig::new(DeviceId(0), Isp::A, env.city_centers()[0]);
    cfg.stall_rate_per_hour = 6.0;
    cfg.user_reset_median_secs = 1e9; // keep the user out of it
    let mut recovery = RecoveryConfig::timp_optimized();
    recovery.op_success = [0.0, 0.0, 1.0];
    cfg.recovery = recovery;

    let mut queue = EventQueue::new();
    let listener = RecordingBoth::new(MonitoringService::new(DeviceId(0), rng.fork(1)));
    let mut dev = DeviceSim::new(cfg, &env, listener, rng.fork(2), &mut queue);
    queue.run_until(&mut dev, SimTime::from_secs(48 * 3600));

    assert!(
        dev.modem().restart_count() > 0,
        "stage 3 never restarted the radio: {:?}",
        dev.stats()
    );
    let log = &dev.listener().log;
    let stage3 = log
        .iter()
        .filter(|(_, e)| matches!(e, TelephonyEvent::RecoveryActionExecuted { stage: 3, .. }))
        .count();
    assert!(stage3 > 0, "no stage-3 recovery events observed");
}

#[test]
fn barring_storm_at_a_saturated_hub() {
    // A hostile hub risk profile produces a stream of EMM_ACCESS_BARRED
    // outcomes and an escalating barred streak.
    let risk = RiskFactors {
        signal_risk: 0.022,
        interference: 1.0,
        overload_prob: 0.0,
        emm_pressure: 1.0,
        disrepair: false,
    };
    let mut rng = SimRng::new(3);
    let mut emm = EmmStateMachine::new();
    let mut barred = 0;
    for _ in 0..300 {
        if emm.attach(Rat::G5, &risk, &mut rng) == Err(DataFailCause::EmmAccessBarred) {
            barred += 1;
        } else {
            emm.detach();
        }
    }
    assert!(barred > 20, "expected a barring storm, got {barred}/300");
}

#[test]
fn scaled_hazards_degrade_everything_proportionally() {
    // FaultProfile::scaled is the modem-wide chaos knob: a 10× profile must
    // visibly raise the setup failure rate on a quiet cell.
    let mut rng = SimRng::new(4);
    let env = RadioEnvironment::generate(DeploymentConfig::small(), &mut rng);
    let city = env.city_centers()[0];
    let views = env.scan_salted(city, Isp::A, RatSet::up_to(Rat::G4), 5, &mut rng);
    let view = views[0];
    let risk = env.risk(&view);

    let attempts = |fault: FaultProfile, rng: &mut SimRng| {
        let mut failures = 0;
        for _ in 0..400 {
            let mut modem = Modem::new();
            modem.camp_on(view);
            modem.set_fault(fault);
            if modem
                .setup_data_call(Apn::Internet, &risk, SimTime::ZERO, rng)
                .is_err()
            {
                failures += 1;
            }
        }
        failures
    };
    let base = attempts(FaultProfile::none(), &mut rng);
    let chaotic = attempts(FaultProfile::scaled(10.0), &mut rng);
    assert!(
        chaotic > base * 2 + 10,
        "chaos knob had no bite: base {base}, scaled {chaotic}"
    );
}

#[test]
fn fp_only_world_records_nothing_but_counts_everything() {
    // All stall conditions are device-side false positives: the monitor
    // must classify them all and record no Data_Stall failures.
    let mut rng = SimRng::new(5);
    let env = RadioEnvironment::generate(DeploymentConfig::small(), &mut rng);
    let mut cfg = DeviceConfig::new(DeviceId(0), Isp::A, env.city_centers()[0]);
    cfg.stall_rate_per_hour = 6.0;
    cfg.fp_condition_prob = 1.0;
    cfg.policy = RatPolicyKind::Android9;

    let mut queue = EventQueue::new();
    let monitor = MonitoringService::new(DeviceId(0), rng.fork(1));
    let mut dev = DeviceSim::new(cfg, &env, monitor, rng.fork(2), &mut queue);
    queue.run_until(&mut dev, SimTime::from_secs(36 * 3600));

    let monitor = dev.into_listener();
    let stall_records = monitor
        .records()
        .iter()
        .filter(|r| r.kind == cellrel::types::FailureKind::DataStall)
        .count();
    assert_eq!(
        stall_records, 0,
        "system-side conditions must never become stall records"
    );
    use cellrel::types::FalsePositiveClass;
    let fp_stalls = monitor.fp_counters().get(FalsePositiveClass::SystemSide)
        + monitor
            .fp_counters()
            .get(FalsePositiveClass::DnsServiceDown);
    assert!(fp_stalls > 0, "the FP classes must be counted");
}
