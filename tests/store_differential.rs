//! Differential scan-equivalence suite: the columnar segment engine
//! (`Store::query`) versus the row reference engine (`Store::query_row`),
//! compared for **byte-identical** `ResultSet`s — rows, labels, and the
//! `cells_scanned` / `cells_matched` accounting — on the seed-2021 fleet.
//!
//! Three store layouts are exercised for every query: the as-built hot
//! (row-tier) store, the compacted store (rolled-up sealed segments + hot
//! edge buckets), and the fully sealed store (everything columnar, the
//! stream/queryd snapshot shape). Coverage is the canonical 11-query
//! bench workload plus proptest-generated random queries — legal and
//! illegal alike, so validation errors must agree too — with the fleet
//! built at 1, 2 and 8 threads to pin thread invariance of the layouts.

use std::sync::OnceLock;

use cellrel::store::{
    build_sharded, workload, DeviceDirectory, Dim, Filter, Metric, Query, Region, Store,
    StoreConfig,
};
use cellrel::types::{DataFailCause, FailureKind, FailureLayer, Isp, PhoneModelId, Rat};
use cellrel::workload::{run_macro_study, PopulationConfig, StudyConfig};
use proptest::prelude::*;

/// Rollup granularity of the default store config (one week).
const WEEK_MS: u64 = 7 * 86_400_000;

/// The three layouts a query must answer identically on: hot rows only,
/// compacted (sealed rollup segments + hot edge), and fully sealed.
fn layouts() -> &'static [Store; 3] {
    static LAYOUTS: OnceLock<[Store; 3]> = OnceLock::new();
    LAYOUTS.get_or_init(|| {
        let data = run_macro_study(&StudyConfig {
            seed: 2021,
            population: PopulationConfig {
                devices: 1_000,
                ..Default::default()
            },
            days: 14,
            bs_count: 500,
        });
        let dir = DeviceDirectory::from_population(&data.population);
        let cfg = StoreConfig::default();
        let hot = build_sharded(&cfg, &dir, &data.events, 1);
        // The sharded build must be layout-identical at any thread count
        // (segments included) — the store-smoke invariant, now columnar.
        for threads in [2usize, 8] {
            assert_eq!(build_sharded(&cfg, &dir, &data.events, threads), hot);
        }
        let mut compacted = hot.clone();
        compacted.compact();
        assert!(compacted.sealed_segments() > 0, "fixture must seal");
        let mut sealed = hot.clone();
        sealed.seal_columnar();
        assert_eq!(sealed.sealed_cells(), sealed.cells());
        [hot, compacted, sealed]
    })
}

/// Both engines, all layouts, one query: every answer (or error) must be
/// identical, and answers must not depend on the layout.
fn assert_engines_agree(q: &Query) {
    let [hot, compacted, sealed] = layouts();
    let reference = hot.query_row(q);
    for (name, s) in [("hot", hot), ("compacted", compacted), ("sealed", sealed)] {
        assert_eq!(s.query(q), s.query_row(q), "{name} layout: {q:?}");
    }
    // Layout invariance of the row content (scan counters legitimately
    // differ across layouts because compaction folds cells).
    if let Ok(r) = reference {
        for s in [compacted, sealed] {
            assert_eq!(s.query(q).unwrap().rows, r.rows, "{q:?}");
        }
    }
}

#[test]
fn workload_queries_are_engine_identical_on_the_fleet() {
    for (name, q) in workload::canonical(WEEK_MS) {
        assert_engines_agree(&q);
        // The workload is all-legal; a rejected query here means the
        // harness stopped testing the scan path.
        assert!(layouts()[0].query(&q).is_ok(), "{name} must validate");
    }
}

/// The varying material of one filter, as numbers (the vendored proptest
/// has no mapping combinators, so generation is numeric and construction
/// is plain code — same idiom as the store property tests).
type FilterParts = (usize, u64, u64);

/// Time-range bound: usually rollup-aligned (legal), sometimes off by a
/// jitter (illegal — both engines must reject identically).
fn bound(sel: u64) -> u64 {
    (sel % 5) * WEEK_MS + (sel / 5 % 3) * 12_345
}

fn build_filter((variant, a, b): FilterParts) -> Filter {
    match variant % 9 {
        0 => Filter::Kind(FailureKind::ALL[a as usize % FailureKind::ALL.len()]),
        1 => Filter::Isp(Isp::ALL[a as usize % Isp::ALL.len()]),
        2 => Filter::Rat(Rat::ALL[a as usize % Rat::ALL.len()]),
        // Out-of-directory models included: must match nothing, identically.
        3 => Filter::Model(PhoneModelId((a % (PhoneModelId::COUNT as u64 + 2)) as u8)),
        4 => Filter::Region(Region::ALL[a as usize % Region::ALL.len()]),
        5 => Filter::CauseClass(FailureLayer::ALL[a as usize % FailureLayer::ALL.len()]),
        // Negative and unknown cause codes included.
        6 => Filter::Cause(DataFailCause::from_code((a % 4_025) as i32 - 25)),
        7 => Filter::HasCause,
        _ => Filter::TimeRange {
            start_ms: bound(a),
            end_ms: bound(b),
        },
    }
}

/// The varying material of one query: filters, group-by dims (duplicates
/// allowed — `DuplicateDim` rejection must agree too), window selector,
/// top-k, and metric selector (quantile numerator included, spanning
/// out-of-range values).
type QueryParts = (
    Vec<FilterParts>,
    Vec<usize>,
    (u64, u64),
    usize,
    (usize, u64),
);

fn parts_strategy() -> impl Strategy<Value = QueryParts> {
    (
        prop::collection::vec((0usize..9, 0u64..4_096, 0u64..4_096), 0..4),
        prop::collection::vec(0usize..Dim::ALL.len(), 0..4),
        (0u64..3, 0u64..2),
        0usize..7,
        (0usize..8, 0u64..1_500),
    )
}

fn build_query((filters, dims, (weeks, jitter), top_k, (metric, qn)): QueryParts) -> Query {
    let metric = match metric {
        0 => Metric::Count,
        1 => Metric::DurationTotalMs,
        2 => Metric::MeanDurationMs,
        3 => Metric::MaxDurationMs,
        4 => Metric::Under30sShare,
        // q ∈ [-0.25, 1.25): out-of-range rejection must be identical.
        5 => Metric::QuantileMs(qn as f64 / 1_000.0 - 0.25),
        6 => Metric::Devices,
        _ => Metric::FailingDevices,
    };
    Query {
        filters: filters.into_iter().map(build_filter).collect(),
        group_by: dims.into_iter().map(|i| Dim::ALL[i]).collect(),
        window_ms: weeks * WEEK_MS + jitter * 9_999,
        metric,
        top_k,
    }
}

proptest! {
    // The acceptance bar: ≥ 256 random queries, every one byte-identical
    // across engines and layouts (errors included). The vendored proptest
    // runs 128 cases by default (PROPTEST_CASES overrides), so each case
    // draws a batch of three queries: ≥ 384 per run.
    #[test]
    fn random_queries_are_engine_identical(
        batch in prop::collection::vec(parts_strategy(), 3..6),
    ) {
        let [hot, compacted, sealed] = layouts();
        for parts in batch {
            let q = build_query(parts);
            let reference = hot.query_row(&q);
            for s in [hot, compacted, sealed] {
                prop_assert_eq!(&s.query(&q), &s.query_row(&q), "{:?}", &q);
            }
            if let Ok(r) = reference {
                for s in [compacted, sealed] {
                    prop_assert_eq!(&s.query(&q).unwrap().rows, &r.rows, "{:?}", &q);
                }
            }
        }
    }
}
