//! End-to-end integration: the macro study feeds the full analysis pipeline
//! and every paper-level invariant holds on one shared dataset.

use cellrel::analysis as an;
use cellrel::types::{FailureKind, Isp, Rat};
use cellrel::workload::{run_macro_study, PopulationConfig, StudyConfig, StudyDataset};
use std::sync::OnceLock;

fn dataset() -> &'static StudyDataset {
    static DATA: OnceLock<StudyDataset> = OnceLock::new();
    DATA.get_or_init(|| {
        run_macro_study(&StudyConfig {
            population: PopulationConfig {
                devices: 8_000,
                ..Default::default()
            },
            bs_count: 10_000,
            seed: 99,
            ..Default::default()
        })
    })
}

#[test]
fn headline_invariants() {
    let h = an::headline::compute(dataset());
    assert!((0.15..0.30).contains(&h.prevalence));
    assert!((20.0..48.0).contains(&h.frequency));
    assert!(h.kind_share[..3].iter().sum::<f64>() > 0.98);
    assert!(h.kind_duration_share[FailureKind::DataStall.index()] > 0.8);
}

#[test]
fn every_report_renders_nonempty() {
    let d = dataset();
    let reports = [
        an::headline::compute(d).render(),
        an::table1::compute(d).render(),
        an::table2::compute(d, 10).render(),
        an::per_model::render(&an::per_model::compute(d)),
        an::counts::compute(d).render(),
        an::duration_stats::compute(d).render(),
        an::groups::compute(d).render(),
        an::stall_recovery::compute(d).render(),
        an::zipf::compute(d).render(),
        an::isp::render(&an::isp::compute(d)),
        an::per_rat::render(&an::per_rat::compute(d)),
        an::signal::compute(d).render(),
    ];
    for (i, r) in reports.iter().enumerate() {
        assert!(r.len() > 80, "report {i} suspiciously short: {r:?}");
    }
}

#[test]
fn cross_slice_consistency() {
    // Slice totals must re-aggregate to the dataset totals.
    let d = dataset();
    let per_model = an::per_model::compute(d);
    let total_from_models: f64 = per_model
        .iter()
        .map(|m| m.frequency * m.devices as f64)
        .sum();
    assert!((total_from_models - d.events.len() as f64).abs() < 1.0);

    let isp_stats = an::isp::compute(d);
    let total_from_isps: f64 = isp_stats
        .iter()
        .map(|s| s.frequency * s.devices as f64)
        .sum();
    assert!((total_from_isps - d.events.len() as f64).abs() < 1.0);
}

#[test]
fn paper_orderings_hold_jointly() {
    let d = dataset();
    // ISP ordering (Fig. 12) and group orderings (Figs. 6–9) on the SAME
    // dataset — the joint consistency the paper reports.
    let isp_stats = an::isp::compute(d);
    assert!(isp_stats[Isp::B.index()].prevalence > isp_stats[Isp::A.index()].prevalence);
    assert!(isp_stats[Isp::A.index()].prevalence > isp_stats[Isp::C.index()].prevalence);

    let g = an::groups::compute(d);
    assert!(g.with_5g.prevalence > g.without_5g.prevalence);
    assert!(g.android10_non5g.frequency > g.android9.frequency);

    let per_rat = an::per_rat::compute(d);
    assert!(per_rat[Rat::G3.index()].prevalence < per_rat[Rat::G4.index()].prevalence);

    let sig = an::signal::compute(d);
    assert!(sig.fig15_shape_holds());
}

#[test]
fn dataset_determinism_across_full_pipeline() {
    let cfg = StudyConfig {
        population: PopulationConfig {
            devices: 1_500,
            ..Default::default()
        },
        bs_count: 1_500,
        seed: 123,
        ..Default::default()
    };
    let a = run_macro_study(&cfg);
    let b = run_macro_study(&cfg);
    assert_eq!(a.events.len(), b.events.len());
    assert_eq!(
        an::table2::compute(&a, 10).rows[0].share,
        an::table2::compute(&b, 10).rows[0].share
    );
    assert_eq!(
        an::headline::compute(&a).mean_duration_secs,
        an::headline::compute(&b).mean_duration_secs
    );
}
