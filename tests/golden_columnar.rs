//! Golden columnar-segment snapshot: the exact `SC` blocks (magic,
//! version, column encodings, delta-coded sketch pool, zone maps, CRC
//! trailer) a compacted seed-2021 store produces, pinned byte-for-byte as
//! hex dumps in partition order.
//!
//! The `SC` framing is on-disk contract — v2 store images and stream `SG`
//! segments embed these blocks verbatim — so any accidental change to the
//! column order, varint coding, zone-map layout, or CRC seal surfaces
//! here as a readable diff. When a change is *intentional*, bump
//! `SEGMENT_VERSION`, regenerate and review:
//!
//! ```sh
//! CELLREL_BLESS=1 cargo test -q --test golden_columnar
//! git diff tests/golden/columnar_segment_seed2021.txt
//! ```

use std::fmt::Write as _;
use std::path::PathBuf;

use cellrel::store::{build_sharded, DeviceDirectory, StoreConfig, SEGMENT_VERSION};
use cellrel::workload::{run_macro_study, PopulationConfig, StudyConfig};

fn golden_path() -> PathBuf {
    // CARGO_MANIFEST_DIR is crates/core (the facade owns the root tests/).
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/golden/columnar_segment_seed2021.txt")
}

fn hex_dump(out: &mut String, bytes: &[u8]) {
    let _ = writeln!(out, "len: {}", bytes.len());
    for chunk in bytes.chunks(32) {
        for b in chunk {
            let _ = write!(out, "{b:02x}");
        }
        out.push('\n');
    }
}

fn render_segments() -> String {
    let data = run_macro_study(&StudyConfig {
        seed: 2021,
        population: PopulationConfig {
            devices: 200,
            ..Default::default()
        },
        days: 14,
        bs_count: 200,
    });
    let dir = DeviceDirectory::from_population(&data.population);
    let cfg = StoreConfig {
        partitions: 4,
        ..StoreConfig::default()
    };
    let mut store = build_sharded(&cfg, &dir, &data.events, 1);
    store.compact();
    assert!(store.sealed_segments() > 0, "fixture must seal segments");

    let mut out = String::new();
    let _ = writeln!(
        out,
        "# columnar SC segment blocks (seed 2021, format v{SEGMENT_VERSION})"
    );
    let _ = writeln!(
        out,
        "store digest: {:016x}  sealed cells: {}",
        store.digest(),
        store.sealed_cells()
    );
    for (i, block) in store.segment_blocks().iter().enumerate() {
        let _ = writeln!(out, "\n## segment {i}");
        hex_dump(&mut out, block);
    }
    out
}

#[test]
fn columnar_segments_match_golden_snapshot() {
    let actual = render_segments();
    let path = golden_path();

    if std::env::var_os("CELLREL_BLESS").is_some() {
        std::fs::write(&path, &actual).expect("write golden snapshot");
        eprintln!("blessed {}", path.display());
        return;
    }

    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {} ({e}); generate it with \
             CELLREL_BLESS=1 cargo test -q --test golden_columnar",
            path.display()
        )
    });
    if actual != expected {
        let mismatch = actual
            .lines()
            .zip(expected.lines())
            .enumerate()
            .find(|(_, (a, e))| a != e);
        match mismatch {
            Some((i, (a, e))) => panic!(
                "golden columnar segment mismatch at line {}:\n  expected: {e}\n  actual:   {a}\n\
                 the SC framing is on-disk contract — if the change is intentional, bump \
                 SEGMENT_VERSION and regenerate: CELLREL_BLESS=1 cargo test -q --test golden_columnar",
                i + 1
            ),
            None => panic!(
                "golden columnar segment length mismatch ({} vs {} lines); \
                 if intentional: CELLREL_BLESS=1 cargo test -q --test golden_columnar",
                actual.lines().count(),
                expected.lines().count()
            ),
        }
    }
}
