//! The continuous windowed pipeline end to end on a real fleet: the
//! merged view and incremental Tables 1/2 byte-identical to the one-shot
//! batch pipeline over the same upload stream, kill/restart
//! digest-transparency across random kill points (including mid-window),
//! and the query daemon serving epoch-consistent answers from per-window
//! published snapshots.

use cellrel::analysis::store_tables::{
    table1_from_results, table1_from_store, table1_queries, table2_from_result, table2_from_store,
    table2_query,
};
use cellrel::ingest::{Collector, CollectorConfig};
use cellrel::queryd::{InProcClient, QuerydCore, Snapshot};
use cellrel::sim::Digest64;
use cellrel::store::{DeviceDirectory, Store, StoreConfig, StoreSink};
use cellrel::stream::{
    batches_from_events, run_kill_restart, run_published, KillRestartConfig, MemSegments,
    StreamConfig, StreamPipeline,
};
use cellrel::workload::{run_macro_study, PopulationConfig, StudyConfig};
use std::sync::{Arc, Mutex, OnceLock};

/// One fleet, encoded once: ~1,200 devices over 10 days, batches ordered
/// by upload time (the live interleaving).
fn fixture() -> &'static (Vec<Vec<u8>>, DeviceDirectory) {
    static FIX: OnceLock<(Vec<Vec<u8>>, DeviceDirectory)> = OnceLock::new();
    FIX.get_or_init(|| {
        let data = run_macro_study(&StudyConfig {
            population: PopulationConfig {
                devices: 1_200,
                ..Default::default()
            },
            days: 10,
            bs_count: 500,
            seed: 2021,
        });
        let dir = DeviceDirectory::from_population(&data.population);
        (batches_from_events(&data.events, 48), dir)
    })
}

fn stream_cfg() -> StreamConfig {
    StreamConfig {
        // Daily windows sealed two hours past the watermark.
        window_ms: 86_400_000,
        lateness_ms: 2 * 3_600_000,
        hot_windows: 3,
        late_flush: 512,
        collector: CollectorConfig::default(),
        store: StoreConfig::default(),
    }
}

/// The one-shot batch ground truth: the same batches through the same
/// collector into one store.
fn batch_store(batches: &[Vec<u8>], dir: &DeviceDirectory, cfg: &StreamConfig) -> Store {
    let mut collector = Collector::new(&cfg.collector);
    let mut sink = StoreSink::new(&cfg.store, dir);
    for b in batches {
        collector.ingest_with(b, &mut sink);
    }
    sink.into_store()
}

#[test]
fn incremental_tables_match_one_shot_batch_after_final_seal() {
    let (batches, dir) = fixture();
    let cfg = stream_cfg();
    let mut segs = MemSegments::new();
    let mut p = StreamPipeline::new(&cfg, dir).expect("valid config");
    // Re-derive the tables at every seal: each must be a valid render,
    // and the last must equal the one-shot batch answer byte for byte.
    let mut seals = 0u64;
    let mut seq = Digest64::new();
    for b in batches {
        if !p.offer(b, &mut segs).expect("offer").is_empty() {
            seals += 1;
            let (t1, t2) = p.tables(10).expect("valid queries");
            seq.write_bytes(t1.render().as_bytes());
            seq.write_bytes(t2.render().as_bytes());
        }
    }
    p.flush(&mut segs).expect("flush");
    assert!(seals >= 5, "only {seals} sealing offers in 10 days");
    assert!(p.counters().windows_sealed >= 8);

    let batch = batch_store(batches, dir, &cfg);
    assert_eq!(p.digest(), batch.digest(), "merged view == batch store");
    let (t1, t2) = p.tables(10).expect("valid queries");
    assert_eq!(
        t1.render(),
        table1_from_store(&batch).expect("valid query").render(),
        "incremental Table 1 == one-shot batch"
    );
    assert_eq!(
        t2.render(),
        table2_from_store(&batch, 10).expect("valid query").render(),
        "incremental Table 2 == one-shot batch"
    );

    // The incremental sequence itself is deterministic: a second run
    // produces the same digest over every per-seal table render.
    let mut segs2 = MemSegments::new();
    let mut q = StreamPipeline::new(&cfg, dir).expect("valid config");
    let mut seq2 = Digest64::new();
    for b in batches {
        if !q.offer(b, &mut segs2).expect("offer").is_empty() {
            let (t1, t2) = q.tables(10).expect("valid queries");
            seq2.write_bytes(t1.render().as_bytes());
            seq2.write_bytes(t2.render().as_bytes());
        }
    }
    assert_eq!(seq.finish(), seq2.finish());
}

#[test]
fn kill_restart_campaign_is_digest_transparent() {
    let (batches, dir) = fixture();
    let report = run_kill_restart(
        &stream_cfg(),
        &KillRestartConfig {
            kills: 8,
            seed: 2021,
            checkpoint_every: 5,
        },
        dir,
        batches,
    )
    .expect("campaign runs");
    for o in &report.outcomes {
        assert!(o.ok, "kill at batch {} diverged: {}", o.kill_at, o.detail);
    }
    assert_eq!(report.failures, 0);
    assert!(
        report.mid_window_kills > 0,
        "no kill landed on a mid-window checkpoint"
    );
    assert!(report.baseline_segments >= 8);
}

#[test]
fn queryd_serves_epoch_consistent_answers_from_per_window_snapshots() {
    let (batches, dir) = fixture();
    let cfg = stream_cfg();
    let core = QuerydCore::new(Store::new(&cfg.store));
    let mut segs = MemSegments::new();
    let mut p = StreamPipeline::new(&cfg, dir).expect("valid config");

    // Retain every published snapshot so served answers can be replayed
    // against the exact store state that produced them.
    let retained: Arc<Mutex<Vec<Arc<Snapshot>>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = retained.clone();
    let final_epoch = run_published(&mut p, batches, &mut segs, &core, move |snap| {
        sink.lock().expect("retain lock").push(snap.clone());
    })
    .expect("published run");

    let retained = retained.lock().expect("retain lock");
    assert!(
        retained.len() as u64 >= p.counters().windows_sealed,
        "at least one publish per sealed window"
    );
    assert_eq!(
        retained.last().expect("publishes happened").epoch,
        final_epoch
    );

    // Served tables pinned to the final epoch equal the pipeline's own.
    let client = InProcClient::new(core.clone());
    let [qd, qf, qc] = table1_queries();
    let (e1, devices) = client.query(&qd).expect("devices query");
    let (e2, failing) = client.query(&qf).expect("failing query");
    let (e3, counts) = client.query(&qc).expect("counts query");
    let (e4, causes) = client.query(&table2_query()).expect("causes query");
    assert!(e1 == e2 && e2 == e3 && e3 == e4, "pinned set is one epoch");
    assert_eq!(e1, final_epoch);
    let (t1, t2) = p.tables(10).expect("valid queries");
    assert_eq!(
        table1_from_results(&[devices, failing, counts]).render(),
        t1.render()
    );
    assert_eq!(table2_from_result(&causes, 10).render(), t2.render());

    // Epoch consistency across the whole history: every retained snapshot
    // answers its own queries identically to what it answered live (the
    // epochs are strictly increasing, so no publish was lost or torn).
    let mut prev_epoch = 0;
    for snap in retained.iter() {
        assert!(
            snap.epoch == 0 || snap.epoch > prev_epoch,
            "publish epochs strictly increase"
        );
        prev_epoch = snap.epoch;
        let answer = snap.store.query(&table2_query()).expect("valid query");
        let again = snap.store.query(&table2_query()).expect("valid query");
        assert_eq!(answer, again);
    }
    // The final retained snapshot is the final merged view.
    assert_eq!(
        retained.last().expect("publishes happened").store.digest(),
        p.digest()
    );
}
