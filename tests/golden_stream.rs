//! Golden window-seal manifest snapshot: the exact sequence of
//! (segment kind, window index, watermark at seal, record count, segment
//! digest) the streaming pipeline produces on the seed-2021 fleet, plus
//! the final merged digest and stream counters, pinned byte-for-byte.
//!
//! Any change to watermark advancement, window routing, late-lane
//! handling, sealing order, segment encoding, or the collector's
//! dedup/noise filters surfaces here as a readable diff. When a change is
//! *intentional*, regenerate and review:
//!
//! ```sh
//! CELLREL_BLESS=1 cargo test -q --test golden_stream
//! git diff tests/golden/stream_manifest_seed2021.txt
//! ```

use std::fmt::Write as _;
use std::path::PathBuf;

use cellrel::ingest::CollectorConfig;
use cellrel::store::{DeviceDirectory, StoreConfig};
use cellrel::stream::{
    batches_from_events, MemSegments, SegmentKind, StreamConfig, StreamPipeline,
};
use cellrel::workload::{run_macro_study, PopulationConfig, StudyConfig};

fn stream_cfg() -> StreamConfig {
    StreamConfig {
        window_ms: 86_400_000,
        lateness_ms: 2 * 3_600_000,
        hot_windows: 3,
        late_flush: 512,
        collector: CollectorConfig::default(),
        store: StoreConfig::default(),
    }
}

fn golden_path() -> PathBuf {
    // CARGO_MANIFEST_DIR is crates/core (the facade owns the root tests/).
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/golden/stream_manifest_seed2021.txt")
}

fn render_manifest() -> String {
    let data = run_macro_study(&StudyConfig {
        seed: 2021,
        population: PopulationConfig {
            devices: 2_000,
            ..Default::default()
        },
        days: 14,
        bs_count: 800,
    });
    let dir = DeviceDirectory::from_population(&data.population);
    let batches = batches_from_events(&data.events, 48);

    let cfg = stream_cfg();
    let mut segs = MemSegments::new();
    let mut p = StreamPipeline::new(&cfg, &dir).expect("valid config");
    for b in &batches {
        p.offer(b, &mut segs).expect("offer");
    }
    p.flush(&mut segs).expect("flush");

    let mut out = String::new();
    let _ = writeln!(out, "# stream window-seal manifest (seed 2021)");
    let _ = writeln!(
        out,
        "config: window_ms={} lateness_ms={} batch_cap=48",
        cfg.window_ms, cfg.lateness_ms
    );
    let _ = writeln!(out, "batches: {}", batches.len());
    let _ = writeln!(
        out,
        "\n## manifest (kind window watermark_ms records digest)\n"
    );
    for e in p.manifest() {
        let kind = match e.kind {
            SegmentKind::Window => "window",
            SegmentKind::Late => "late",
        };
        let _ = writeln!(
            out,
            "{kind} {} {} {} {:016x}",
            e.index, e.watermark_ms, e.records, e.digest
        );
    }
    let c = p.counters();
    let _ = writeln!(out, "\n## counters\n");
    let _ = writeln!(out, "batches: {}", c.batches);
    let _ = writeln!(out, "records: {}", c.records);
    let _ = writeln!(out, "late_records: {}", c.late_records);
    let _ = writeln!(out, "windows_sealed: {}", c.windows_sealed);
    let _ = writeln!(out, "empty_windows: {}", c.empty_windows);
    let _ = writeln!(out, "late_segments: {}", c.late_segments);
    let _ = writeln!(out, "segments_persisted: {}", c.segments_persisted);
    let _ = writeln!(out, "base_folds: {}", c.base_folds);
    let _ = writeln!(out, "\ndigest: {:016x}", p.digest());
    let _ = writeln!(out, "collector digest: {:016x}", p.collector_digest());
    out
}

#[test]
fn stream_manifest_matches_golden_snapshot() {
    let actual = render_manifest();
    let path = golden_path();

    if std::env::var_os("CELLREL_BLESS").is_some() {
        std::fs::write(&path, &actual).expect("write golden snapshot");
        eprintln!("blessed {}", path.display());
        return;
    }

    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {} ({e}); generate it with \
             CELLREL_BLESS=1 cargo test -q --test golden_stream",
            path.display()
        )
    });
    if actual != expected {
        let mismatch = actual
            .lines()
            .zip(expected.lines())
            .enumerate()
            .find(|(_, (a, e))| a != e);
        match mismatch {
            Some((i, (a, e))) => panic!(
                "golden stream-manifest mismatch at line {}:\n  expected: {e}\n  actual:   {a}\n\
                 if the change is intentional: CELLREL_BLESS=1 cargo test -q --test golden_stream",
                i + 1
            ),
            None => panic!(
                "golden stream-manifest length mismatch ({} vs {} lines); \
                 if intentional: CELLREL_BLESS=1 cargo test -q --test golden_stream",
                actual.lines().count(),
                expected.lines().count()
            ),
        }
    }
}
