//! Offline vendored stand-in for the `criterion` benchmark harness.
//!
//! Implements the subset the cellrel benches use: `Criterion::default()`
//! with `sample_size`/`measurement_time` builders, `bench_function` with a
//! [`Bencher`] whose `iter` times the closure, and the
//! `criterion_group!` / `criterion_main!` macros (both the positional and
//! the `name = …; config = …; targets = …` forms).
//!
//! Reporting is a single line per benchmark — mean wall-clock time per
//! iteration and iterations/s — printed to stdout. There is no statistical
//! analysis, HTML report, or baseline comparison.

#![forbid(unsafe_code)]
// A bench harness is exactly where wall-clock timing belongs; the rest of
// the workspace is gated off std::time by clippy.toml's disallowed-types.
#![allow(clippy::disallowed_types)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_secs(3),
        }
    }
}

impl Criterion {
    /// Number of timed iterations per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Upper bound on total measurement wall-clock per benchmark.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Time one benchmark closure.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            budget_iters: self.sample_size as u64,
            budget_time: self.measurement_time,
            elapsed: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        if b.iters == 0 {
            println!("{id:<44} (no iterations run)");
        } else {
            let per_iter = b.elapsed.as_secs_f64() / b.iters as f64;
            println!(
                "{id:<44} {:>12.3} ms/iter {:>14.1} iter/s ({} iters)",
                per_iter * 1e3,
                1.0 / per_iter.max(1e-12),
                b.iters
            );
        }
        self
    }
}

/// Times a closure under an iteration and wall-clock budget.
#[derive(Debug)]
pub struct Bencher {
    budget_iters: u64,
    budget_time: Duration,
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Run `f` repeatedly, timing each call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One untimed warm-up call.
        black_box(f());
        let start = Instant::now();
        for _ in 0..self.budget_iters {
            black_box(f());
            self.iters += 1;
            if start.elapsed() > self.budget_time {
                break;
            }
        }
        self.elapsed += start.elapsed();
    }
}

/// Group benchmark functions under one runnable entry point.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial(c: &mut Criterion) {
        c.bench_function("trivial_add", |b| b.iter(|| black_box(1u64) + 1));
    }

    criterion_group!(
        name = group_with_config;
        config = Criterion::default().sample_size(5);
        targets = trivial
    );

    criterion_group!(plain_group, trivial);

    #[test]
    fn groups_run() {
        group_with_config();
        plain_group();
    }

    #[test]
    fn bencher_counts_iterations() {
        let mut c = Criterion::default().sample_size(7);
        let mut calls = 0u64;
        c.bench_function("count", |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        // 7 timed + 1 warm-up.
        assert_eq!(calls, 8);
    }
}
