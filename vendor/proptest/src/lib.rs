//! Offline vendored stand-in for the `proptest` crate.
//!
//! Provides the subset of the proptest API the cellrel test suites use:
//! the [`proptest!`] macro, `prop_assert!` / `prop_assert_eq!` /
//! `prop_assert_ne!` / `prop_assume!`, range and tuple strategies,
//! `prop::collection::vec`, `prop::sample::select`, `prop::option::of`,
//! and `any::<T>()`.
//!
//! Semantics: each property runs a fixed number of random cases (default
//! 128, override with `PROPTEST_CASES`) from a seed derived from the test
//! name, so failures are deterministic and reproducible. There is no
//! shrinking — a failing case reports its case index and seed instead.

#![forbid(unsafe_code)]

pub mod test_runner {
    //! Case generation and execution.

    /// Why a test case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// The case was rejected by `prop_assume!`; try another input.
        Reject,
        /// A `prop_assert!` failed.
        Fail(String),
    }

    impl TestCaseError {
        /// Build a failure.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }
    }

    /// The deterministic generator driving input strategies (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeded constructor.
        pub fn new(seed: u64) -> Self {
            TestRng { state: seed }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, 1)`.
        pub fn f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform in `[0, n)`.
        pub fn below(&mut self, n: u64) -> u64 {
            ((self.next_u64() as u128 * n as u128) >> 64) as u64
        }
    }

    fn fnv1a(s: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in s.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1_0000_01b3);
        }
        h
    }

    /// Run `cases` random cases of `body`, panicking on the first failure.
    pub fn run_cases(name: &str, body: impl Fn(&mut TestRng) -> Result<(), TestCaseError>) {
        let cases: u64 = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(128);
        let seed = fnv1a(name);
        let mut accepted = 0u64;
        let mut attempts = 0u64;
        let max_attempts = cases.saturating_mul(64).max(1024);
        while accepted < cases && attempts < max_attempts {
            attempts += 1;
            // Independent sub-stream per attempt: failures reproduce from
            // (name, attempt) alone.
            let mut rng = TestRng::new(seed ^ attempts.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            match body(&mut rng) {
                Ok(()) => accepted += 1,
                Err(TestCaseError::Reject) => {}
                Err(TestCaseError::Fail(msg)) => panic!(
                    "proptest property '{name}' failed at case {attempts} (seed {seed:#x}): {msg}"
                ),
            }
        }
    }
}

pub mod strategy {
    //! Input strategies: how to generate a value of some type.

    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A way to generate values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;
        /// Draw one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty strategy range");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    if span > u64::MAX as u128 {
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add(rng.below(span as u64) as $t)
                }
            }
        )*};
    }
    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    self.start + (self.end - self.start) * rng.f64() as $t
                }
            }
        )*};
    }
    impl_float_range_strategy!(f32, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident),+)),*) => {$(
            #[allow(non_snake_case)]
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($s,)+) = self;
                    ($($s.generate(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy!((A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E));

    /// Strategy yielding one fixed value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

pub mod arbitrary {
    //! `any::<T>()` — the type's canonical full-domain strategy.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical strategy over their whole domain.
    pub trait Arbitrary: Sized {
        /// Draw an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            // Finite, sign-symmetric, scale-diverse.
            let mag = (rng.f64() * 600.0 - 300.0).exp2();
            if rng.next_u64() & 1 == 1 {
                mag
            } else {
                -mag
            }
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// The strategy returned by [`any`].
    #[derive(Debug)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Acceptable size specifications for [`vec`].
    pub trait IntoSizeRange {
        /// Lower (inclusive) and upper (exclusive) bounds.
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self + 1)
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start < self.end, "empty vec size range");
            (self.start, self.end)
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    #[derive(Debug)]
    pub struct VecStrategy<S> {
        element: S,
        lo: usize,
        hi: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.lo + rng.below((self.hi - self.lo) as u64) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `vec(element, size)`: a vector of `element` draws.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (lo, hi) = size.bounds();
        VecStrategy { element, lo, hi }
    }
}

pub mod sample {
    //! Sampling from explicit value sets.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy choosing uniformly from a fixed list.
    #[derive(Debug, Clone)]
    pub struct Select<T: Clone>(Vec<T>);

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0[rng.below(self.0.len() as u64) as usize].clone()
        }
    }

    /// Uniform choice from `items`.
    ///
    /// # Panics
    /// Panics if `items` is empty.
    pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
        assert!(!items.is_empty(), "select from empty list");
        Select(items)
    }
}

pub mod option {
    //! `Option` strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Option<S::Value>` (≈ 1 in 4 `None`).
    #[derive(Debug)]
    pub struct OptionStrategy<S>(S);

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }

    /// Wrap `inner` into an optional strategy.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }
}

/// Define property tests: each `fn` runs many random cases of its body.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident ( $( $p:pat_param in $strat:expr ),+ $(,)? ) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::test_runner::run_cases(stringify!($name), |__proptest_rng| {
                    $( let $p = $crate::strategy::Strategy::generate(&($strat), __proptest_rng); )+
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                });
            }
        )*
    };
}

/// Assert within a property body; failure aborts only the current case run.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Assert equality within a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} == {} ({:?} vs {:?})",
                stringify!($a), stringify!($b), a, b
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

/// Assert inequality within a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if a == b {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} != {} (both {:?})",
                stringify!($a), stringify!($b), a
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if a == b {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

/// Reject inputs that do not satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    pub mod prop {
        //! Namespaced strategy constructors (`prop::collection::vec`, …).
        pub use crate::collection;
        pub use crate::option;
        pub use crate::sample;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_vec(x in 0u64..100, xs in prop::collection::vec(0.0f64..1.0, 1..10)) {
            prop_assert!(x < 100);
            prop_assert!(!xs.is_empty() && xs.len() < 10);
            prop_assert!(xs.iter().all(|v| (0.0..1.0).contains(v)));
        }

        #[test]
        fn select_and_option(
            v in prop::sample::select(vec![1, 2, 3]),
            o in prop::option::of(0u8..=5),
            b in any::<bool>(),
        ) {
            prop_assert!((1..=3).contains(&v));
            if let Some(i) = o {
                prop_assert!(i <= 5);
            }
            prop_assert!(u8::from(b) <= 1);
        }

        #[test]
        fn assume_rejects(n in 0u32..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
            prop_assert_ne!(n, 1);
        }
    }

    #[test]
    #[should_panic(expected = "proptest property")]
    fn failures_panic_with_context() {
        crate::test_runner::run_cases("doomed", |_| {
            Err(crate::test_runner::TestCaseError::fail("nope"))
        });
    }
}
