//! Offline vendored stand-in for the `rand` crate.
//!
//! The build environment has no network access and no registry cache, so the
//! workspace vendors the *exact* API surface `cellrel-sim` consumes: a
//! seedable small PRNG ([`rngs::SmallRng`], xoshiro256++ — the same
//! algorithm the real `SmallRng` uses on 64-bit targets), the
//! [`SeedableRng::seed_from_u64`] constructor (SplitMix64 state expansion,
//! as upstream), and the [`RngExt`] extension trait with `random::<T>()`
//! and `random_range(lo..hi)`.
//!
//! Streams are deterministic and high-quality, but are **not guaranteed to
//! be bit-compatible with any upstream `rand` release** — all calibration
//! tests in this workspace assert distributional ranges, not exact draws,
//! so the substitution is transparent to them.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Core pseudo-random generation: a source of `u64`s.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits (upper half of [`Self::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Build from a `u64` seed (SplitMix64 state expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Types samplable uniformly from a generator's raw bits.
pub trait Standard: Sized {
    /// Draw one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 significant bits, uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges samplable uniformly.
pub trait SampleRange<T> {
    /// Draw one value from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased-enough bounded draw: 128-bit multiply-shift (Lemire without the
/// rejection loop; bias is ≤ span/2⁶⁴, immaterial for simulation spans).
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(bounded_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(bounded_u64(rng, span as u64) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = <$t as Standard>::sample_standard(rng);
                self.start + (self.end - self.start) * u
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// Extension methods every generator gets (mirrors upstream `rand`'s
/// user-facing sampling API).
pub trait RngExt: RngCore {
    /// Uniform draw of a [`Standard`]-distributed value.
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Uniform draw from a range.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{splitmix64, RngCore, SeedableRng};

    /// A small, fast, non-cryptographic PRNG: xoshiro256++.
    ///
    /// Same algorithm family as upstream `rand`'s `SmallRng` on 64-bit
    /// platforms. Not reproducible across `rand` versions — and therefore
    /// not across this stand-in either; the workspace never relies on
    /// cross-version stream identity.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut state);
            }
            // All-zero state would be degenerate; SplitMix64 cannot produce
            // four zeros from any seed, but guard anyway.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(1);
        let mut c = SmallRng::seed_from_u64(2);
        let xs: Vec<u64> = (0..8).map(|_| a.random::<u64>()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.random::<u64>()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.random::<u64>()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut r = SmallRng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = r.random::<f64>();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = SmallRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let v = r.random_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = r.random_range(0usize..3);
            assert!(w < 3);
            let f = r.random_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
            let i = r.random_range(0u8..=5);
            assert!(i <= 5);
        }
    }

    #[test]
    fn range_draws_cover_all_values() {
        let mut r = SmallRng::seed_from_u64(11);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[r.random_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
